"""Happens-before machinery: vector clocks and the lock-order graph.

Vector clocks are kept per simulated task (one component per task pid).
The checker uses the FastTrack-style epoch shortcut for access checks:
every tracked access is summarized as ``(pid, counter)`` — the accessing
task's own component at access time — and access *a* happens-before the
current state of task *t* iff ``a.counter <= t.clock[a.pid]``. Full clock
snapshots are only taken at release points (lock release, message send,
barrier/meeting departure) where transitivity must be preserved.

The lock-order graph records, per ordered pair of locks, the first
occasion a task acquired the second while holding the first. A cycle in
this graph means an adversarial schedule could deadlock — the *potential*
deadlock complement to the kernel's actual-deadlock report.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

__all__ = ["TaskClock", "Access", "LockOrderGraph"]


class Access:
    """An access summary: who touched the object last, and when."""

    __slots__ = ("pid", "counter", "task", "time")

    def __init__(self, pid: int, counter: int, task: str, time: float):
        self.pid = pid
        self.counter = counter
        self.task = task
        self.time = time


class TaskClock:
    """The vector clock of one simulated task."""

    __slots__ = ("pid", "name", "clock")

    def __init__(self, pid: int, name: str,
                 parent: Optional["TaskClock"] = None):
        self.pid = pid
        self.name = name
        # A spawned task starts after its spawner's current knowledge.
        self.clock: dict[int, int] = dict(parent.clock) if parent else {}
        self.clock[pid] = self.clock.get(pid, 0)

    def tick(self) -> int:
        """Advance this task's own component; returns the new counter."""
        c = self.clock[self.pid] + 1
        self.clock[self.pid] = c
        return c

    def snapshot(self) -> dict[int, int]:
        """A frozen copy of the clock, for publishing at a release point."""
        self.tick()
        return dict(self.clock)

    def join(self, other: Optional[dict[int, int]]) -> None:
        """Merge another clock (an acquire point): componentwise max."""
        if not other:
            return
        clock = self.clock
        for pid, c in other.items():
            if clock.get(pid, 0) < c:
                clock[pid] = c

    def access(self, time: float) -> Access:
        """Summarize an access by this task at ``time`` (ticks the clock)."""
        return Access(self.pid, self.tick(), self.name, time)

    def saw(self, access: Access) -> bool:
        """True iff ``access`` happens-before this task's current state."""
        return access.counter <= self.clock.get(access.pid, 0)


class LockOrderGraph:
    """Directed graph of observed lock acquisition orders."""

    def __init__(self) -> None:
        #: ``(id_a, id_b) -> (name_a, name_b, task, time)``: first time a
        #: task acquired lock b while holding lock a.
        self.edges: dict[tuple[int, int], tuple[str, str, str, float]] = {}

    def add(self, held_id: int, held_name: str, acq_id: int, acq_name: str,
            task: str, time: float) -> None:
        key = (held_id, acq_id)
        if key not in self.edges:
            self.edges[key] = (held_name, acq_name, task, time)

    def cycles(self) -> Iterator[list[tuple[int, int]]]:
        """Yield each elementary cycle once, as a list of edges.

        An iterative DFS over the adjacency built from :attr:`edges`;
        each cycle is reported rooted at its smallest node id so that
        rotations collapse to one report.
        """
        adj: dict[int, list[int]] = {}
        for a, b in self.edges:
            adj.setdefault(a, []).append(b)
        seen_cycles: set[tuple[int, ...]] = set()
        for start in sorted(adj):
            # DFS from each node, only following nodes >= start so every
            # cycle is found exactly once from its smallest member.
            stack: list[tuple[int, list[int]]] = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for nxt in adj.get(node, ()):
                    if nxt == start:
                        cyc = tuple(path)
                        if cyc not in seen_cycles:
                            seen_cycles.add(cyc)
                            yield [(path[i], path[(i + 1) % len(path)])
                                   for i in range(len(path))]
                    elif nxt > start and nxt not in path:
                        stack.append((nxt, path + [nxt]))

    def describe_cycle(self, cycle: list[tuple[int, int]]) -> str:
        """Render a lock-order cycle as a human-readable edge chain."""
        names = []
        for edge in cycle:
            name_a, name_b, task, _t = self.edges[edge]
            names.append(f"{name_a} -> {name_b} (task {task!r})")
        return "; ".join(names)
