"""The static side of the analyzer: an AST lint over this repository.

Run as ``python -m repro lint``. The rules (L2xx in the catalog) encode
invariants of *this* codebase that generic linters cannot know:

- the simulator must be deterministic, so host clocks and host
  randomness have no business inside simulated-path code (L201);
- trace categories are a typed namespace, not strings (L202);
- plus a few hygiene rules (bare except, public docstrings/annotations).

Suppression is per-line and must be justified::

    t0 = time.perf_counter()  # lint: ignore[L201] -- host-side profiling

A suppression without a ``-- reason`` is itself a finding (L200).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .rules import LINT_RULES, rule as _rule

__all__ = ["Finding", "lint_file", "run_lint", "render_text", "render_json",
           "SIMULATED_PATH_PREFIXES"]

#: Ids this pass can emit (from the shared registry) plus the parse-error
#: pseudo-rule. ``--select`` arguments are validated against this set.
_EMITTABLE = {r.id for r in LINT_RULES} | {"E999"}

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*ignore\[([A-Za-z0-9,\s]+)\]\s*(?:--\s*(\S.*))?")

#: Subtrees of ``src/repro`` whose code runs on the simulated timeline and
#: must therefore be a pure function of parameters and seed (rule L201).
#: Host-facing entry points (cli, bench harness I/O) are intentionally out.
SIMULATED_PATH_PREFIXES = (
    "sim/", "mpi/", "netsim/", "runtime/", "faults/", "mapping/",
    "apps/", "obs/", "analysis/", "check/",
)

#: Dotted call targets that read host time or host entropy.
_HOST_NONDET = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "datetime.now",
    "datetime.utcnow", "datetime.datetime.now", "datetime.datetime.utcnow",
    "os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
    "secrets.token_hex",
}

#: ``numpy.random`` convenience functions draw from the hidden global
#: generator; seeded ``SeedSequence``/``default_rng``/``Generator`` use is
#: the sanctioned idiom and stays exempt.
_NP_RANDOM_BANNED = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "uniform", "normal", "seed",
}

#: Files exempt from L202 (they define the category coercion itself).
_TRACE_DEFINING_FILES = ("sim/trace.py",)


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def severity(self) -> str:
        """Severity from the shared registry (parse errors are errors)."""
        return "error" if self.rule == "E999" else _rule(self.rule).severity

    def describe(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message,
                "severity": self.severity}


def _dotted(node: ast.AST) -> Optional[str]:
    """Render an attribute chain like ``np.random.rand`` as a dotted path."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Suppressions:
    """Per-line ``# lint: ignore[...]`` directives for one file."""

    def __init__(self, source: str):
        self.by_line: dict[int, set[str]] = {}
        self.bare: list[tuple[int, int]] = []
        for lineno, text in enumerate(source.splitlines(), 1):
            m = _SUPPRESS_RE.search(text)
            if m is None:
                continue
            rules = {r.strip().upper() for r in m.group(1).split(",")
                     if r.strip()}
            if not m.group(2):
                self.bare.append((lineno, m.start() + 1))
            else:
                self.by_line[lineno] = rules

    def active(self, lineno: int, rule: str) -> bool:
        return rule in self.by_line.get(lineno, ())


class _FileLint(ast.NodeVisitor):
    """Visitor collecting L2xx findings for one parsed module."""

    def __init__(self, rel: str, suppress: _Suppressions):
        self.rel = rel
        self.suppress = suppress
        self.findings: list[Finding] = []
        self.in_simulated_path = any(
            rel.startswith("src/repro/" + p)
            for p in SIMULATED_PATH_PREFIXES)
        self.check_trace = not self.rel.endswith(_TRACE_DEFINING_FILES)
        self._class_depth = 0
        self._func_depth = 0

    def add(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self.suppress.active(line, rule):
            return
        self.findings.append(Finding(self.rel, line,
                                     getattr(node, "col_offset", 0) + 1,
                                     rule, message))

    # -- L201: host nondeterminism in simulated paths -----------------
    def visit_Call(self, node: ast.Call) -> None:
        """Flag host-nondeterminism calls (L201) and emit literals (L202)."""
        dotted = _dotted(node.func)
        if self.in_simulated_path and dotted is not None:
            if dotted in _HOST_NONDET:
                self.add("L201", node,
                         f"host nondeterminism: call to {dotted}() in "
                         f"simulated-path code")
            else:
                parts = dotted.split(".")
                if len(parts) >= 3 and parts[-2] == "random" \
                        and parts[-1] in _NP_RANDOM_BANNED:
                    self.add("L201", node,
                             f"global-generator randomness: {dotted}() "
                             f"(use a seeded np.random.default_rng)")
        # -- L202: raw string category at emit sites ------------------
        if self.check_trace and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "emit" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value,
                                                              str):
                self.add("L202", node,
                         f"raw string category {first.value!r} passed to "
                         f".emit() (use TraceCategory members)")
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        if self.in_simulated_path:
            for alias in node.names:
                if alias.name == "random":
                    self.add("L201", node,
                             "import of stdlib `random` in simulated-path "
                             "code (use np.random.default_rng with a seed)")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.in_simulated_path and node.module in ("random", "time"):
            names = {a.name for a in node.names}
            banned = names & {"random", "randint", "choice", "shuffle",
                              "uniform", "time", "monotonic",
                              "perf_counter"}
            if banned:
                self.add("L201", node,
                         f"from {node.module} import "
                         f"{', '.join(sorted(banned))} in simulated-path "
                         f"code")
        self.generic_visit(node)

    # -- L203: bare except --------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.add("L203", node,
                     "bare `except:` (catch specific exceptions)")
        self.generic_visit(node)

    # -- L204/L205: public docstrings and annotations -----------------
    def visit_Module(self, node: ast.Module) -> None:
        if ast.get_docstring(node) is None:
            self.add("L204", node, "public module without a docstring")
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Require docstrings on public classes (L204)."""
        public = not node.name.startswith("_") and self._func_depth == 0
        if public and ast.get_docstring(node) is None:
            self.add("L204", node,
                     f"public class {node.name!r} without a docstring")
        self._class_depth += 1
        self.generic_visit(node)
        self._class_depth -= 1

    def _visit_function(self, node) -> None:
        public = not node.name.startswith("_") and self._func_depth == 0
        if public and ast.get_docstring(node) is None \
                and not self._is_property(node) \
                and not self._is_trivial_override(node):
            self.add("L204", node,
                     f"public function {node.name!r} without a docstring")
        if public and not self._has_any_annotation(node):
            self.add("L205", node,
                     f"public function {node.name!r} has no type "
                     f"annotations at all")
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    @staticmethod
    def _is_property(node) -> bool:
        """Property getters/setters read as attributes; the attribute name
        plus the class docstring carry the documentation burden."""
        for dec in node.decorator_list:
            name = dec.attr if isinstance(dec, ast.Attribute) else \
                dec.id if isinstance(dec, ast.Name) else None
            if name in ("property", "cached_property", "setter"):
                return True
        return False

    @staticmethod
    def _is_trivial_override(node) -> bool:
        """Short bodies (<= 3 simple statements: accessors, forwarders,
        intentional no-op overrides) are exempt from L204 — demanding a
        docstring longer than the code it documents is noise."""
        if len(node.body) > 3:
            return False
        return all(isinstance(stmt, (ast.Pass, ast.Expr, ast.Return,
                                     ast.Raise, ast.Assign, ast.AugAssign,
                                     ast.AnnAssign, ast.If))
                   for stmt in node.body)

    def _has_any_annotation(self, node) -> bool:
        if node.returns is not None:
            return True
        args = node.args
        every = (list(args.posonlyargs) + list(args.args)
                 + list(args.kwonlyargs))
        if args.vararg is not None:
            every.append(args.vararg)
        if args.kwarg is not None:
            every.append(args.kwarg)
        named = [a for a in every if a.arg not in ("self", "cls")]
        if not named:
            return True  # nothing to annotate
        return any(a.annotation is not None for a in named)


def lint_file(path: Path, rel: str,
              select: Optional[set[str]] = None) -> list[Finding]:
    """Lint one file; ``select`` restricts to a set of rule ids."""
    source = path.read_text()
    suppress = _Suppressions(source)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(rel, exc.lineno or 1, (exc.offset or 0) + 1,
                        "E999", f"syntax error: {exc.msg}")]
    visitor = _FileLint(rel, suppress)
    visitor.visit(tree)
    findings = visitor.findings
    for lineno, col in suppress.bare:
        findings.append(Finding(
            rel, lineno, col, "L200",
            "suppression without justification; write "
            "`# lint: ignore[RULE] -- why`"))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    if select is not None:
        findings = [f for f in findings if f.rule in select]
    return findings


def run_lint(roots: Optional[Sequence[Path]] = None,
             select: Optional[Iterable[str]] = None) -> list[Finding]:
    """Lint every ``*.py`` under the given roots (default: ``src/repro``
    plus the repository's ``benchmarks/`` and ``examples/`` trees).

    Paths in findings are rendered relative to the repository root when
    the file lives under it, else left absolute.
    """
    src_dir = Path(__file__).resolve().parents[2]
    repo_root = src_dir.parent
    if roots is None:
        roots = [src_dir / "repro"]
        # Driver code rides along when the trees exist (installed
        # wheels carry only src/repro).
        roots += [d for d in (repo_root / "benchmarks",
                              repo_root / "examples") if d.is_dir()]
    selected = {r.upper() for r in select} if select is not None else None
    if selected is not None:
        unknown = selected - _EMITTABLE
        if unknown:
            raise ValueError(
                f"unknown lint rule id(s): {', '.join(sorted(unknown))} "
                f"(see `repro check --list-rules`)")
    findings: list[Finding] = []
    for root in roots:
        root = Path(root)
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            resolved = path.resolve()
            try:
                rel = str(resolved.relative_to(repo_root))
            except ValueError:
                rel = str(resolved)
            findings.extend(lint_file(path, rel.replace("\\", "/"),
                                      selected))
    return findings


def render_text(findings: list[Finding]) -> str:
    """Render findings one per line plus a trailing count."""
    if not findings:
        return "lint: clean"
    lines = [f.describe() for f in findings]
    lines.append(f"lint: {len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    return json.dumps({"schema": 1, "clean": not findings,
                       "findings": [f.to_dict() for f in findings]},
                      indent=2, sort_keys=True)
