"""Request-lifecycle tracking through branches and loops.

A structured abstract interpreter runs over every function body. Each
local request variable carries a set of possible statuses (``live``,
``done``, ``cancelled``); lists collect requests by ``append`` and a
``waitall``-family call completes their members. Branches join
element-wise, loops run to a small fixpoint, and each exit point
(every ``return`` plus the fall-off end) is checked for requests that
are possibly still live.

Rules emitted here:

- **S308** request-leak: a locally created request reaches an exit
  possibly live, without escaping (returned, yielded, stored into a
  container/attribute, captured by a nested function, or passed to an
  unknown callee — any of which moves responsibility elsewhere).
- **S311** double-wait: ``wait()`` on a request that a completing wait
  already finished on *every* path here.
- **S312** cancel-after-complete: ``cancel()`` on a must-completed
  request.
- **S305** partitioned lifecycle: ``pready``/``parrived`` while no cycle
  is active, and ``pready`` twice for one constant partition index in a
  single cycle.
- **S306** RMA epoch discipline (double Lock / Unlock without Lock /
  access outside any epoch in a function that uses explicit epochs).
- **S309** window-leak: a window created here is possibly dirty
  (unflushed RMA traffic) at an exit.

Everything is intraprocedural over locals, with interprocedural
summaries (``FuncInfo.waits_params``/``returns_request``) consulted at
call sites; non-local state is treated as unknown, never reported.
"""

from __future__ import annotations

import ast
from typing import Optional, Union

from .findings import StaticFinding
from .model import (FuncInfo, ModuleModel, PARTITIONED_INIT,
                    PERSISTENT_INIT, REQUEST_OPS, RMA_FLUSH, RMA_LOCK,
                    RMA_OPS, START_FUNCS, WAIT_FUNCS, dotted)

__all__ = ["check_lifecycle"]

_LIVE = frozenset({"live"})
_DONE = frozenset({"done"})
_CANCELLED = frozenset({"cancelled"})
_ACTIVE = frozenset({"active"})       # partitioned: cycle started
_INACTIVE = frozenset({"inactive"})   # partitioned: no active cycle
_DIRTY = frozenset({"dirty"})         # window: unflushed traffic
_CLEAN = frozenset({"clean"})

Status = frozenset


class _Env:
    """Abstract state: per-variable status sets plus escape/membership."""

    def __init__(self) -> None:
        self.vars: dict[str, Status] = {}
        self.escaped: set[str] = set()
        #: request var -> list var it was appended to
        self.member_of: dict[str, str] = {}
        #: list var -> set of statuses of anonymous members
        self.lists: dict[str, Status] = {}
        #: partitioned var -> const partition indices readied this cycle
        self.readied: dict[str, set[object]] = {}

    def copy(self) -> "_Env":
        """An independent copy for branch-local interpretation."""
        env = _Env()
        env.vars = dict(self.vars)
        env.escaped = set(self.escaped)
        env.member_of = dict(self.member_of)
        env.lists = dict(self.lists)
        env.readied = {k: set(v) for k, v in self.readied.items()}
        return env

    def join(self, other: "_Env") -> "_Env":
        """Path-join two environments (union of abstract states)."""
        env = _Env()
        for name in set(self.vars) | set(other.vars):
            env.vars[name] = (self.vars.get(name, frozenset())
                              | other.vars.get(name, frozenset()))
        env.escaped = self.escaped | other.escaped
        env.member_of = {**other.member_of, **self.member_of}
        for name in set(self.lists) | set(other.lists):
            env.lists[name] = (self.lists.get(name, frozenset())
                               | other.lists.get(name, frozenset()))
        for name in set(self.readied) | set(other.readied):
            env.readied[name] = (self.readied.get(name, set())
                                 | other.readied.get(name, set()))
        return env

    def same(self, other: "_Env") -> bool:
        return (self.vars == other.vars and self.escaped == other.escaped
                and self.lists == other.lists
                and self.readied == other.readied)


def check_lifecycle(model: ModuleModel) -> list[StaticFinding]:
    """Run the lifecycle interpreter over every function in the model."""
    out: list[StaticFinding] = []
    for info in model.functions.values():
        if info.qualname == "<module>":
            continue
        _Interp(model, info, out).run()
    out.extend(_check_epochs(model))
    return out


def _check_epochs(model: ModuleModel) -> list[StaticFinding]:
    """S306: epoch discipline over each scope's linear access order.

    Only functions that use explicit ``Lock`` epochs are held to the
    discipline (flush-only windows — the nwchem pattern — are exempt,
    mirroring the dynamic rule)."""
    out: list[StaticFinding] = []
    for accs in model.spawner_accesses.values():
        uses_lock = any(a.kind == "rma-lock" and a.op == "Lock"
                        for _, a in accs)
        if not uses_lock:
            continue
        locked: set[tuple[object, object]] = set()
        lock_all = False
        for _, acc in accs:
            if acc.obj is None:
                continue
            target = acc.peer.value if acc.peer.is_const else None
            key = (acc.obj, target)
            if acc.kind == "rma-lock":
                if acc.op == "Lock_all":
                    lock_all = True
                elif acc.peer.is_const and key in locked:
                    out.append(StaticFinding(
                        "S306",
                        f"double Lock of target {target!r} on window "
                        f"{acc.obj.describe()!r} without an intervening "
                        f"Unlock", model.path, acc.line, acc.col,
                        function=acc.func.qualname))
                else:
                    locked.add(key)
            elif acc.kind == "rma-flush" and acc.op in ("Unlock",
                                                        "Unlock_all"):
                if acc.op == "Unlock_all":
                    lock_all = False
                    locked.clear()
                elif acc.peer.is_const and key not in locked:
                    out.append(StaticFinding(
                        "S306",
                        f"Unlock of target {target!r} on window "
                        f"{acc.obj.describe()!r} without a matching "
                        f"Lock", model.path, acc.line, acc.col,
                        function=acc.func.qualname))
                else:
                    locked.discard(key)
            elif acc.kind == "rma" and not lock_all:
                if acc.peer.is_const and key not in locked \
                        and not any(k[0] == acc.obj for k in locked):
                    out.append(StaticFinding(
                        "S306",
                        f"{acc.op} on window {acc.obj.describe()!r} "
                        f"outside any Lock epoch in a function that "
                        f"uses explicit epochs", model.path, acc.line,
                        acc.col, function=acc.func.qualname))
    return out


class _Interp:
    """One function's abstract execution."""

    def __init__(self, model: ModuleModel, info: FuncInfo,
                 out: list[StaticFinding]):
        self.model = model
        self.info = info
        self.out = out
        self.reported: set[tuple[str, int]] = set()
        #: Names captured by nested defs: completion may happen in the
        #: other frame, so they are exempt from leak reporting.
        self.captured = _captured_names(info)
        self.in_loop = 0

    # -- reporting ------------------------------------------------------

    def flag(self, rule_id: str, node: ast.AST, message: str,
             **extra: object) -> None:
        """Record one finding, deduplicated by (rule, line)."""
        line = getattr(node, "lineno", 1)
        key = (rule_id, line)
        if key in self.reported:
            return
        self.reported.add(key)
        self.out.append(StaticFinding(
            rule_id, message, self.model.path, line,
            getattr(node, "col_offset", 0) + 1,
            function=self.info.qualname,
            extra={str(k): v for k, v in extra.items()}))

    # -- driver ---------------------------------------------------------

    def run(self) -> None:
        env = _Env()
        exit_env = self.exec_block(self.info.node.body, env)
        if exit_env is not None:
            self.check_exit(exit_env, self.info.node, "falls off the end")

    def check_exit(self, env: _Env, node: ast.AST, how: str) -> None:
        """Flag live requests/windows at a function exit point."""
        for name in sorted(env.vars):
            status = env.vars[name]
            if name in env.escaped or name in self.captured:
                continue
            if "live" in status and name not in env.member_of:
                must = status == _LIVE
                self.flag(
                    "S308", node,
                    f"request {name!r} is "
                    f"{'never' if must else 'possibly not'} completed "
                    f"before the function {how}; add a wait/waitall or "
                    f"hand the request to the caller",
                    request=name, must=must)
            if "dirty" in status:
                self.flag(
                    "S309", node,
                    f"window {name!r} has possibly unflushed RMA "
                    f"operations when the function {how}; add "
                    f"Flush/Flush_all (or Unlock) before exiting",
                    window=name)
        for lname in sorted(env.lists):
            if "live" in env.lists[lname] and lname not in env.escaped \
                    and lname not in self.captured:
                self.flag(
                    "S308", node,
                    f"request list {lname!r} possibly holds incomplete "
                    f"requests when the function {how}; a waitall is "
                    f"missing on this path", request=lname)

    # -- structured statement execution ---------------------------------

    def exec_block(self, stmts: list[ast.stmt],
                   env: Optional[_Env]) -> Optional[_Env]:
        """Interpret a statement list; None means the path terminated."""
        for stmt in stmts:
            if env is None:
                return None
            env = self.exec_stmt(stmt, env)
        return env

    def exec_stmt(self, stmt: ast.stmt, env: _Env) -> Optional[_Env]:
        """Interpret one statement over the abstract request state."""
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.eval_expr(stmt.value, env, escaping=True)
            self.check_exit(env, stmt, "returns here")
            return None
        if isinstance(stmt, (ast.Break, ast.Continue)):
            # Approximate: treat as falling through (the loop fixpoint
            # absorbs the imprecision; never report past one).
            return env
        if isinstance(stmt, ast.If):
            self.eval_expr(stmt.test, env)
            then_env = self.exec_block(stmt.body, env.copy())
            else_env = self.exec_block(stmt.orelse, env.copy())
            if then_env is None:
                return else_env
            if else_env is None:
                return then_env
            return then_env.join(else_env)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval_expr(stmt.iter, env)
            return self._exec_loop(stmt.body, stmt.orelse, env)
        if isinstance(stmt, ast.While):
            self.eval_expr(stmt.test, env)
            return self._exec_loop(stmt.body, stmt.orelse, env)
        if isinstance(stmt, ast.Try):
            body_env = self.exec_block(stmt.body, env.copy())
            merged = body_env if body_env is not None else env.copy()
            for handler in stmt.handlers:
                h_env = self.exec_block(handler.body, env.copy())
                if h_env is not None:
                    merged = merged.join(h_env)
            merged = self.exec_block(stmt.orelse, merged)
            if merged is None:
                return None
            return self.exec_block(stmt.finalbody, merged)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval_expr(item.context_expr, env)
            return self.exec_block(stmt.body, env)
        if isinstance(stmt, ast.Assign):
            self.exec_assign(stmt.targets, stmt.value, env)
            return env
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self.exec_assign([stmt.target], stmt.value, env)
            return env
        if isinstance(stmt, ast.AugAssign):
            self.eval_expr(stmt.value, env, escaping=True)
            return env
        if isinstance(stmt, ast.Expr):
            # A request-creating call whose result is discarded can never
            # be completed by anyone: a certain leak at the call site.
            status = self.request_status_of(stmt.value, env)
            if status == _LIVE:
                self.flag(
                    "S308", stmt,
                    "the request returned here is discarded; nothing can "
                    "ever complete it — bind it and wait (or waitall) "
                    "before the function exits")
            elif status is None:
                self.eval_expr(stmt.value, env)
            return env
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return env
        if isinstance(stmt, ast.Raise):
            self.check_exit(env, stmt, "raises here")
            return None
        # Everything else (Pass, Import, Assert, Delete, Global, ...)
        for sub in ast.iter_child_nodes(stmt):
            if isinstance(sub, ast.expr):
                self.eval_expr(sub, env)
        return env

    def _exec_loop(self, body: list[ast.stmt], orelse: list[ast.stmt],
                   env: _Env) -> Optional[_Env]:
        self.in_loop += 1
        cur = env.copy()
        for _ in range(3):
            nxt = self.exec_block(body, cur.copy())
            if nxt is None:
                break
            joined = cur.join(nxt)
            if joined.same(cur):
                cur = joined
                break
            cur = joined
        self.in_loop -= 1
        # The loop may run zero times: join with the entry state.
        after = env.join(cur)
        return self.exec_block(orelse, after)

    # -- assignments ----------------------------------------------------

    def exec_assign(self, targets: list[ast.expr], value: ast.AST,
                    env: _Env) -> None:
        """Bind assignment targets to the value's abstract status."""
        status = self.request_status_of(value, env)
        for target in targets:
            if isinstance(target, ast.Name):
                name = target.id
                if status is not None:
                    env.vars[name] = status
                    env.escaped.discard(name)
                    env.member_of.pop(name, None)
                    if status == _INACTIVE:
                        env.readied[name] = set()
                elif isinstance(value, (ast.List, ast.Tuple)) \
                        and not value.elts:
                    env.lists[name] = frozenset()
                    env.escaped.discard(name)
                elif isinstance(value, (ast.List, ast.Tuple)):
                    members: Status = frozenset()
                    for elt in value.elts:
                        st = self.request_status_of(elt, env) \
                            or self.status_of_name(elt, env)
                        if st is not None:
                            members |= st
                            if isinstance(elt, ast.Name):
                                env.member_of[elt.id] = name
                    env.lists[name] = members
                elif isinstance(value, ast.Name) \
                        and value.id in env.vars:
                    env.vars[name] = env.vars[value.id]
                else:
                    # Overwritten with something unrelated.
                    self.eval_expr(value, env, escaping=True)
                    env.vars.pop(name, None)
                    env.lists.pop(name, None)
            else:
                # Attribute/subscript target: the value escapes.
                self.eval_expr(value, env, escaping=True)

    def status_of_name(self, expr: ast.AST,
                       env: _Env) -> Optional[Status]:
        if isinstance(expr, ast.Name):
            return env.vars.get(expr.id)
        return None

    def request_status_of(self, value: ast.AST,
                          env: _Env) -> Optional[Status]:
        """Initial status when ``value`` creates a request/window."""
        inner = value
        if isinstance(inner, (ast.Await, ast.YieldFrom)):
            inner = inner.value
        if not isinstance(inner, ast.Call):
            return None
        fn = inner.func
        attr = fn.attr if isinstance(fn, ast.Attribute) else None
        name = fn.id if isinstance(fn, ast.Name) else None
        # Arguments of the creating call never escape requests, but
        # evaluate them for nested effects.
        for arg in inner.args:
            self.eval_expr(arg, env)
        if attr in REQUEST_OPS:
            return _LIVE
        if (attr or name) in PARTITIONED_INIT | PERSISTENT_INIT:
            return _INACTIVE
        if (attr or name) == "win_create":
            return _CLEAN
        callee = self.model.resolve_call(inner, self.info)
        if callee is not None and callee.returns_request:
            return _LIVE
        return None

    # -- expressions (calls are where everything happens) ---------------

    def eval_expr(self, expr: ast.AST, env: _Env,
                  escaping: bool = False) -> None:
        """Walk an expression, tracking request uses and escapes."""
        if isinstance(expr, (ast.Await, ast.YieldFrom, ast.Yield)):
            if expr.value is not None:
                # `yield req` hands the request to the consumer.
                self.eval_expr(expr.value, env,
                               escaping=isinstance(expr, (ast.Yield,)))
            return
        if isinstance(expr, ast.Call):
            self.eval_call(expr, env)
            return
        if isinstance(expr, ast.Name):
            if escaping and (expr.id in env.vars or expr.id in env.lists):
                env.escaped.add(expr.id)
            return
        for sub in ast.iter_child_nodes(expr):
            if isinstance(sub, ast.expr):
                # Inside containers/operators a tracked name escapes.
                self.eval_expr(sub, env, escaping=True)

    def eval_call(self, call: ast.Call, env: _Env) -> None:
        """Apply the effect of one call site to the abstract state."""
        fn = call.func
        attr = fn.attr if isinstance(fn, ast.Attribute) else None
        name = fn.id if isinstance(fn, ast.Name) else None
        base = fn.value if isinstance(fn, ast.Attribute) else None
        base_name = base.id if isinstance(base, ast.Name) else None

        if attr is not None and base_name is not None \
                and base_name in env.vars:
            self._request_method(call, env, base_name, attr, base)
            for arg in call.args:
                self.eval_expr(arg, env)
            return
        if attr is not None and base_name is not None \
                and base_name in env.lists and attr == "append" \
                and call.args:
            arg = call.args[0]
            st = self.request_status_of(arg, env)
            if isinstance(arg, ast.Name) and arg.id in env.vars:
                env.member_of[arg.id] = base_name
                env.lists[base_name] = (env.lists[base_name]
                                        | env.vars[arg.id])
            elif st is not None:
                env.lists[base_name] = env.lists[base_name] | st
            else:
                self.eval_expr(arg, env)
            return
        if (name or attr) in WAIT_FUNCS:
            self._wait_funcs(call, env, name or attr or "")
            return
        if (name or attr) in START_FUNCS:
            self._start_all(call, env)
            return
        # Generic call: resolved callees consume per their summary;
        # unresolved callees make request arguments escape.
        callee = self.model.resolve_call(call, self.info)
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Name) \
                    and (arg.id in env.vars or arg.id in env.lists):
                if callee is not None and i in callee.waits_params:
                    self._complete_name(arg.id, env)
                elif callee is None:
                    env.escaped.add(arg.id)
                # Resolved callee that does not wait: state unchanged
                # (the summary pass saw its body).
            else:
                self.eval_expr(arg, env)
        for kw in call.keywords:
            self.eval_expr(kw.value, env, escaping=True)

    # -- semantics of the modeled API -----------------------------------

    def _request_method(self, call: ast.Call, env: _Env, name: str,
                        attr: str, base: ast.AST) -> None:
        status = env.vars[name]
        if attr == "wait":
            if status == _DONE:
                self.flag("S311", call,
                          f"request {name!r} is waited again here, but "
                          f"a completing wait already finished it on "
                          f"every path to this point", request=name)
            env.vars[name] = _DONE
        elif attr == "test":
            # test() may or may not complete; both worlds stay possible,
            # but the *responsibility* was taken: polling loops that
            # drop the request afterwards are the dynamic checker's
            # business, not a static certainty.
            env.vars[name] = status | _DONE
            env.escaped.add(name)
        elif attr == "cancel":
            if status == _DONE:
                self.flag("S312", call,
                          f"cancel() on request {name!r} which a "
                          f"completing wait already finished on every "
                          f"path to this point", request=name)
            env.vars[name] = _CANCELLED | (status - _LIVE)
        elif attr == "start":
            env.vars[name] = _ACTIVE
            env.readied[name] = set()
        elif attr in ("pready", "parrived"):
            if status == _INACTIVE:
                self.flag("S305", call,
                          f"{attr}() on partitioned request {name!r} "
                          f"with no active cycle (start()/startall() "
                          f"not called on any path to this point)",
                          request=name)
            if attr == "pready" and call.args:
                idx = call.args[0]
                if isinstance(idx, ast.Constant):
                    ready = env.readied.setdefault(name, set())
                    if idx.value in ready and not self.in_loop:
                        self.flag(
                            "S305", call,
                            f"pready({idx.value!r}) called twice on "
                            f"{name!r} within one cycle", request=name)
                    ready.add(idx.value)
        elif attr in RMA_OPS:
            env.vars[name] = _DIRTY
        elif attr in RMA_FLUSH:
            env.vars[name] = _CLEAN
        elif attr in RMA_LOCK:
            env.vars[name] = env.vars[name]  # epoch pass handles Lock
        else:
            # Unknown method on a tracked object: hands-off.
            env.escaped.add(name)

    def _wait_funcs(self, call: ast.Call, env: _Env, op: str) -> None:
        if not call.args:
            return
        first = call.args[0]
        targets: list[ast.AST] = []
        if isinstance(first, (ast.List, ast.Tuple)):
            targets = list(first.elts)
        else:
            targets = [first]
        for t in targets:
            if isinstance(t, ast.Name):
                self._complete_name(t.id, env)
            else:
                self.eval_expr(t, env)

    def _complete_name(self, name: str, env: _Env) -> None:
        if name in env.lists:
            if env.lists[name]:
                env.lists[name] = _mark_done(env.lists[name])
            for member, owner in env.member_of.items():
                if owner == name and member in env.vars:
                    env.vars[member] = _mark_done(env.vars[member])
        elif name in env.vars:
            env.vars[name] = _mark_done(env.vars[name])
            env.readied.pop(name, None)

    def _start_all(self, call: ast.Call, env: _Env) -> None:
        if not call.args:
            return
        first = call.args[0]
        elts = (list(first.elts)
                if isinstance(first, (ast.List, ast.Tuple)) else [first])
        for t in elts:
            if isinstance(t, ast.Name):
                if t.id in env.vars:
                    env.vars[t.id] = _ACTIVE
                    env.readied[t.id] = set()
                elif t.id in env.lists:
                    env.lists[t.id] = _ACTIVE


def _mark_done(status: Status) -> Status:
    """Completion: live/active/inactive collapse to done."""
    rest = status - _LIVE - _ACTIVE - _INACTIVE
    return rest | _DONE


def _captured_names(info: FuncInfo) -> set[str]:
    """Names of ``info`` loaded inside nested function definitions."""
    captured: set[str] = set()
    own = set(info.params) | info.locals_
    for node in ast.walk(info.node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not info.node:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) \
                        and isinstance(sub.ctx, ast.Load) \
                        and sub.id in own:
                    captured.add(sub.id)
        if isinstance(node, ast.Lambda):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and sub.id in own:
                    captured.add(sub.id)
    return captured
