"""The shared program model for the static analyzer.

One parse of the target module produces everything the four passes need:

- a **function table** (:class:`FuncInfo`) with lexical scope links, so
  closure variables resolve to the scope that defines them;
- a lexical **call graph** (``resolve_call``) over same-module functions
  (``self.meth`` resolves within the class, plain names up the scope
  chain);
- **thread regions** (:class:`Region`): every ``*.spawn(gen(...))`` /
  ``world.run_all([...])`` site, with instance multiplicity (a spawn
  inside a loop or comprehension means *many* concurrent instances) and
  a join window closed by ``all_of``/``run_all``;
- per-region **access lists** (:class:`Access`): request wait/test/
  cancel, point-to-point sends/receives with abstract (peer, tag)
  coordinates, collectives, RMA traffic and lock acquisitions — each
  annotated with the lockset held and whether a ``param == const`` guard
  restricts it to a single instance.

Everything here is deliberately *syntactic*: the model never imports or
executes the target, and identical source text always yields an
identical model (the determinism property the test suite checks).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

__all__ = [
    "AbstractVal", "Access", "FuncInfo", "ModuleModel", "Region",
    "build_model", "dotted",
    "REQUEST_OPS", "PARTITIONED_INIT", "WAIT_FUNCS", "COLLECTIVES",
    "ICOLLECTIVES", "RMA_OPS", "RMA_FLUSH", "RMA_LOCK", "BLOCKING_SENDS",
    "BLOCKING_RECVS",
]

# -- The modeled API surface (method/function names) ---------------------

#: Communicator methods returning a request.
REQUEST_OPS = frozenset({
    "Isend", "Issend", "Ibsend", "Irsend", "Irecv", "Imrecv",
    "Ibarrier", "Ibcast", "Iallreduce",
})

#: Module-level helpers returning a partitioned/persistent request.
PARTITIONED_INIT = frozenset({"psend_init", "precv_init"})
PERSISTENT_INIT = frozenset({"send_init", "recv_init"})

#: Request methods that complete (or may complete) the request.
REQ_WAIT_METHODS = frozenset({"wait", "test"})
REQ_CANCEL_METHODS = frozenset({"cancel"})

#: Free functions completing every request in their first argument.
WAIT_FUNCS = frozenset({
    "waitall", "waitany", "testall", "testany", "waitall_partitioned",
    "wait_all_persistent",
})
START_FUNCS = frozenset({"startall", "start_all_persistent"})

BLOCKING_SENDS = frozenset({"Send", "Ssend", "Bsend", "Rsend"})
BLOCKING_RECVS = frozenset({"Recv", "Mrecv", "Probe", "Iprobe", "Mprobe",
                            "Improbe"})

#: Blocking collectives (communicator methods).
COLLECTIVES = frozenset({
    "Barrier", "Bcast", "Reduce", "Allreduce", "Allgather", "Allgatherv",
    "Alltoall", "Gather", "Gatherv", "Scatter", "Scan",
    "Reduce_scatter_block",
})
ICOLLECTIVES = frozenset({"Ibarrier", "Ibcast", "Iallreduce"})

RMA_OPS = frozenset({"Put", "Get", "Accumulate", "Get_accumulate",
                     "Fetch_and_op", "Compare_and_swap"})
RMA_ATOMIC = frozenset({"Accumulate", "Get_accumulate", "Fetch_and_op",
                        "Compare_and_swap"})
RMA_FLUSH = frozenset({"Flush", "Flush_all", "Flush_local",
                       "Flush_local_all", "Unlock", "Unlock_all", "Fence"})
RMA_LOCK = frozenset({"Lock", "Lock_all"})

JOIN_NAMES = frozenset({"all_of", "run_all"})
SPAWN_NAMES = frozenset({"spawn"})
WILDCARDS = frozenset({"ANY_SOURCE", "ANY_TAG"})

LOCK_ACQUIRE = frozenset({"acquire"})
LOCK_RELEASE = frozenset({"release"})


def dotted(node: ast.AST) -> Optional[str]:
    """Render an attribute/name chain as a dotted path (else ``None``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# -- Abstract values for channel coordinates -----------------------------

@dataclass(frozen=True)
class AbstractVal:
    """Abstract (peer, tag) coordinate: a known constant, a value that
    differs per thread-region instance (derived from a region/function
    parameter), or unknown."""

    kind: str  # "const" | "threaddep" | "unknown"
    value: object = None

    @property
    def is_const(self) -> bool:
        return self.kind == "const"


CONST_UNKNOWN = AbstractVal("unknown")
CONST_THREADDEP = AbstractVal("threaddep")


# -- Function table ------------------------------------------------------

FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FuncInfo:
    """One function/method definition with its lexical scope links."""

    name: str
    qualname: str
    node: FuncNode
    parent: Optional["FuncInfo"]
    class_name: Optional[str]
    params: tuple[str, ...]
    #: Names bound by assignment/for/with targets inside this function.
    locals_: set[str] = field(default_factory=set)
    #: Nested function definitions visible by name from this scope.
    defs: dict[str, "FuncInfo"] = field(default_factory=dict)
    #: Local names assigned exactly once from a literal constant.
    consts: dict[str, object] = field(default_factory=dict)
    #: Local names assigned (anywhere) from a request-returning expression.
    request_vars: set[str] = field(default_factory=set)
    #: Local names assigned from a partitioned/persistent init.
    partitioned_vars: set[str] = field(default_factory=set)
    #: Summary: some ``return`` hands a request back to the caller.
    returns_request: bool = False
    #: Summary: parameter indices this function completes (wait/test/
    #: waitall) on some path, directly or through one callee level.
    waits_params: set[int] = field(default_factory=set)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FuncInfo {self.qualname}>"


@dataclass(frozen=True)
class SharedKey:
    """Identity of a variable as seen across scopes: the scope that
    defines it plus its name (``scope`` is ``<module>`` for globals,
    ``self.<Class>`` for instance attributes)."""

    scope: str
    name: str

    def describe(self) -> str:
        return (self.name if self.scope == "<module>"
                else f"{self.scope}:{self.name}")


@dataclass
class Access:
    """One modeled operation at a source location."""

    kind: str            # wait|test|cancel|send|recv|collective|icollective
    #                    # |rma|lock-acquire|lock-release|pready|parrived
    node: ast.AST
    func: "FuncInfo"     # lexical function containing the access
    obj: Optional[SharedKey] = None   # request/lock/window identity
    comm: Optional[str] = None        # dotted comm expression (display)
    #: Scope-qualified comm identity: equal ids mean provably the same
    #: communicator object across accesses.
    comm_id: Optional[str] = None
    comm_shared: bool = False         # comm not rooted at a region param
    peer: AbstractVal = CONST_UNKNOWN
    tag: AbstractVal = CONST_UNKNOWN
    wildcard_source: bool = False
    wildcard_tag: bool = False
    op: str = ""                      # API name (Isend, Allreduce, Put...)
    locks: frozenset[str] = frozenset()
    guarded: bool = False             # under a `param == const` guard
    #: Branch context: (If-node id, arm) pairs; sibling arms of one If
    #: are mutually exclusive.
    branches: tuple[tuple[int, str], ...] = ()

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1)

    @property
    def col(self) -> int:
        return getattr(self.node, "col_offset", 0) + 1


@dataclass
class Region:
    """One thread-region instance group: a spawn site and the function
    whose body runs as the simulated thread."""

    func: FuncInfo
    spawner: Optional[FuncInfo]       # None: spawned at module level
    spawn_node: ast.AST
    index: int                        # ordinal among the module's regions
    many: bool                        # spawned in a loop/comprehension
    start_pos: int                    # traversal position of the spawn
    end_pos: int                      # position of the closing join (or
    #                                 # a sentinel past the function end)
    spawn_base: Optional[str]         # dotted spawner object (proc, sim)
    accesses: list[Access] = field(default_factory=list)

    @property
    def line(self) -> int:
        return getattr(self.spawn_node, "lineno", 1)

    def concurrent_with(self, other: "Region") -> bool:
        """Whether instances of ``self`` and ``other`` can be live at the
        same time: both windows open simultaneously in one spawner."""
        if self.spawner is not other.spawner:
            return False
        return (self.start_pos < other.end_pos
                and other.start_pos < self.end_pos)


def _branch_compatible(a: tuple[tuple[int, str], ...],
                       b: tuple[tuple[int, str], ...]) -> bool:
    """False when the two contexts sit in sibling arms of one If."""
    arms_a = dict(a)
    for if_id, arm in b:
        if if_id in arms_a and arms_a[if_id] != arm:
            return False
    return True


# -- Module model --------------------------------------------------------

class ModuleModel:
    """The parsed module plus everything the passes share."""

    def __init__(self, tree: ast.Module, path: str):
        self.tree = tree
        self.path = path
        self.functions: dict[str, FuncInfo] = {}
        self.by_node: dict[int, FuncInfo] = {}
        #: Module-level defs visible from everywhere.
        self.module_defs: dict[str, FuncInfo] = {}
        self.module_consts: dict[str, object] = {}
        self.module_locals: set[str] = set()
        self.regions: list[Region] = []
        #: SharedKeys known to hold requests (assigned from request ops).
        self.request_keys: set[SharedKey] = set()
        #: Per-scope linear access lists (scope qualname -> positioned
        #: accesses); ``None`` keys the module body.
        self.spawner_accesses: dict[Optional[str],
                                    list[tuple[int, Access]]] = {}
        _Builder(self).build()
        _summarize(self)
        _find_regions(self)

    # -- scope/lookup helpers -------------------------------------------

    def resolve_call(self, call: ast.Call,
                     scope: Optional[FuncInfo]) -> Optional[FuncInfo]:
        """Resolve a call expression to a same-module function, walking
        the lexical scope chain (``self.meth`` resolves in-class)."""
        fn = call.func
        if isinstance(fn, ast.Name):
            cur = scope
            while cur is not None:
                if fn.id in cur.defs:
                    return cur.defs[fn.id]
                cur = cur.parent
            return self.module_defs.get(fn.id)
        if isinstance(fn, ast.Attribute) and \
                isinstance(fn.value, ast.Name) and fn.value.id == "self" \
                and scope is not None and scope.class_name is not None:
            return self.functions.get(f"{scope.class_name}.{fn.attr}")
        return None

    def defining_scope(self, name: str,
                       scope: Optional[FuncInfo]) -> Optional[str]:
        """Qualname of the scope that binds ``name`` (or ``<module>``)."""
        cur = scope
        while cur is not None:
            if name in cur.params or name in cur.locals_ \
                    or name in cur.defs:
                return cur.qualname
            cur = cur.parent
        if name in self.module_locals or name in self.module_defs:
            return "<module>"
        return None

    def shared_key(self, expr: ast.AST,
                   scope: Optional[FuncInfo]) -> Optional[SharedKey]:
        """Identity of ``expr`` as a cross-scope variable, when it has
        one: a plain name (keyed by defining scope) or ``self.attr``."""
        if isinstance(expr, ast.Name):
            where = self.defining_scope(expr.id, scope)
            if where is None:
                return None
            return SharedKey(where, expr.id)
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id == "self" and scope is not None \
                and scope.class_name is not None:
            return SharedKey(f"self.{scope.class_name}", expr.attr)
        return None

    def is_param_of(self, name: str, func: Optional[FuncInfo]) -> bool:
        return func is not None and name in func.params

    def abstract(self, expr: Optional[ast.AST], scope: Optional[FuncInfo],
                 region_func: Optional[FuncInfo]) -> AbstractVal:
        """Abstract value of a (peer or tag) expression."""
        if expr is None:
            return CONST_UNKNOWN
        if isinstance(expr, ast.Constant):
            return AbstractVal("const", expr.value)
        if isinstance(expr, ast.UnaryOp) \
                and isinstance(expr.op, ast.USub) \
                and isinstance(expr.operand, ast.Constant) \
                and isinstance(expr.operand.value, (int, float)):
            return AbstractVal("const", -expr.operand.value)
        if isinstance(expr, ast.Name):
            if self.is_param_of(expr.id, scope) \
                    or self.is_param_of(expr.id, region_func):
                return CONST_THREADDEP
            cur = scope
            while cur is not None:
                if expr.id in cur.consts:
                    return AbstractVal("const", cur.consts[expr.id])
                if expr.id in cur.locals_ or expr.id in cur.params:
                    return CONST_UNKNOWN
                cur = cur.parent
            if expr.id in self.module_consts:
                return AbstractVal("const", self.module_consts[expr.id])
            return CONST_UNKNOWN
        # Any parameter occurring anywhere in the expression makes the
        # value thread-dependent (tid * 2, tag_of(tid), tags[tid], ...).
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) \
                    and (self.is_param_of(sub.id, scope)
                         or self.is_param_of(sub.id, region_func)):
                return CONST_THREADDEP
        return CONST_UNKNOWN

    @staticmethod
    def concurrent_accesses(a: Access, b: Access) -> bool:
        """Branch-compatibility of two accesses (same-instance guards and
        region windows are checked by the caller)."""
        return _branch_compatible(a.branches, b.branches)


def is_wildcard(expr: Optional[ast.AST]) -> bool:
    """ANY_SOURCE/ANY_TAG by bare or dotted name."""
    if expr is None:
        return False
    if isinstance(expr, ast.Name):
        return expr.id in WILDCARDS
    if isinstance(expr, ast.Attribute):
        return expr.attr in WILDCARDS
    return False


def _request_call_name(value: ast.AST) -> Optional[str]:
    """API name when ``value`` is ``[yield from] <expr>.<ReqOp>(...)`` or
    ``[yield from] <init_helper>(...)``."""
    if isinstance(value, (ast.Await, ast.YieldFrom)):
        value = value.value
    if not isinstance(value, ast.Call):
        return None
    fn = value.func
    if isinstance(fn, ast.Attribute) and fn.attr in (
            REQUEST_OPS | PARTITIONED_INIT | PERSISTENT_INIT):
        return fn.attr
    if isinstance(fn, ast.Name) and fn.id in (
            PARTITIONED_INIT | PERSISTENT_INIT):
        return fn.id
    return None


# -- Pass 1: build the function table ------------------------------------

class _Builder(ast.NodeVisitor):
    """Collect functions, scopes, locals, and constant bindings."""

    def __init__(self, model: ModuleModel):
        self.model = model
        self.scope: Optional[FuncInfo] = None
        self.class_stack: list[str] = []
        self._assign_counts: dict[tuple[Optional[str], str], int] = {}

    def build(self) -> None:
        self.visit(self.model.tree)

    # -- scope management ---------------------------------------------

    def _enter_function(self, node: FuncNode) -> FuncInfo:
        args = node.args
        params = tuple(
            a.arg for a in (list(args.posonlyargs) + list(args.args)
                            + list(args.kwonlyargs))
            if a.arg not in ("self", "cls"))
        class_name = self.class_stack[-1] if self.class_stack else None
        if self.scope is not None:
            qual = f"{self.scope.qualname}.{node.name}"
        elif class_name is not None:
            qual = f"{class_name}.{node.name}"
        else:
            qual = node.name
        info = FuncInfo(node.name, qual, node, self.scope, class_name,
                        params)
        self.model.functions[qual] = info
        self.model.by_node[id(node)] = info
        if self.scope is not None:
            self.scope.defs[node.name] = info
        elif not self.class_stack:
            self.model.module_defs[node.name] = info
        return info

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function(node)

    def _function(self, node: FuncNode) -> None:
        info = self._enter_function(node)
        outer, self.scope = self.scope, info
        for child in node.body:
            self.visit(child)
        self.scope = outer

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Collect methods under their qualified class name."""
        self.class_stack.append(node.name)
        for child in node.body:
            self.visit(child)
        self.class_stack.pop()

    # -- bindings -------------------------------------------------------

    def _bind(self, name: str, value: Optional[ast.AST]) -> None:
        if self.scope is not None:
            self.scope.locals_.add(name)
        else:
            self.model.module_locals.add(name)
        scope_name = self.scope.qualname if self.scope else None
        key = (scope_name, name)
        self._assign_counts[key] = self._assign_counts.get(key, 0) + 1
        consts = (self.scope.consts if self.scope
                  else self.model.module_consts)
        if value is not None and isinstance(value, ast.Constant) \
                and self._assign_counts[key] == 1:
            consts[name] = value.value
        else:
            consts.pop(name, None)
        if value is not None:
            op = _request_call_name(value)
            if op is not None and self.scope is not None:
                self.scope.request_vars.add(name)
                if op in (PARTITIONED_INIT | PERSISTENT_INIT):
                    self.scope.partitioned_vars.add(name)

    def _bind_target(self, target: ast.AST,
                     value: Optional[ast.AST]) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, None)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, None)

    def visit_Assign(self, node: ast.Assign) -> None:
        """Record name bindings for provenance resolution."""
        for target in node.targets:
            self._bind_target(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind_target(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._bind_target(node.target, None)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._bind_target(node.target, None)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        """Record ``with ... as name`` bindings."""
        for item in node.items:
            if item.optional_vars is not None:
                self._bind_target(item.optional_vars, None)
        self.generic_visit(node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self._bind_target(node.target, node.value)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._bind_target(node.target, None)
        self.generic_visit(node)


# -- Pass 2: function summaries ------------------------------------------

def _summarize(model: ModuleModel) -> None:
    """Two bounded rounds of summary propagation over the call graph:
    which functions return requests, and which complete their params."""
    for _ in range(2):
        changed = False
        for info in model.functions.values():
            changed |= _summarize_one(model, info)
        if not changed:
            break


def _summarize_one(model: ModuleModel, info: FuncInfo) -> bool:
    changed = False
    for node in ast.walk(info.node):
        # Nested defs are walked on their own; skip their bodies here.
        if isinstance(node, ast.Return) and node.value is not None:
            val = node.value
            if _request_call_name(val) is not None:
                if not info.returns_request:
                    info.returns_request = changed = True
            elif isinstance(val, ast.Name) \
                    and val.id in info.request_vars \
                    and not info.returns_request:
                info.returns_request = changed = True
            elif isinstance(val, (ast.Await, ast.YieldFrom)) \
                    and isinstance(val.value, ast.Call):
                callee = model.resolve_call(val.value, info)
                if callee is not None and callee.returns_request \
                        and not info.returns_request:
                    info.returns_request = changed = True
        if isinstance(node, ast.Call):
            changed |= _note_param_wait(model, info, node)
    # Propagate request-ness through `x = [yield from] helper(...)`.
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            val: ast.AST = node.value
            if isinstance(val, (ast.Await, ast.YieldFrom)):
                val = val.value
            if isinstance(val, ast.Call):
                callee = model.resolve_call(val, info)
                if callee is not None and callee.returns_request \
                        and node.targets[0].id not in info.request_vars:
                    info.request_vars.add(node.targets[0].id)
                    changed = True
    return changed


def _note_param_wait(model: ModuleModel, info: FuncInfo,
                     call: ast.Call) -> bool:
    """Record params of ``info`` completed by this call site."""
    changed = False

    def mark(name: str) -> None:
        nonlocal changed
        if name in info.params:
            idx = info.params.index(name)
            if idx not in info.waits_params:
                info.waits_params.add(idx)
                changed = True

    fn = call.func
    if isinstance(fn, ast.Attribute) and fn.attr in (
            REQ_WAIT_METHODS | REQ_CANCEL_METHODS) \
            and isinstance(fn.value, ast.Name):
        mark(fn.value.id)
    name_of = fn.id if isinstance(fn, ast.Name) else (
        fn.attr if isinstance(fn, ast.Attribute) else None)
    if name_of in WAIT_FUNCS and call.args:
        first = call.args[0]
        if isinstance(first, ast.Name):
            mark(first.id)
        elif isinstance(first, (ast.List, ast.Tuple)):
            for elt in first.elts:
                if isinstance(elt, ast.Name):
                    mark(elt.id)
    # One level of interprocedural propagation through resolved callees.
    callee = model.resolve_call(call, info)
    if callee is not None:
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Name) and i in callee.waits_params:
                mark(arg.id)
    return changed


# -- Pass 3: regions and their windows -----------------------------------

def _spawned_func(model: ModuleModel, call: ast.Call,
                  scope: Optional[FuncInfo]) -> Optional[FuncInfo]:
    """The function whose generator is passed to a spawn call."""
    if not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Call):
        return model.resolve_call(arg, scope)
    return None


class _RegionFinder(ast.NodeVisitor):
    """Linear source-order walk of one function (or the module body)
    collecting spawn/join events and the scope's own modeled accesses."""

    def __init__(self, model: ModuleModel, scope: Optional[FuncInfo]):
        self.model = model
        self.scope = scope
        self.pos = 0
        self.loop_depth = 0
        self.branches: list[tuple[int, str]] = []
        self.locks: list[str] = []
        self.guard_depth = 0
        self.open_regions: list[Region] = []
        self.events: list[tuple[str, object]] = []
        self.accesses: list[tuple[int, Access]] = []

    def run(self) -> None:
        """Scan the scope body, building regions and access lists."""
        body = (self.scope.node.body if self.scope is not None
                else self.model.tree.body)
        for stmt in body:
            self.visit(stmt)
        self._close_open(self.pos + 1)

    def _close_open(self, pos: int) -> None:
        for region in self.open_regions:
            region.end_pos = pos
        self.open_regions = []

    # Do not descend into nested function/class definitions: they run
    # in their own frame and are modeled separately.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return

    def visit_If(self, node: ast.If) -> None:
        """Track rank guards so branch accesses are marked guarded."""
        self.pos += 1
        self.visit(node.test)
        guarded = self._is_instance_guard(node.test)
        self.branches.append((id(node), "body"))
        if guarded:
            self.guard_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if guarded:
            self.guard_depth -= 1
        self.branches[-1] = (id(node), "orelse")
        for stmt in node.orelse:
            self.visit(stmt)
        self.branches.pop()

    def _is_instance_guard(self, test: ast.AST) -> bool:
        """``param == const`` limits the guarded block to one instance
        of a multi-instance region."""
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Eq)):
            return False
        left, right = test.left, test.comparators[0]
        for a, b in ((left, right), (right, left)):
            if isinstance(a, ast.Name) and isinstance(b, ast.Constant) \
                    and self.model.is_param_of(a.id, self.scope):
                return True
            if isinstance(a, ast.Call) and isinstance(b, ast.Constant):
                # e.g. `self.geom.linear_tid(t) == 0`: any call of a
                # param keeps the completion on a single instance.
                if any(isinstance(x, ast.Name)
                       and self.model.is_param_of(x.id, self.scope)
                       for x in ast.walk(a)):
                    return True
        return False

    def _loop(self, node: ast.AST, body: list[ast.stmt],
              orelse: list[ast.stmt]) -> None:
        self.pos += 1
        self.loop_depth += 1
        for stmt in body:
            self.visit(stmt)
        self.loop_depth -= 1
        for stmt in orelse:
            self.visit(stmt)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._loop(node, node.body, node.orelse)

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._loop(node, node.body, node.orelse)

    # -- calls: spawns, joins, locks, comm accesses ---------------------

    def visit_Call(self, node: ast.Call) -> None:
        """Classify one call site: spawn, join, lock or MPI access."""
        self.pos += 1
        fn = node.func
        attr = fn.attr if isinstance(fn, ast.Attribute) else None
        name = fn.id if isinstance(fn, ast.Name) else None
        in_comp = self.loop_depth > 0

        if attr in SPAWN_NAMES:
            target = _spawned_func(self.model, node, self.scope)
            if target is not None:
                base = dotted(fn.value) if isinstance(fn, ast.Attribute) \
                    else None
                region = Region(
                    func=target, spawner=self.scope, spawn_node=node,
                    index=len(self.model.regions), many=in_comp,
                    start_pos=self.pos, end_pos=1 << 30, spawn_base=base)
                self.model.regions.append(region)
                self.open_regions.append(region)
        elif (attr in JOIN_NAMES) or (name in JOIN_NAMES):
            if attr == "run_all" or name == "run_all":
                self._run_all(node)
            self._close_open(self.pos)
        else:
            self._record_access(node, attr, name)
        self.generic_visit(node)

    def _run_all(self, node: ast.Call) -> None:
        """``world.run_all([f1(...), f2(...)])`` spawns and joins."""
        if not node.args:
            return
        arg = node.args[0]
        elts = arg.elts if isinstance(arg, (ast.List, ast.Tuple)) else []
        many = isinstance(arg, (ast.ListComp, ast.GeneratorExp))
        targets: list[Optional[FuncInfo]] = []
        if many and isinstance(arg, (ast.ListComp, ast.GeneratorExp)) \
                and isinstance(arg.elt, ast.Call):
            targets = [self.model.resolve_call(arg.elt, self.scope)]
        for elt in elts:
            if isinstance(elt, ast.Call):
                targets.append(self.model.resolve_call(elt, self.scope))
        for target in targets:
            if target is None:
                continue
            region = Region(
                func=target, spawner=self.scope, spawn_node=node,
                index=len(self.model.regions), many=many,
                start_pos=self.pos, end_pos=self.pos + 1, spawn_base=None)
            self.model.regions.append(region)

    def _comm_of(self, fn: ast.Attribute) -> tuple[Optional[str],
                                                   Optional[str], bool]:
        """Display name, scope-qualified identity and sharedness of the
        communicator expression. A comm rooted at a parameter or a local
        of the accessing function is per-instance (each spawned frame
        sees its own object) — only closure/module/self-rooted comms are
        provably shared across concurrent instances."""
        comm = dotted(fn.value)
        if comm is None:
            return None, None, False
        root = comm.split(".", 1)[0]
        scope_name = (self.scope.qualname if self.scope is not None
                      else "<module>")
        if self.model.is_param_of(root, self.scope):
            return comm, f"{scope_name}:{comm}", False
        where = self.model.defining_scope(root, self.scope)
        if where is None:
            # Unresolved (self.*, imported names): shared by dotted path.
            return comm, f"<extern>:{comm}", True
        if self.scope is not None and where == scope_name:
            # Local of the accessing function: per-instance.
            return comm, f"{where}:{comm}", False
        return comm, f"{where}:{comm}", True

    def _kw(self, node: ast.Call, name: str,
            pos: int) -> Optional[ast.AST]:
        for kw in node.keywords:
            if kw.arg == name:
                return kw.value
        if len(node.args) > pos:
            return node.args[pos]
        return None

    def _add(self, acc: Access) -> None:
        acc.locks = frozenset(self.locks)
        acc.guarded = self.guard_depth > 0
        acc.branches = tuple(self.branches)
        self.accesses.append((self.pos, acc))

    def _record_access(self, node: ast.Call, attr: Optional[str],
                       name: Optional[str]) -> None:
        model, scope = self.model, self.scope
        fn = node.func
        if attr is not None and isinstance(fn, ast.Attribute):
            base = fn.value
            if attr in (REQ_WAIT_METHODS | REQ_CANCEL_METHODS
                        | {"pready", "parrived", "start"}):
                key = model.shared_key(base, scope)
                kind = ("cancel" if attr in REQ_CANCEL_METHODS else
                        "pready" if attr == "pready" else
                        "parrived" if attr == "parrived" else
                        "start" if attr == "start" else attr)
                if key is not None:
                    self._add(Access(kind, node, scope_or_module(scope),
                                     obj=key, op=attr))
                return
            if attr in LOCK_ACQUIRE | LOCK_RELEASE:
                lock = dotted(base)
                if lock is not None:
                    if attr in LOCK_ACQUIRE:
                        self._add(Access("lock-acquire", node,
                                         scope_or_module(scope),
                                         obj=SharedKey("<lock>", lock),
                                         op=attr))
                        self.locks.append(lock)
                    else:
                        self._add(Access("lock-release", node,
                                         scope_or_module(scope),
                                         obj=SharedKey("<lock>", lock),
                                         op=attr))
                        if lock in self.locks:
                            self.locks.remove(lock)
                return
            if attr in REQUEST_OPS | BLOCKING_SENDS | BLOCKING_RECVS:
                comm, comm_id, shared = self._comm_of(fn)
                is_recv = "recv" in attr.lower() or "probe" in attr.lower()
                peer_idx, tag_idx = (1, 2)
                if attr in ("Probe", "Iprobe", "Mprobe", "Improbe"):
                    peer_idx, tag_idx = (0, 1)
                peer_expr = self._kw(node, "source" if is_recv else "dest",
                                     peer_idx)
                tag_expr = self._kw(node, "tag", tag_idx)
                if attr in ("Ibarrier", "Ibcast", "Iallreduce"):
                    self._add(Access("icollective", node,
                                     scope_or_module(scope), comm=comm,
                                     comm_id=comm_id,
                                     comm_shared=shared, op=attr))
                    return
                self._add(Access(
                    "recv" if is_recv else "send", node,
                    scope_or_module(scope), comm=comm, comm_id=comm_id,
                    comm_shared=shared,
                    peer=model.abstract(peer_expr, scope, scope),
                    tag=model.abstract(tag_expr, scope, scope),
                    wildcard_source=is_recv and is_wildcard(peer_expr),
                    wildcard_tag=is_wildcard(tag_expr), op=attr))
                return
            if attr in COLLECTIVES:
                comm, comm_id, shared = self._comm_of(fn)
                self._add(Access("collective", node,
                                 scope_or_module(scope), comm=comm,
                                 comm_id=comm_id,
                                 comm_shared=shared, op=attr))
                return
            if attr in RMA_OPS | RMA_FLUSH | RMA_LOCK:
                key = model.shared_key(base, scope)
                kind = ("rma" if attr in RMA_OPS else
                        "rma-flush" if attr in RMA_FLUSH else "rma-lock")
                # Data ops take (buf, target=, disp=); epoch/flush ops
                # (Lock/Unlock/Flush) take the target as their sole
                # positional argument.
                t_idx = 1 if attr in RMA_OPS else 0
                target = model.abstract(self._kw(node, "target", t_idx),
                                        scope, scope)
                disp = model.abstract(self._kw(node, "disp", 2),
                                      scope, scope)
                self._add(Access(kind, node, scope_or_module(scope),
                                 obj=key, op=attr, peer=target, tag=disp))
                return
            if attr == "Test" and node.args:
                key = model.shared_key(node.args[0], scope)
                if key is not None:
                    self._add(Access("test", node, scope_or_module(scope),
                                     obj=key, op="Test"))
                return
        if name in WAIT_FUNCS or attr in WAIT_FUNCS:
            first = node.args[0] if node.args else None
            targets: list[ast.AST] = []
            if isinstance(first, ast.Name):
                targets = [first]
            elif isinstance(first, (ast.List, ast.Tuple)):
                targets = list(first.elts)
            for t in targets:
                key = model.shared_key(t, scope)
                if key is not None:
                    self._add(Access("wait", node, scope_or_module(scope),
                                     obj=key, op=name or attr or ""))
            return


_MODULE_SENTINEL: Optional[FuncInfo] = None


def scope_or_module(scope: Optional[FuncInfo]) -> FuncInfo:
    """A real FuncInfo for accesses at module level (sentinel scope)."""
    global _MODULE_SENTINEL
    if scope is not None:
        return scope
    if _MODULE_SENTINEL is None:
        node = ast.parse("def _module_(): pass").body[0]
        assert isinstance(node, ast.FunctionDef)
        _MODULE_SENTINEL = FuncInfo("<module>", "<module>", node, None,
                                    None, ())
    return _MODULE_SENTINEL


def _find_regions(model: ModuleModel) -> None:
    """Run the linear walk over every scope, then attribute accesses to
    regions (the region function plus its resolved callees)."""
    walks: dict[Optional[str], _RegionFinder] = {}
    finder = _RegionFinder(model, None)
    finder.run()
    walks[None] = finder
    for info in model.functions.values():
        f = _RegionFinder(model, info)
        f.run()
        walks[info.qualname] = f
    # Request-typed shared keys.
    for info in model.functions.values():
        for name in info.request_vars:
            model.request_keys.add(SharedKey(info.qualname, name))
    # Attach accesses: the region's own function plus callees (bounded
    # transitive closure over the same-module call graph).
    for region in model.regions:
        seen: set[str] = set()
        frontier = [region.func]
        depth = 0
        while frontier and depth < 4:
            nxt: list[FuncInfo] = []
            for func in frontier:
                if func.qualname in seen:
                    continue
                seen.add(func.qualname)
                walk = walks.get(func.qualname)
                if walk is None:
                    continue
                region.accesses.extend(a for _, a in walk.accesses)
                for node in ast.walk(func.node):
                    if isinstance(node, ast.Call):
                        callee = model.resolve_call(node, func)
                        if callee is not None \
                                and callee.qualname not in seen:
                            nxt.append(callee)
            frontier = nxt
            depth += 1
    # Spawner-side accesses inside each region's open window race with
    # the region exactly like a sibling region would.
    for qual, walk in walks.items():
        model.spawner_accesses[qual] = walk.accesses


def build_model(source: str, path: str = "<string>") -> ModuleModel:
    """Parse ``source`` and build the full program model."""
    tree = ast.parse(source, filename=path)
    return ModuleModel(tree, path)
