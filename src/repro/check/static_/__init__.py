"""repro.check.static_: the interprocedural static analyzer.

``python -m repro analyze <prog.py>`` runs four passes over the AST of
a driver program — no import, no execution:

1. **races** — lockset + static happens-before over thread regions
   (spawn/join windows): S301 request races, S302 channel collisions,
   S303 lock-order cycles, S307 RMA races, concurrent collectives.
2. **lifecycle** — branch/loop-sensitive request tracking: S308 leaks
   (including early-return paths), S311 double-wait, S312
   cancel-after-complete, S305 partitioned protocol, S306 RMA epochs,
   S309 unflushed windows.
3. **collective consistency** — S310 mismatched collectives across
   rank-dependent branches.
4. **VCI-mappability advisor** — S304 hint violations plus advice-only
   S313-S315 and a verdict for each of the paper's four mechanisms.

The S3xx catalog lives in :mod:`repro.check.rules` next to the dynamic
CHK rules it mirrors; :mod:`repro.check.static_.crossval` cross-validates
the two engines over the scenario corpus.
"""

from __future__ import annotations

from .analyzer import (StaticReport, analyze_path, analyze_paths,
                       analyze_source)
from .findings import StaticFinding
from .model import ModuleModel, build_model
from .sarif import to_sarif

__all__ = [
    "StaticFinding",
    "StaticReport",
    "ModuleModel",
    "analyze_path",
    "analyze_paths",
    "analyze_source",
    "build_model",
    "to_sarif",
]
