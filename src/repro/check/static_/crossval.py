"""Cross-validation of the static analyzer against the dynamic checker.

The two engines share one rule catalog (:mod:`repro.check.rules`): every
S3xx rule with entries in :data:`~repro.check.rules.CHK_EQUIVALENT` is
the conservative static twin of those dynamic rules. This harness runs
both engines over the same corpus and scores the static side against
the dynamic ground truth:

- **fixtures** — each ``bad_*`` program in ``tests/fixtures/analyze``
  triggers one dynamic rule class; the analyzer must flag the static
  twin (*recall*). Each ``ok_*``/``advice_*`` program is dynamically
  clean; any failing static twin finding there is a false positive
  (*precision*).
- **drivers** — the shipped proxy apps run at a small configuration
  under :func:`repro.check.checking`; both engines must come back
  clean (true negatives).

A few fixtures cannot be executed (a rank-divergent collective
deadlocks; a double wait is masked at run time) — they are analyzed
but excluded from the dynamic comparison, listed as ``static_only``
rows. When a run aborts on a hard rule (CHK111 raises), the leak rules
CHK109/CHK110 that fire at the forced finalize are abort artifacts, not
program defects, and are dropped from the ground truth.

The result dict is JSON-ready; ``render_crossval`` gives the table the
CI job prints.
"""

from __future__ import annotations

import glob
import os
import runpy
import warnings
from typing import Any, Callable, Optional, Sequence

from ..rules import CHK_EQUIVALENT, STATIC_FOR_DYNAMIC
from .analyzer import analyze_path, analyze_paths

__all__ = ["cross_validate", "render_crossval", "default_fixture_dir",
           "DYNAMIC_EXEMPT"]

#: Fixtures that are analyzed but never executed (and why).
DYNAMIC_EXEMPT: dict[str, str] = {
    "bad_double_wait.py": "second wait is masked at run time",
    "bad_cancel_after_complete.py": "late cancel is a silent no-op",
    "bad_rank_collective.py": "rank-divergent collective deadlocks",
}

#: Dynamic leak rules that fire spuriously when a hard rule aborts the
#: run before requests can complete.
_ABORT_ARTIFACTS = frozenset({"CHK109", "CHK110"})

#: Static rules with no dynamic twin: scored by fixture expectation
#: only, never against the dynamic checker.
_STATIC_ONLY = frozenset(s for s, chks in CHK_EQUIVALENT.items()
                         if not chks)


def default_fixture_dir(start: Optional[str] = None) -> Optional[str]:
    """Locate ``tests/fixtures/analyze`` from ``start`` (default: cwd)."""
    cur = os.path.abspath(start or os.getcwd())
    while True:
        cand = os.path.join(cur, "tests", "fixtures", "analyze")
        if os.path.isdir(cand):
            return cand
        parent = os.path.dirname(cur)
        if parent == cur:
            return None
        cur = parent


def _run_dynamic(path: str) -> tuple[dict[str, int], str]:
    """Execute one fixture under the dynamic checker; (counts, abort)."""
    from .. import CheckConfig, checking
    aborted = ""
    with checking(CheckConfig(emit_warnings=False)) as session:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            try:
                runpy.run_path(path, run_name="__main__")
            except Exception as exc:
                aborted = type(exc).__name__
        counts = dict(session.report().counts())
        session.close()
    if aborted:
        counts = {k: v for k, v in counts.items()
                  if k not in _ABORT_ARTIFACTS}
    return counts, aborted


def _driver_runs() -> list[tuple[str, list[str], Callable[[], object]]]:
    """Small-configuration runs of shipped drivers (name, files, run)."""
    import repro.apps.legion as legion_pkg
    import repro.apps.stencil as stencil_pkg
    import repro.apps.vasp as vasp_pkg

    def files(pkg: object) -> list[str]:
        pkg_dir = os.path.dirname(getattr(pkg, "__file__", ""))
        return sorted(glob.glob(os.path.join(pkg_dir, "*.py")))

    def run_stencil_small() -> object:
        from repro.apps.stencil import StencilConfig, run_stencil
        return run_stencil(StencilConfig(
            proc_grid=(1, 2), thread_grid=(1, 2), pnx=4, pny=4,
            stencil_points=5, iters=1, mechanism="tags"))

    def run_legion_small() -> object:
        from repro.apps.legion import LegionConfig, run_legion
        return run_legion(LegionConfig(
            num_nodes=2, task_threads=2, msgs_per_thread=2,
            mechanism="endpoints"))

    def run_vasp_small() -> object:
        from repro.apps.vasp import VaspConfig, run_vasp
        return run_vasp(VaspConfig(
            num_nodes=2, threads_per_proc=2, elems=64, repeats=1,
            mechanism="existing"))

    return [("stencil", files(stencil_pkg), run_stencil_small),
            ("legion", files(legion_pkg), run_legion_small),
            ("vasp", files(vasp_pkg), run_vasp_small)]


def cross_validate(fixture_dir: Optional[str] = None,
                   drivers: bool = True,
                   paths: Optional[Sequence[str]] = None
                   ) -> dict[str, Any]:
    """Run both engines over the corpus and score static vs dynamic.

    Returns a JSON-ready dict: per-file ``rows``, the ``static_only``
    rows, aggregate ``tp``/``fp``/``fn`` and ``precision``/``recall``.
    """
    if paths is None:
        fdir = fixture_dir or default_fixture_dir()
        if fdir is None:
            raise FileNotFoundError(
                "no tests/fixtures/analyze directory found; pass "
                "fixture_dir explicitly")
        paths = sorted(glob.glob(os.path.join(fdir, "*.py")))
    rows: list[dict[str, Any]] = []
    static_only_rows: list[dict[str, Any]] = []
    tp = fp = fn = 0

    for path in paths:
        name = os.path.basename(path)
        report = analyze_path(path)
        static_failing = sorted({f.rule_id for f in report.findings
                                 if f.severity in ("error", "warning")})
        twins = sorted(s for s in static_failing if s not in _STATIC_ONLY)
        if name in DYNAMIC_EXEMPT:
            static_only_rows.append({
                "file": name, "static": static_failing,
                "why_not_run": DYNAMIC_EXEMPT[name]})
            continue
        dynamic, aborted = _run_dynamic(path)
        expected = sorted({STATIC_FOR_DYNAMIC[chk] for chk in dynamic
                           if chk in STATIC_FOR_DYNAMIC})
        matched = sorted(set(expected) & set(twins))
        missed = sorted(set(expected) - set(twins))
        unexpected = sorted(set(twins) - set(expected))
        tp += len(matched)
        fn += len(missed)
        fp += len(unexpected)
        rows.append({
            "file": name,
            "dynamic": sorted(dynamic),
            "expected_static": expected,
            "static": static_failing,
            "matched": matched, "missed": missed,
            "unexpected": unexpected,
            "aborted": aborted,
        })

    driver_rows: list[dict[str, Any]] = []
    if drivers:
        from .. import CheckConfig, checking
        for name, files, run in _driver_runs():
            report = analyze_paths(files)
            static_failing = sorted({
                f.rule_id for f in report.findings
                if f.severity in ("error", "warning")})
            with checking(CheckConfig(emit_warnings=False)) as session:
                run()
                dynamic = dict(session.report().counts())
                session.close()
            clean = not static_failing and not dynamic
            fp += len(static_failing)
            fn += len(dynamic)
            driver_rows.append({
                "driver": name, "files": len(files),
                "dynamic": sorted(dynamic), "static": static_failing,
                "clean": clean})

    precision = tp / (tp + fp) if (tp + fp) else 1.0
    recall = tp / (tp + fn) if (tp + fn) else 1.0
    return {
        "schema": 1,
        "kind": "crossval",
        "rows": rows,
        "static_only": static_only_rows,
        "drivers": driver_rows,
        "tp": tp, "fp": fp, "fn": fn,
        "precision": precision, "recall": recall,
    }


def render_crossval(result: dict[str, Any]) -> str:
    """The precision/recall table as plain text."""
    lines = ["== static vs dynamic cross-validation ==",
             f"{'file':34s} {'dynamic':18s} {'expected':14s} "
             f"{'static':14s} verdict"]
    for row in result["rows"]:
        verdict = "ok"
        if row["missed"]:
            verdict = f"MISSED {','.join(row['missed'])}"
        elif row["unexpected"]:
            verdict = f"EXTRA {','.join(row['unexpected'])}"
        lines.append(
            f"{row['file']:34s} {','.join(row['dynamic']) or '-':18s} "
            f"{','.join(row['expected_static']) or '-':14s} "
            f"{','.join(row['static']) or '-':14s} {verdict}")
    for row in result["static_only"]:
        lines.append(
            f"{row['file']:34s} {'(not run)':18s} {'-':14s} "
            f"{','.join(row['static']) or '-':14s} static-only "
            f"({row['why_not_run']})")
    for row in result["drivers"]:
        lines.append(
            f"driver:{row['driver']:27s} "
            f"{','.join(row['dynamic']) or '-':18s} {'-':14s} "
            f"{','.join(row['static']) or '-':14s} "
            f"{'ok' if row['clean'] else 'NOT CLEAN'}")
    lines.append(
        f"tp={result['tp']} fp={result['fp']} fn={result['fn']}  "
        f"precision={result['precision']:.2f} "
        f"recall={result['recall']:.2f}")
    return "\n".join(lines)
