"""The static analyzer's finding type (S3xx diagnostics with location).

Mirrors :class:`repro.check.lint.Finding` (path/line/col/rule) and
:class:`repro.check.report.Violation` (rule metadata, ``extra`` context)
so the JSON schema stays recognizably the same across the three passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..rules import rule as _rule

__all__ = ["StaticFinding"]


@dataclass(frozen=True)
class StaticFinding:
    """One static diagnostic at a source location."""

    rule_id: str
    message: str
    path: str
    line: int
    col: int = 1
    #: Qualname of the function containing the finding, when known.
    function: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def rule_name(self) -> str:
        return _rule(self.rule_id).name

    @property
    def severity(self) -> str:
        return _rule(self.rule_id).severity

    def describe(self) -> str:
        """One-line human rendering, ``path:line:col: RULE message``."""
        where = f" [{self.function}]" if self.function else ""
        return (f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
                f"({self.rule_name}, {self.severity}){where}: "
                f"{self.message}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready rendering of one finding."""
        d: dict[str, Any] = {
            "rule": self.rule_id,
            "name": self.rule_name,
            "severity": self.severity,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }
        if self.function:
            d["function"] = self.function
        if self.extra:
            d["extra"] = dict(self.extra)
        return d
