"""SARIF 2.1.0 export of static-analysis findings.

One ``run`` with the full S3xx rule catalog in ``tool.driver.rules`` and
one ``result`` per finding, so GitHub code scanning (and any other SARIF
consumer) renders ``repro analyze`` output inline on pull requests.
Severity maps ``error``→``error``, ``warning``→``warning`` and the
advisor's ``advice``→``note``.
"""

from __future__ import annotations

from typing import Any

from .. import rules as _rules
from .analyzer import StaticReport

__all__ = ["to_sarif"]

_LEVELS = {"error": "error", "warning": "warning", "advice": "note"}

#: Stable tool identity for SARIF consumers.
_TOOL_NAME = "repro-analyze"


def _rule_descriptor(r: _rules.Rule) -> dict[str, Any]:
    return {
        "id": r.id,
        "name": r.name,
        "shortDescription": {"text": r.name},
        "fullDescription": {"text": r.summary},
        "help": {"text": f"See {r.doc} in the repository."},
        "properties": {"severity": r.severity, "doc": r.doc},
        "defaultConfiguration": {"level": _LEVELS[r.severity]},
    }


def to_sarif(report: StaticReport, version: str = "0") -> dict[str, Any]:
    """Render a StaticReport as a SARIF 2.1.0 log dict."""
    rule_ids = sorted({f.rule_id for f in report.findings}
                      | {r.id for r in _rules.STATIC_RULES})
    rules = [_rule_descriptor(_rules.rule(rid)) for rid in rule_ids]
    index = {rid: i for i, rid in enumerate(rule_ids)}
    results: list[dict[str, Any]] = []
    for f in report.findings:
        results.append({
            "ruleId": f.rule_id,
            "ruleIndex": index[f.rule_id],
            "level": _LEVELS[f.severity],
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, f.line),
                        "startColumn": max(1, f.col),
                    },
                },
            }],
        })
    for err in report.errors:
        results.append({
            "ruleId": "E999",
            "level": "error",
            "message": {"text": err["message"]},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": str(err["path"]).replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, int(err.get("line",
                                                               1)))},
                },
            }],
        })
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": _TOOL_NAME,
                "version": version,
                "rules": rules,
            }},
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
