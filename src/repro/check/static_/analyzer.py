"""The analyzer entry points and the StaticReport.

``analyze_path``/``analyze_source`` build one :class:`ModuleModel` and
run the four passes (races, lifecycle, collective consistency, the VCI
advisor) over it. The report mirrors :class:`repro.check.report
.CheckReport`'s shape — ``schema``/``clean``/``counts`` plus a findings
list — so existing report consumers need no new parser; a ``kind``
field and the advisor section are the only additions.

Analysis never imports or executes the target program: the input is
source text, the output is a pure function of it.
"""

from __future__ import annotations

import json
from typing import Any, Optional, Sequence

from ..rules import rule as _rule
from .advisor import check_advisor
from .collective import check_collectives
from .findings import StaticFinding
from .lifecycle import check_lifecycle
from .model import build_model
from .races import check_races

__all__ = ["StaticReport", "analyze_source", "analyze_path",
           "analyze_paths"]

#: Severities that make a report non-clean.
_FAILING = ("error", "warning")


class StaticReport:
    """Aggregated result of analyzing one or more programs."""

    def __init__(self, findings: list[StaticFinding],
                 advisor: Optional[dict[str, Any]] = None,
                 paths: Optional[list[str]] = None,
                 errors: Optional[list[dict[str, Any]]] = None):
        self.findings = list(findings)
        self.advisor = advisor if advisor is not None else {}
        self.paths = list(paths) if paths is not None else []
        #: Parse failures: [{"path", "line", "message"}].
        self.errors = list(errors) if errors is not None else []

    @property
    def clean(self) -> bool:
        """No parse errors and no error/warning findings (advice ok)."""
        if self.errors:
            return False
        return not any(f.severity in _FAILING for f in self.findings)

    def counts(self) -> dict[str, int]:
        """Finding count per rule id, sorted by id."""
        out: dict[str, int] = {}
        for f in sorted(self.findings, key=lambda f: f.rule_id):
            out[f.rule_id] = out.get(f.rule_id, 0) + 1
        return out

    def by_rule(self, rule_id: str) -> list[StaticFinding]:
        return [f for f in self.findings if f.rule_id == rule_id]

    def merge(self, other: "StaticReport") -> "StaticReport":
        """Combine reports (multi-file CLI runs, the corpus harness)."""
        advisor = dict(self.advisor)
        advisor.update(other.advisor)
        return StaticReport(self.findings + other.findings,
                            advisor=advisor,
                            paths=self.paths + other.paths,
                            errors=self.errors + other.errors)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready report (schema 1, mirrors ``CheckReport``)."""
        d: dict[str, Any] = {
            "schema": 1,
            "kind": "static",
            "clean": self.clean,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
            "paths": self.paths,
        }
        if self.advisor:
            d["advisor"] = self.advisor
        if self.errors:
            d["errors"] = self.errors
        return d

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self, limit: int = 50) -> str:
        """Plain-text report in the house style of the check report."""
        lines: list[str] = []
        failing = [f for f in self.findings if f.severity in _FAILING]
        advice = [f for f in self.findings if f.severity == "advice"]
        for err in self.errors:
            lines.append(f"{err['path']}:{err.get('line', 1)}: E999 "
                         f"{err['message']}")
        if not failing and not self.errors:
            lines.append("== analyze ==\nno static violations detected")
        else:
            lines.append(f"== analyze: {len(failing)} finding(s) ==")
            for rid, n in self.counts().items():
                if _rule(rid).severity in _FAILING:
                    lines.append(f"  {rid} ({_rule(rid).name}): {n}")
            lines.append("")
            for f in failing[:limit]:
                lines.append("  " + f.describe())
            if len(failing) > limit:
                lines.append(f"  ... and {len(failing) - limit} more")
        if advice:
            lines.append(f"-- advisor: {len(advice)} note(s) --")
            for f in advice[:limit]:
                lines.append("  " + f.describe())
        mech = self.advisor.get("mechanisms")
        if mech:
            lines.append("-- VCI mechanism verdicts --")
            for name, v in mech.items():
                lines.append(f"  {name}: {v['status']}")
                for reason in v["reasons"]:
                    lines.append(f"      {reason}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StaticReport {len(self.findings)} finding(s) "
                f"clean={self.clean}>")


def analyze_source(source: str, path: str = "<string>") -> StaticReport:
    """Analyze program text (no file access, no execution)."""
    try:
        model = build_model(source, path)
    except SyntaxError as exc:
        return StaticReport([], paths=[path], errors=[{
            "path": path, "line": exc.lineno or 1,
            "message": f"syntax error: {exc.msg}"}])
    findings: list[StaticFinding] = []
    findings.extend(check_races(model))
    findings.extend(check_lifecycle(model))
    findings.extend(check_collectives(model))
    advice, verdicts = check_advisor(model)
    findings.extend(advice)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return StaticReport(findings, advisor={path: verdicts} if verdicts
                        else {}, paths=[path])


def analyze_path(path: str) -> StaticReport:
    """Analyze one program file."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return analyze_source(source, path)


def analyze_paths(paths: Sequence[str]) -> StaticReport:
    """Analyze several program files into one merged report."""
    report = StaticReport([])
    for p in paths:
        report = report.merge(analyze_path(p))
    return report
