"""Collective-consistency checking across rank-dependent branches (S310).

Collectives must be called by every rank of a communicator in the same
order. A branch whose condition depends on the process *rank* therefore
may not change the sequence of collective call sites: ``if rank == 0:
Bcast(...)`` with no matching collective in the other arm deadlocks the
other ranks.

Only *rank*-dependent conditions count. Thread-id conditionals
(``if tid == 0: Allreduce(...)``) are the paper's funneled pattern —
every rank still reaches the collective once — and stay exempt, as do
mechanism/configuration branches.
"""

from __future__ import annotations

import ast
from typing import Optional

from .findings import StaticFinding
from .model import COLLECTIVES, FuncInfo, ICOLLECTIVES, ModuleModel, dotted

__all__ = ["check_collectives"]


def _rank_names(info: FuncInfo) -> set[str]:
    """Local names assigned from a rank-valued expression."""
    names: set[str] = set()
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and _is_rank_expr(node.value, set()):
            names.add(node.targets[0].id)
    return names


def _is_rank_expr(expr: ast.AST, rank_names: set[str]) -> bool:
    """Whether the expression derives from the process rank."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Attribute) and sub.attr == "rank":
            return True
        if isinstance(sub, ast.Call):
            d = dotted(sub.func)
            if d is not None and d.endswith("Get_rank"):
                return True
        if isinstance(sub, ast.Name) and sub.id in rank_names:
            return True
    return False


def _collective_sequence(stmts: list[ast.stmt]) -> list[str]:
    """Ordered collective op names in a statement list (full subtree)."""
    seq: list[str] = []
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in (COLLECTIVES | ICOLLECTIVES):
                seq.append(node.func.attr)
    return seq


def check_collectives(model: ModuleModel) -> list[StaticFinding]:
    """Flag rank-dependent branches whose collective sequences differ."""
    out: list[StaticFinding] = []
    for info in model.functions.values():
        rank_names = _rank_names(info)
        for node in _branches(info.node):
            if not _is_rank_expr(node.test, rank_names):
                continue
            then_seq = _collective_sequence(node.body)
            else_seq = _collective_sequence(node.orelse)
            if then_seq == else_seq:
                continue
            out.append(StaticFinding(
                "S310",
                f"collective call sites diverge across this "
                f"rank-dependent branch: the if-arm issues "
                f"{_fmt(then_seq)} while the else-arm issues "
                f"{_fmt(else_seq)}; ranks taking different arms will "
                f"not match and the program deadlocks",
                model.path, node.lineno,
                getattr(node, "col_offset", 0) + 1,
                function=info.qualname,
                extra={"then": then_seq, "orelse": else_seq}))
    return out


def _branches(func_node: ast.AST) -> list[ast.If]:
    """Top-level-ish If nodes of one function, excluding nested defs."""
    found: list[ast.If] = []

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            if isinstance(child, ast.If):
                found.append(child)
            walk(child)

    walk(func_node)
    return found


def _fmt(seq: list[str]) -> str:
    return "[" + ", ".join(seq) + "]" if seq else "no collectives"
