"""The VCI-mappability advisor (S304, S313-S315 + mechanism verdicts).

The paper's core claim is that fast MPI+threads communication is a
*contract*: the library can spread traffic across VCIs only when the
program promises, up front, that matching stays unambiguous — no
wildcard receives, disjoint per-thread channels, the right
``mpi_assert_*`` info hints. This pass classifies every communication
site against those preconditions and renders a verdict for each of the
paper's four mechanisms (tags-with-hints, per-thread communicators,
user-visible endpoints, partitioned communication): which ones the
program can legally use as written, and what blocks the rest.

Only S304 (a wildcard on a communicator that *asserted* it would never
use one) is an error — it is the static twin of CHK104. Everything else
here is ``advice`` severity: it never fails a build, it explains.
"""

from __future__ import annotations

import ast
from typing import Any, Optional

from .findings import StaticFinding
from .model import Access, FuncInfo, ModuleModel, Region, dotted

__all__ = ["check_advisor"]

#: Info keys that promise wildcard-freedom.
_NO_SOURCE = "mpi_assert_no_any_source"
_NO_TAG = "mpi_assert_no_any_tag"
_OVERTAKE = "mpi_assert_allow_overtaking"

#: Hint spellings the library itself accepts (repro.mpi.info._TRUE).
_TRUE = frozenset({"true", "1", "yes"})


def _is_true(hints: dict[str, str], key: str) -> bool:
    """Whether a hint dict asserts ``key`` with a library-true value."""
    return str(hints.get(key, "")).strip().lower() in _TRUE


def _info_hints(expr: Optional[ast.AST], model: ModuleModel,
                scope: Optional[FuncInfo]) -> dict[str, str]:
    """Info hints carried by an expression, best-effort."""
    if expr is None:
        return {}
    if isinstance(expr, ast.Call):
        d = dotted(expr.func) or ""
        base = d.rsplit(".", 1)[-1]
        if base == "listing2_info":
            return {_NO_SOURCE: "true", _NO_TAG: "true"}
        if base == "overtaking_only_info":
            return {_OVERTAKE: "true"}
        if base == "Info" and expr.args \
                and isinstance(expr.args[0], ast.Dict):
            out: dict[str, str] = {}
            for k, v in zip(expr.args[0].keys, expr.args[0].values):
                if isinstance(k, ast.Constant) \
                        and isinstance(v, ast.Constant):
                    out[str(k.value)] = str(v.value)
            return out
    if isinstance(expr, ast.Name):
        return _var_hints(expr.id, model, scope)
    return {}


def _var_hints(name: str, model: ModuleModel,
               scope: Optional[FuncInfo]) -> dict[str, str]:
    """Hints accumulated on an Info variable (construction + .set)."""
    hints: dict[str, str] = {}
    body: list[ast.stmt]
    cur = scope
    scopes: list[Optional[FuncInfo]] = []
    while cur is not None:
        scopes.append(cur)
        cur = cur.parent
    scopes.append(None)
    for s in scopes:
        body = s.node.body if s is not None else model.tree.body
        for node in ast.walk(ast.Module(body=body, type_ignores=[])):
            if isinstance(node, ast.Assign) \
                    and any(isinstance(t, ast.Name) and t.id == name
                            for t in node.targets):
                hints.update(_info_hints(node.value, model, None))
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "set" \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == name \
                    and len(node.args) >= 2 \
                    and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[1], ast.Constant):
                hints[str(node.args[0].value)] = str(node.args[1].value)
        if hints:
            break
    return hints


def _comm_table(model: ModuleModel) -> dict[str, dict[str, Any]]:
    """Communicator variables created in the module: name -> metadata
    (``hints`` dict, ``endpoint`` flag, line)."""
    comms: dict[str, dict[str, Any]] = {}
    for info in list(model.functions.values()):
        _scan_comms(model, info, info.node.body, comms)
    _scan_comms(model, None, model.tree.body, comms)
    return comms


def _scan_comms(model: ModuleModel, scope: Optional[FuncInfo],
                body: list[ast.stmt],
                comms: dict[str, dict[str, Any]]) -> None:
    for stmt in body:
        for node in ast.walk(stmt):
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1):
                continue
            # Driver classes hold their communicator as ``self.comm``;
            # accesses carry the same dotted path, so key by it.
            tgt = node.targets[0]
            target = tgt.id if isinstance(tgt, ast.Name) \
                else dotted(tgt) if isinstance(tgt, ast.Attribute) \
                else None
            if target is None:
                continue
            value: ast.AST = node.value
            if isinstance(value, (ast.Await, ast.YieldFrom)):
                value = value.value
            if not isinstance(value, ast.Call):
                continue
            fn = value.func
            attr = fn.attr if isinstance(fn, ast.Attribute) else None
            name = fn.id if isinstance(fn, ast.Name) else None
            if attr == "Dup":
                arg = value.args[0] if value.args else None
                comms[target] = {
                    "hints": _info_hints(arg, model, scope),
                    "endpoint": False, "line": node.lineno}
            elif (attr or name) in ("comm_create_endpoints",
                                    "comm_create_rankpoints"):
                comms[target] = {"hints": {}, "endpoint": True,
                                 "line": node.lineno}
            elif attr == "Split":
                comms[target] = {"hints": {}, "endpoint": False,
                                 "line": node.lineno}
    return


def _comm_meta(comm: Optional[str],
               comms: dict[str, dict[str, Any]]) -> dict[str, Any]:
    if comm is None:
        return {}
    if comm in comms:
        return comms[comm]
    root = comm.split(".", 1)[0]
    return comms.get(root, {})


def check_advisor(model: ModuleModel) -> tuple[list[StaticFinding],
                                               dict[str, Any]]:
    """Advisor findings plus the mechanism-verdict summary."""
    comms = _comm_table(model)
    findings: list[StaticFinding] = []

    # Every site in every scope (wildcards matter even outside regions).
    all_accesses: list[Access] = []
    for accs in model.spawner_accesses.values():
        all_accesses.extend(a for _, a in accs)

    # -- S304: wildcard vs asserted hints (error) -----------------------
    s304_comms: set[str] = set()
    for acc in all_accesses:
        if acc.kind != "recv":
            continue
        meta = _comm_meta(acc.comm, comms)
        hints = meta.get("hints", {})
        for wild, hint, what in (
                (acc.wildcard_source, _NO_SOURCE, "ANY_SOURCE"),
                (acc.wildcard_tag, _NO_TAG, "ANY_TAG")):
            if wild and _is_true(hints, hint):
                s304_comms.add(acc.comm or "")
                findings.append(StaticFinding(
                    "S304",
                    f"{what} receive on communicator {acc.comm!r} which "
                    f"was constructed with {hint}=true; the hint is a "
                    f"promise the program now breaks", model.path,
                    acc.line, acc.col, function=acc.func.qualname,
                    extra={"comm": acc.comm, "hint": hint}))

    # -- S313: wildcard fast-path advice --------------------------------
    wild_sites: dict[str, list[int]] = {}
    for acc in all_accesses:
        if acc.kind == "recv" and (acc.wildcard_source
                                   or acc.wildcard_tag):
            wild_sites.setdefault(acc.comm or "<unknown>",
                                  []).append(acc.line)
    for comm, lines in sorted(wild_sites.items()):
        if comm in s304_comms:
            continue
        meta = _comm_meta(comm, comms)
        where = "a dedicated endpoint" if meta.get("endpoint") \
            else "one dedicated receiving thread/endpoint"
        findings.append(StaticFinding(
            "S313",
            f"wildcard receive(s) on communicator {comm!r} at line(s) "
            f"{sorted(set(lines))}: matching must stay serial, which "
            f"blocks the tags-with-hints fast path; confine wildcards "
            f"to {where} or remove them (paper Lesson 5)",
            model.path, min(lines), function="",
            extra={"comm": comm, "lines": sorted(set(lines))}))

    # -- Region-level channel geometry (S314/S315) ----------------------
    multi: dict[str, dict[str, Any]] = {}
    for region in model.regions:
        peers = [r for r in model.regions
                 if r is not region and region.concurrent_with(r)]
        for acc in region.accesses:
            if acc.kind not in ("send", "recv") or acc.comm is None \
                    or not acc.comm_shared:
                continue
            entry = multi.setdefault(acc.comm_id or acc.comm, {
                "comm": acc.comm, "regions": set(), "many": False,
                "tags": {}, "wild": False, "line": acc.line})
            entry["regions"].add(region.index)
            entry["many"] |= region.many and not acc.guarded
            entry["wild"] |= acc.wildcard_source or acc.wildcard_tag
            if acc.tag.is_const:
                entry["tags"].setdefault(acc.tag.value,
                                         set()).add(region.index)
        # Unused: peers kept for symmetry with races; concurrency of the
        # region set is implied by shared spawner windows.
        del peers

    for _cid, entry in sorted(multi.items()):
        comm = entry["comm"]
        concurrent_use = len(entry["regions"]) > 1 or entry["many"]
        if not concurrent_use:
            continue
        overlapping = {t: rs for t, rs in entry["tags"].items()
                       if len(rs) > 1 or entry["many"]}
        if overlapping:
            tags = sorted(overlapping, key=repr)
            findings.append(StaticFinding(
                "S314",
                f"concurrent thread regions share constant tag(s) "
                f"{tags} on communicator {comm!r}; without disjoint "
                f"per-thread tag bits (Listing 2) the library cannot "
                f"map these threads to separate VCIs",
                model.path, entry["line"], function="",
                extra={"comm": comm, "tags": [repr(t) for t in tags]}))
        meta = _comm_meta(comm, comms)
        hints = meta.get("hints", {})
        if not entry["wild"] and not meta.get("endpoint") \
                and not _is_true(hints, _NO_SOURCE):
            findings.append(StaticFinding(
                "S315",
                f"communicator {comm!r} is driven from multiple "
                f"concurrent thread regions without mpi_assert hints; "
                f"without {_NO_SOURCE}/{_NO_TAG} (and {_OVERTAKE}) the "
                f"library must assume wildcards and serialize matching "
                f"(paper Lessons 5-6)", model.path, entry["line"],
                function="", extra={"comm": comm}))

    verdicts = _mechanisms(model, comms, wild_sites, multi)
    return findings, verdicts


def _mechanisms(model: ModuleModel, comms: dict[str, dict[str, Any]],
                wild_sites: dict[str, list[int]],
                multi: dict[str, dict[str, Any]]) -> dict[str, Any]:
    """Per-mechanism verdicts: ok | blocked | in-use | candidate."""
    wildcard_free = not wild_sites
    overlaps = [
        (entry["comm"],
         sorted(map(repr, (t for t, rs in entry["tags"].items()
                           if len(rs) > 1 or entry["many"]))))
        for _cid, entry in sorted(multi.items())
        if any(len(rs) > 1 or entry["many"]
               for rs in entry["tags"].values())]
    uses_partitioned = any(f.partitioned_vars
                           for f in model.functions.values())
    uses_endpoints = any(meta.get("endpoint")
                         for meta in comms.values())
    hinted = sorted(name for name, meta in comms.items()
                    if _is_true(meta.get("hints", {}), _NO_SOURCE))

    def verdict(status: str, *reasons: str) -> dict[str, Any]:
        return {"status": status, "reasons": list(reasons)}

    tags: dict[str, Any]
    if not wildcard_free:
        tags = verdict(
            "blocked",
            "wildcard receives present: matching cannot be split by tag "
            f"(comms: {sorted(wild_sites)})")
    elif overlaps:
        tags = verdict(
            "blocked",
            *[f"constant tag space overlaps across threads on {c!r}: "
              f"{ts}" for c, ts in overlaps])
    else:
        tags = verdict(
            "ok" if hinted else "ok-needs-hints",
            *([f"hints already asserted on: {hinted}"] if hinted else
              ["add mpi_assert_no_any_source/no_any_tag via Info/Dup "
               "to activate VCI spreading (Listing 2)"]))

    if wildcard_free:
        per_comm = verdict(
            "ok", "no wildcard receives: each thread can own a "
                  "duplicated communicator (paper Lesson 7)")
    else:
        per_comm = verdict(
            "blocked",
            "wildcard receives must all land on one communicator "
            "owned by a single thread before per-thread comms are "
            "legal")

    endpoints = verdict(
        "in-use" if uses_endpoints else "ok",
        "endpoints decouple matching streams from thread count"
        + ("" if wildcard_free else
           "; confine the wildcard receives to one dedicated endpoint"))

    partitioned = verdict(
        "in-use" if uses_partitioned else "candidate",
        "partitioned requests already in use" if uses_partitioned else
        "requires a persistent, statically known communication "
        "pattern; not inferable from this program (paper Lesson 15)")

    return {
        "wildcard_free": wildcard_free,
        "mechanisms": {
            "tags-with-hints": tags,
            "per-thread-comms": per_comm,
            "endpoints": endpoints,
            "partitioned": partitioned,
        },
    }
