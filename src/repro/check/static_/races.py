"""Lockset + static happens-before race detection (S301-S303, S307, S310).

The happens-before approximation is purely structural: two thread-region
instances are concurrent when their spawn→join windows overlap inside
one spawner (``all_of``/``run_all`` close every open window), and a
spawner's own statement races with a region exactly when it executes
inside that region's open window. Accesses under a common lock, inside
sibling branches of one ``if``, or restricted to a single instance by a
``param == const`` guard are ordered/exclusive and never reported.

The bias is asymmetric on purpose: report only when the conflicting
coordinates are *provably* identical (same shared object, equal constant
channel/target coordinates). Unknown or thread-dependent values are
assumed disjoint — missed races are the dynamic checker's job.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .findings import StaticFinding
from .model import (Access, ModuleModel, RMA_ATOMIC, Region,
                    _branch_compatible)

__all__ = ["check_races"]

#: Request accesses that conflict with each other (CHK101's access set).
_REQ_CONFLICT = frozenset({"wait", "test", "cancel"})


def _instance_pairs(model: ModuleModel) -> Iterable[
        tuple[Region, Region, bool]]:
    """Pairs of region instances that can run concurrently. The bool
    marks a *self* pair (two instances of one multi-spawned region)."""
    for i, a in enumerate(model.regions):
        if a.many:
            yield a, a, True
        for b in model.regions[i + 1:]:
            if a.concurrent_with(b):
                yield a, b, a.func is b.func


def _shared_req(model: ModuleModel, acc: Access,
                regions: tuple[Region, ...]) -> bool:
    """Whether the access touches a request object shared across the
    given instances (not a per-frame local of either region body)."""
    if acc.obj is None or acc.obj not in model.request_keys:
        return False
    return all(acc.obj.scope != r.func.qualname for r in regions)


def _ordered(a: Access, b: Access, self_pair: bool) -> bool:
    """True when something orders or separates the two accesses."""
    if a.locks & b.locks:
        return True
    if not _branch_compatible(a.branches, b.branches):
        return True
    # A `param == const` guard on a multi-instance region keeps the
    # access on a single instance: two guarded accesses of a self pair
    # are the same instance, hence program-ordered.
    if self_pair and a.guarded and b.guarded:
        return True
    return False


def _spawner_window_accesses(model: ModuleModel,
                             region: Region) -> list[Access]:
    """Spawner statements executing while ``region``'s window is open."""
    qual = region.spawner.qualname if region.spawner else None
    out = []
    for pos, acc in model.spawner_accesses.get(qual, []):
        if region.start_pos < pos < region.end_pos:
            out.append(acc)
    return out


def check_races(model: ModuleModel) -> list[StaticFinding]:
    """Run every concurrency rule over the model."""
    out: list[StaticFinding] = []
    seen: set[tuple] = set()

    def emit(rule_id: str, message: str, acc: Access,
             key: tuple, **extra: object) -> None:
        dedup = (rule_id,) + key
        if dedup in seen:
            return
        seen.add(dedup)
        out.append(StaticFinding(
            rule_id, message, model.path, acc.line, acc.col,
            function=acc.func.qualname,
            extra={str(k): v for k, v in extra.items()}))

    for ra, rb, self_pair in _instance_pairs(model):
        _check_pair(model, emit, ra, rb, list(ra.accesses),
                    list(rb.accesses), self_pair)

    for region in model.regions:
        spawner_accs = _spawner_window_accesses(model, region)
        if spawner_accs:
            _check_pair(model, emit, region, region,
                        list(region.accesses), spawner_accs,
                        self_pair=False, vs_spawner=True)

    out.extend(_check_lock_order(model))
    return out


def _check_pair(model: ModuleModel, emit, ra: Region, rb: Region,
                accs_a: list[Access], accs_b: list[Access],
                self_pair: bool, vs_spawner: bool = False) -> None:
    regions = (ra,) if vs_spawner else (ra, rb)
    # Note: `a is b` pairs stay in — the same source access executed by
    # two concurrent instances is exactly how a multi-spawned region
    # races with itself; program order never spans instances.
    for a in accs_a:
        for b in accs_b:
            if _ordered(a, b, self_pair):
                continue
            # -- S301: request race --------------------------------
            if a.kind in _REQ_CONFLICT and b.kind in _REQ_CONFLICT \
                    and a.obj is not None and a.obj == b.obj \
                    and _shared_req(model, a, regions):
                other = ("the spawning scope" if vs_spawner
                         else f"instance of {rb.func.qualname!r}")
                emit("S301",
                     f"request {a.obj.describe()!r} may be "
                     f"{a.kind}ed here concurrently with a "
                     f"{b.kind} in a concurrent {other} "
                     f"(line {b.line}); no join or common lock orders "
                     f"the accesses", a,
                     key=(a.obj, min(a.line, b.line), max(a.line, b.line)),
                     request=a.obj.describe(), other_line=b.line)
            # -- S302: channel collision ---------------------------
            if a.kind == b.kind and a.kind in ("send", "recv") \
                    and a.comm_id is not None and a.comm_id == b.comm_id \
                    and a.comm_shared and b.comm_shared \
                    and a.peer.is_const and a.tag.is_const \
                    and a.peer == b.peer and a.tag == b.tag \
                    and not (self_pair and (a.guarded or b.guarded)):
                emit("S302",
                     f"two concurrent thread regions {a.kind} on "
                     f"communicator {a.comm!r} with identical constant "
                     f"coordinates (peer={a.peer.value!r}, "
                     f"tag={a.tag.value!r}); message order on the "
                     f"channel is undefined (here and line {b.line})", a,
                     key=(a.comm, a.kind, a.peer.value, a.tag.value),
                     comm=a.comm, peer=a.peer.value, tag=a.tag.value)
            # -- S307: RMA race ------------------------------------
            if a.kind == "rma" and b.kind == "rma" \
                    and a.obj is not None and a.obj == b.obj \
                    and ("Put" in (a.op, b.op)) \
                    and a.op not in RMA_ATOMIC \
                    and b.op not in RMA_ATOMIC \
                    and a.peer.is_const and a.peer == b.peer \
                    and a.tag.is_const and a.tag == b.tag:
                emit("S307",
                     f"conflicting nonatomic RMA accesses ({a.op} vs "
                     f"{b.op}) on window {a.obj.describe()!r} target "
                     f"{a.peer.value!r} disp {a.tag.value!r} from "
                     f"concurrent thread regions (here and line "
                     f"{b.line})", a,
                     key=(a.obj, a.peer.value, a.tag.value),
                     window=a.obj.describe())
            # -- S310 (concurrent half): collectives in flight -----
            if a.kind in ("collective", "icollective") \
                    and b.kind in ("collective", "icollective") \
                    and a.comm_id is not None and a.comm_id == b.comm_id \
                    and a.comm_shared and b.comm_shared \
                    and not (a.guarded or b.guarded):
                emit("S310",
                     f"collective {a.op} on communicator {a.comm!r} may "
                     f"overlap a concurrent {b.op} on the same "
                     f"communicator (line {b.line}); MPI requires "
                     f"collectives on one communicator to be serial", a,
                     key=(a.comm, min(a.line, b.line),
                          max(a.line, b.line)),
                     comm=a.comm)


# -- S303: lock-order cycles ---------------------------------------------

def _check_lock_order(model: ModuleModel) -> list[StaticFinding]:
    edges: dict[str, set[str]] = {}
    sites: dict[tuple[str, str], Access] = {}
    for accs in model.spawner_accesses.values():
        for _, acc in accs:
            if acc.kind != "lock-acquire" or acc.obj is None:
                continue
            for held in acc.locks:
                if held == acc.obj.name:
                    continue
                edges.setdefault(held, set()).add(acc.obj.name)
                sites.setdefault((held, acc.obj.name), acc)
    out: list[StaticFinding] = []
    reported: set[frozenset[str]] = set()
    for start in sorted(edges):
        cycle = _find_cycle(edges, start)
        if cycle is None:
            continue
        key = frozenset(cycle)
        if key in reported:
            continue
        reported.add(key)
        acc = sites[(cycle[0], cycle[1])]
        out.append(StaticFinding(
            "S303",
            f"lock acquisition order cycle: {' -> '.join(cycle)} -> "
            f"{cycle[0]}; these locks can deadlock under an adversarial "
            f"schedule", model.path, acc.line, acc.col,
            function=acc.func.qualname,
            extra={"locks": sorted(key)}))
    return out


def _find_cycle(edges: dict[str, set[str]],
                start: str) -> Optional[list[str]]:
    """A cycle through ``start`` in the acquisition graph, if any."""
    path: list[str] = [start]
    on_path = {start}

    def dfs(node: str) -> Optional[list[str]]:
        for nxt in sorted(edges.get(node, ())):
            if nxt == start:
                return list(path)
            if nxt in on_path:
                continue
            path.append(nxt)
            on_path.add(nxt)
            found = dfs(nxt)
            if found is not None:
                return found
            on_path.discard(nxt)
            path.pop()
        return None

    return dfs(start)
