"""The rule catalog of the correctness analyzer.

Every diagnostic the subsystem can produce has a stable identifier so that
reports, suppressions and CI output can refer to rules precisely:

- ``CHK1xx`` — *dynamic* rules, detected by :class:`repro.check.Checker`
  while a simulated run executes (races, deadlock potential, MPI
  semantics);
- ``L2xx`` — *static* rules, detected by the AST lint
  (``python -m repro lint``) over the repository's own sources.

The catalog is data, not behaviour: detection lives in
:mod:`repro.check.checker` and :mod:`repro.check.lint`. See
``docs/checking.md`` for the prose version of this table.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Rule", "DYNAMIC_RULES", "LINT_RULES", "ALL_RULES", "rule"]


@dataclass(frozen=True)
class Rule:
    """One diagnostic the analyzer can emit."""

    id: str
    name: str
    summary: str
    #: Hard rules cannot be downgraded to a warning: the library must
    #: still raise because continuing would corrupt the simulation itself
    #: (e.g. two collectives interleaving on one matching stream).
    hard: bool = False


#: Dynamic (run-time) rules, detected by the vector-clock engine, the
#: lock-order graph and the MPI semantics validator.
DYNAMIC_RULES: tuple[Rule, ...] = (
    Rule("CHK101", "request-race",
         "concurrent wait/test/cancel on one request from two simulated "
         "threads with no happens-before edge between the accesses"),
    Rule("CHK102", "channel-collision",
         "two simulated threads drive the same (communicator, tag, peer) "
         "point-to-point channel without an ordering edge, so message "
         "order on the channel is undefined"),
    Rule("CHK103", "lock-order-cycle",
         "the lock acquisition-order graph contains a cycle: the locks "
         "involved can deadlock under an adversarial schedule"),
    Rule("CHK104", "hint-violation",
         "a wildcard (ANY_SOURCE/ANY_TAG) was used on a communicator that "
         "asserted mpi_assert_no_any_source/no_any_tag"),
    Rule("CHK105", "partitioned-inactive",
         "Pready/Parrived/wait on a partitioned request with no active "
         "cycle (start() not called, or the cycle already completed)"),
    Rule("CHK106", "partitioned-double-ready",
         "Pready called twice for the same partition within one cycle"),
    Rule("CHK107", "rma-epoch",
         "RMA epoch discipline broken: Unlock without a matching Lock, "
         "double Lock of one target, or an operation issued outside any "
         "epoch on a window handle that uses explicit epochs"),
    Rule("CHK108", "rma-race",
         "conflicting nonatomic RMA accesses (Put/Get) to overlapping "
         "target memory from two simulated threads with no happens-before "
         "edge"),
    Rule("CHK109", "request-leak",
         "a request was still incomplete at finalize: the operation never "
         "matched or its completion was never awaited"),
    Rule("CHK110", "window-leak",
         "an RMA window still had unacknowledged (unflushed) operations "
         "at finalize"),
    Rule("CHK111", "collective-overlap",
         "a second collective was issued on a communicator while another "
         "was in flight; MPI requires collectives on one communicator to "
         "be serial", hard=True),
)

#: Static (lint) rules over the repository sources.
LINT_RULES: tuple[Rule, ...] = (
    Rule("L200", "bare-suppression",
         "a lint suppression comment without a justification; write "
         "`# lint: ignore[RULE] -- why`"),
    Rule("L201", "host-nondeterminism",
         "host time/randomness (time.time, random, np.random module "
         "calls, uuid4, os.urandom) inside simulated-path code; simulated "
         "results must be a pure function of parameters and seed"),
    Rule("L202", "trace-literal",
         "a raw string literal passed as the category of Tracer.emit(); "
         "use the typed repro.sim.trace.TraceCategory constants"),
    Rule("L203", "bare-except",
         "a bare `except:` clause; catch specific exceptions (a bare "
         "except swallows KeyboardInterrupt and kernel errors)"),
    Rule("L204", "missing-docstring",
         "a public module, class or function in src/repro without a "
         "docstring"),
    Rule("L205", "missing-annotations",
         "a public function/method in src/repro whose signature carries "
         "no type annotations at all"),
)

ALL_RULES: tuple[Rule, ...] = DYNAMIC_RULES + LINT_RULES

_BY_ID = {r.id: r for r in ALL_RULES}


def rule(rule_id: str) -> Rule:
    """Look up a rule by id (raises ``KeyError`` for unknown ids)."""
    return _BY_ID[rule_id]
