"""The rule catalog of the correctness analyzer.

Every diagnostic the subsystem can produce has a stable identifier so that
reports, suppressions and CI output can refer to rules precisely:

- ``CHK1xx`` — *dynamic* rules, detected by :class:`repro.check.Checker`
  while a simulated run executes (races, deadlock potential, MPI
  semantics);
- ``L2xx`` — *project lint* rules, detected by the AST lint
  (``python -m repro lint``) over the repository's own sources;
- ``S3xx`` — *static analysis* rules, detected by the interprocedural
  analyzer (``python -m repro analyze``) over driver programs without
  executing them. Most S rules are the static twin of a CHK rule (see
  :data:`CHK_EQUIVALENT`); the advisor rules (severity ``advice``) have
  no dynamic twin — they classify a program against the paper's VCI
  fast-path preconditions rather than against MPI's contract.

The catalog is data, not behaviour: detection lives in
:mod:`repro.check.checker`, :mod:`repro.check.lint` and
:mod:`repro.check.static_`. See ``docs/checking.md`` and
``docs/static-analysis.md`` for the prose version of this table.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Rule",
    "DYNAMIC_RULES",
    "LINT_RULES",
    "STATIC_RULES",
    "ALL_RULES",
    "rule",
    "rules_catalog",
    "render_catalog",
    "CHK_EQUIVALENT",
    "STATIC_FOR_DYNAMIC",
    "SEVERITIES",
]

#: Ordered severity ladder. ``error`` and ``warning`` findings make a
#: report non-clean (exit 1 from the CLI); ``advice`` findings are
#: informational — the advisor's verdicts about which VCI mechanisms a
#: program can legally use never fail a build on their own.
SEVERITIES = ("error", "warning", "advice")


@dataclass(frozen=True)
class Rule:
    """One diagnostic the analyzer can emit."""

    id: str
    name: str
    summary: str
    #: Hard rules cannot be downgraded to a warning: the library must
    #: still raise because continuing would corrupt the simulation itself
    #: (e.g. two collectives interleaving on one matching stream).
    hard: bool = False
    #: ``error`` | ``warning`` | ``advice`` (see :data:`SEVERITIES`).
    severity: str = "error"

    @property
    def kind(self) -> str:
        """Rule family: ``dynamic`` (CHK), ``lint`` (L) or ``static`` (S)."""
        if self.id.startswith("CHK"):
            return "dynamic"
        if self.id.startswith("L"):
            return "lint"
        return "static"

    @property
    def doc(self) -> str:
        """Repository-relative documentation anchor for this rule."""
        page = ("docs/static-analysis.md" if self.kind == "static"
                else "docs/checking.md")
        return f"{page}#{self.id.lower()}"


#: Dynamic (run-time) rules, detected by the vector-clock engine, the
#: lock-order graph and the MPI semantics validator.
DYNAMIC_RULES: tuple[Rule, ...] = (
    Rule("CHK101", "request-race",
         "concurrent wait/test/cancel on one request from two simulated "
         "threads with no happens-before edge between the accesses"),
    Rule("CHK102", "channel-collision",
         "two simulated threads drive the same (communicator, tag, peer) "
         "point-to-point channel without an ordering edge, so message "
         "order on the channel is undefined"),
    Rule("CHK103", "lock-order-cycle",
         "the lock acquisition-order graph contains a cycle: the locks "
         "involved can deadlock under an adversarial schedule"),
    Rule("CHK104", "hint-violation",
         "a wildcard (ANY_SOURCE/ANY_TAG) was used on a communicator that "
         "asserted mpi_assert_no_any_source/no_any_tag"),
    Rule("CHK105", "partitioned-inactive",
         "Pready/Parrived/wait on a partitioned request with no active "
         "cycle (start() not called, or the cycle already completed)"),
    Rule("CHK106", "partitioned-double-ready",
         "Pready called twice for the same partition within one cycle"),
    Rule("CHK107", "rma-epoch",
         "RMA epoch discipline broken: Unlock without a matching Lock, "
         "double Lock of one target, or an operation issued outside any "
         "epoch on a window handle that uses explicit epochs"),
    Rule("CHK108", "rma-race",
         "conflicting nonatomic RMA accesses (Put/Get) to overlapping "
         "target memory from two simulated threads with no happens-before "
         "edge"),
    Rule("CHK109", "request-leak",
         "a request was still incomplete at finalize: the operation never "
         "matched or its completion was never awaited"),
    Rule("CHK110", "window-leak",
         "an RMA window still had unacknowledged (unflushed) operations "
         "at finalize"),
    Rule("CHK111", "collective-overlap",
         "a second collective was issued on a communicator while another "
         "was in flight; MPI requires collectives on one communicator to "
         "be serial", hard=True),
)

#: Project-lint rules over the repository sources.
LINT_RULES: tuple[Rule, ...] = (
    Rule("L200", "bare-suppression",
         "a lint suppression comment without a justification; write "
         "`# lint: ignore[RULE] -- why`", severity="warning"),
    Rule("L201", "host-nondeterminism",
         "host time/randomness (time.time, random, np.random module "
         "calls, uuid4, os.urandom) inside simulated-path code; simulated "
         "results must be a pure function of parameters and seed",
         severity="warning"),
    Rule("L202", "trace-literal",
         "a raw string literal passed as the category of Tracer.emit(); "
         "use the typed repro.sim.trace.TraceCategory constants",
         severity="warning"),
    Rule("L203", "bare-except",
         "a bare `except:` clause; catch specific exceptions (a bare "
         "except swallows KeyboardInterrupt and kernel errors)",
         severity="warning"),
    Rule("L204", "missing-docstring",
         "a public module, class or function in src/repro without a "
         "docstring", severity="warning"),
    Rule("L205", "missing-annotations",
         "a public function/method in src/repro whose signature carries "
         "no type annotations at all", severity="warning"),
)

#: Static-analysis rules over driver programs (``repro analyze``).
#: S301–S312 are conservative static twins of the dynamic catalog and
#: carry ``error``/``warning`` severity; S313–S315 are the VCI-mappability
#: advisor (severity ``advice``) and never fail a run.
STATIC_RULES: tuple[Rule, ...] = (
    Rule("S301", "static-request-race",
         "two concurrent thread regions may wait/test/cancel one shared "
         "request object with no join or lock ordering the accesses "
         "(static twin of CHK101)"),
    Rule("S302", "static-channel-collision",
         "two concurrent thread regions drive the same (communicator, "
         "peer, tag) channel with constant coordinates, so matching order "
         "is undefined (static twin of CHK102)"),
    Rule("S303", "static-lock-order-cycle",
         "the static lock acquisition-order graph contains a cycle "
         "(static twin of CHK103)"),
    Rule("S304", "static-hint-violation",
         "a wildcard (ANY_SOURCE/ANY_TAG) receive on a communicator "
         "constructed with mpi_assert_no_any_source/no_any_tag hints "
         "(static twin of CHK104)"),
    Rule("S305", "partitioned-lifecycle",
         "partitioned request protocol broken on some path: Pready/"
         "Parrived before start, or Pready issued twice for one constant "
         "partition in a single cycle (static twin of CHK105/CHK106)"),
    Rule("S306", "static-rma-epoch",
         "RMA epoch discipline broken on some path: double Lock of one "
         "target, Unlock without Lock, or an access outside any epoch in "
         "a function that uses explicit epochs (static twin of CHK107)"),
    Rule("S307", "static-rma-race",
         "two concurrent thread regions issue conflicting nonatomic RMA "
         "accesses to the same constant target/displacement with no "
         "ordering (static twin of CHK108)"),
    Rule("S308", "static-request-leak",
         "a request created here is neither completed (wait/test/waitall) "
         "nor escapes to the caller on some path — e.g. an early return "
         "skips the waitall (static twin of CHK109)", severity="warning"),
    Rule("S309", "static-window-leak",
         "an RMA window accumulates Put/Get/Accumulate traffic but no "
         "path flushes it (Flush/Flush_all/Unlock) before the function "
         "exits (static twin of CHK110)", severity="warning"),
    Rule("S310", "collective-consistency",
         "collective call sites diverge across rank-dependent branches, "
         "or two concurrent thread regions issue collectives on one "
         "shared communicator (static twin of CHK111)", severity="warning"),
    Rule("S311", "double-wait",
         "a request is waited again after a completing wait on every "
         "path to the second wait (no dynamic twin: the first wait "
         "usually masks this at run time)"),
    Rule("S312", "cancel-after-complete",
         "cancel() is called on a request that a completing wait already "
         "finished on every path to the cancel", severity="warning"),
    Rule("S313", "wildcard-fast-path",
         "wildcard receives (ANY_SOURCE/ANY_TAG) force serialization of "
         "matching and block the tags-with-hints fast path; confine them "
         "to a dedicated endpoint or remove them", severity="advice"),
    Rule("S314", "tag-space-overlap",
         "concurrent thread regions share constant tag space on one "
         "communicator; disjoint per-thread tag bits (Listing 2) would "
         "let the library spread them over VCIs", severity="advice"),
    Rule("S315", "missing-hints",
         "a communicator is driven from multiple thread regions without "
         "mpi_assert_no_any_source/no_any_tag (and allow_overtaking) "
         "hints; without them the library must assume wildcards and "
         "serialize (paper Lesson 5/6)", severity="advice"),
)

ALL_RULES: tuple[Rule, ...] = DYNAMIC_RULES + LINT_RULES + STATIC_RULES

_BY_ID = {r.id: r for r in ALL_RULES}

#: For each static rule, the dynamic rule ids it is the conservative
#: twin of (empty tuple: no dynamic counterpart — advisor/static-only).
CHK_EQUIVALENT: dict[str, tuple[str, ...]] = {
    "S301": ("CHK101",),
    "S302": ("CHK102",),
    "S303": ("CHK103",),
    "S304": ("CHK104",),
    "S305": ("CHK105", "CHK106"),
    "S306": ("CHK107",),
    "S307": ("CHK108",),
    "S308": ("CHK109",),
    "S309": ("CHK110",),
    "S310": ("CHK111",),
    "S311": (),
    "S312": (),
    "S313": (),
    "S314": (),
    "S315": (),
}

#: Reverse map: dynamic rule id -> static rule id expected to flag the
#: same defect class ahead of time. Used by the cross-validation harness.
STATIC_FOR_DYNAMIC: dict[str, str] = {
    chk: sid for sid, chks in CHK_EQUIVALENT.items() for chk in chks
}


def rule(rule_id: str) -> Rule:
    """Look up a rule by id (raises ``KeyError`` for unknown ids)."""
    return _BY_ID[rule_id]


def rules_catalog(kinds: tuple[str, ...] = ("dynamic", "lint", "static"),
                  ) -> tuple[Rule, ...]:
    """The full registry, optionally filtered by rule family."""
    return tuple(r for r in ALL_RULES if r.kind in kinds)


def render_catalog(kinds: tuple[str, ...] = ("dynamic", "lint", "static"),
                   ) -> str:
    """Human rendering of the registry for ``--list-rules``."""
    lines = []
    for r in rules_catalog(kinds):
        twin = CHK_EQUIVALENT.get(r.id) or ()
        twin_note = f" [twin of {', '.join(twin)}]" if twin else ""
        lines.append(f"{r.id:8s} {r.name:26s} {r.severity:8s} "
                     f"{r.doc}{twin_note}")
        lines.append(f"         {r.summary}")
    lines.append(f"{len(rules_catalog(kinds))} rule(s)")
    return "\n".join(lines)
