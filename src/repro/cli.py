"""Command-line experiment runner.

Reproduce any of the paper's experiments without pytest::

    python -m repro msgrate --modes everywhere threads-original --cores 1 8
    python -m repro sweep msgrate --jobs 4 --csv fig1a.csv
    python -m repro profile msgrate --modes everywhere --cores 8
    python -m repro stencil --mechanisms original endpoints --points 9
    python -m repro faults stencil --plan drop=0.05,dup=0.02 --seed 1
    python -m repro legion --threads 8
    python -m repro circuit
    python -m repro graph --churn 0.5
    python -m repro nwchem
    python -m repro vasp --elems 32768
    python -m repro device
    python -m repro scope
    python -m repro resources --grid 4 4 4
    python -m repro check examples/quickstart.py
    python -m repro analyze examples/quickstart.py
    python -m repro analyze --corpus --crossval --sarif out.sarif
    python -m repro replay examples/quickstart.py --until 2e-5
    python -m repro replay prog.py --to-finding CHK102
    python -m repro lint
    python -m repro campaign run out/ --seed 1 -n 200
    python -m repro campaign resume out/
    python -m repro campaign report out/
    python -m repro campaign replay out/artifacts/fail-0001-*.yaml
    python -m repro serve --state-dir .repro-serve
    python -m repro submit job.yaml --result
    python -m repro jobs

Every command prints a plain-text table; add ``--seed`` where supported.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .bench.msgrate import MODES, MsgRateConfig, run_msgrate
from .bench.report import Table

__all__ = ["main", "build_parser"]


def _cmd_msgrate(args) -> int:
    table = Table("message rate (M msg/s)", ["mode", "cores", "rate"],
                  widths=[20, 6, 10])
    for mode in args.modes:
        for cores in args.cores:
            r = run_msgrate(MsgRateConfig(mode=mode, cores=cores,
                                          msgs_per_core=args.messages))
            table.add(mode, cores, f"{r.rate / 1e6:.2f}")
    print(table.render())
    return 0


def _msgrate_point(mode: str, cores: int, messages: int = 64,
                   seed: int = 0) -> dict:
    """One sweep point (module-level so worker processes can receive it).

    Delegates to the service's point registry so the local ``sweep``
    command and a served sweep execute the exact same code path.
    """
    from .serve.points import msgrate_point
    full = msgrate_point(mode, cores, msgs_per_core=messages, seed=seed)
    return {"rate_Mmsgs": full["rate_Mmsgs"]}


def _cmd_sweep(args) -> int:
    import functools
    import time

    from .bench.sweep import Sweep

    sweep = Sweep(name=f"{args.experiment} sweep",
                  params={"mode": args.modes, "cores": args.cores})
    fn = functools.partial(_msgrate_point, messages=args.messages,
                           seed=args.seed)
    if args.resume and not args.checkpoint_dir:
        print("error: --resume needs --checkpoint-dir", file=sys.stderr)
        return 2
    t0 = time.perf_counter()
    rows = sweep.run(fn, jobs=args.jobs, checkpoint_dir=args.checkpoint_dir,
                     resume=args.resume)
    wall = time.perf_counter() - t0
    print(sweep.pivot(rows, index="cores", column="mode",
                      value="rate_Mmsgs").render())
    print(f"[{len(rows)} points in {wall:.2f}s host wall-clock, "
          f"jobs={args.jobs}]")
    if args.csv:
        sweep.to_csv(rows, args.csv)
        print(f"[csv written to {args.csv}]")
    return 0


def _cmd_profile(args) -> int:
    from .obs import (
        MetricsRegistry,
        Tracer,
        export_chrome_trace,
        render_metrics_report,
        render_report,
    )
    combos = [(mode, cores) for mode in args.modes for cores in args.cores]
    for mode, cores in combos:
        metrics = MetricsRegistry()
        tracer = Tracer()
        r = run_msgrate(MsgRateConfig(mode=mode, cores=cores,
                                      msgs_per_core=args.messages,
                                      seed=args.seed),
                        metrics=metrics, tracer=tracer)
        print(f"== {args.experiment} mode={mode} cores={cores} "
              f"rate={r.rate / 1e6:.2f} M msg/s span={r.span * 1e6:.2f} us ==")
        if args.full:
            print(render_metrics_report(metrics))
        else:
            print(render_report(metrics))
        if args.chrome_trace:
            path = args.chrome_trace
            if len(combos) > 1:
                stem, dot, ext = path.rpartition(".")
                path = (f"{stem}.{mode}.c{cores}.{ext}" if dot
                        else f"{path}.{mode}.c{cores}")
            export_chrome_trace(tracer, path, metrics=metrics)
            print(f"chrome trace written to {path} "
                  f"({len(tracer)} records)")
        print()
    return 0


def _cmd_stencil(args) -> int:
    from .apps.stencil import StencilConfig, run_stencil
    dim = 2 if args.points in (5, 9) else 3
    if len(args.procs) != dim or len(args.threads) != dim:
        print(f"error: {args.points}-pt stencils need {dim}-D --procs/"
              f"--threads (e.g. {'2 2' if dim == 2 else '2 2 2'})",
              file=sys.stderr)
        return 2
    table = Table("stencil halo exchange",
                  ["mechanism", "wall(us)", "halo(us)", "resources",
                   "vcis", "correct"],
                  widths=[14, 9, 9, 10, 5, 8])
    for mech in args.mechanisms:
        cfg = StencilConfig(proc_grid=tuple(args.procs),
                            thread_grid=tuple(args.threads),
                            pnx=args.patch, pny=args.patch, pnz=args.patch,
                            stencil_points=args.points, iters=args.iters,
                            mechanism=mech, seed=args.seed)
        r = run_stencil(cfg)
        table.add(mech, f"{r.wall_time * 1e6:.1f}",
                  f"{r.halo_time * 1e6:.1f}", r.resources_created,
                  r.vcis_used, r.correct)
    print(table.render())
    return 0


def _cmd_faults(args) -> int:
    from .apps.stencil import StencilConfig, run_stencil
    from .errors import FaultPlanError, TransportError
    from .faults import parse_plan, render_reliability_report
    from .obs import MetricsRegistry, render_vci_report
    try:
        plan = parse_plan(args.plan)
    except (FaultPlanError, ValueError) as exc:
        print(f"error: bad fault plan: {exc}", file=sys.stderr)
        return 2
    dim = 2 if args.points in (5, 9) else 3
    if len(args.procs) != dim or len(args.threads) != dim:
        print(f"error: {args.points}-pt stencils need {dim}-D --procs/"
              f"--threads (e.g. {'2 2' if dim == 2 else '2 2 2'})",
              file=sys.stderr)
        return 2
    print(f"fault plan: {plan.describe()} (seed={args.seed})\n")
    table = Table("stencil on a lossy fabric",
                  ["mechanism", "wall(us)", "retransmits", "faults",
                   "correct"],
                  widths=[14, 9, 11, 7, 8])
    failed = False
    for mech in args.mechanisms:
        cfg = StencilConfig(proc_grid=tuple(args.procs),
                            thread_grid=tuple(args.threads),
                            pnx=args.patch, pny=args.patch, pnz=args.patch,
                            stencil_points=args.points, iters=args.iters,
                            mechanism=mech, seed=args.seed)
        metrics = MetricsRegistry()
        try:
            r = run_stencil(cfg, metrics=metrics, faults=plan)
        except TransportError as exc:
            print(f"== mechanism: {mech} ==\ntransport gave up: {exc}\n",
                  file=sys.stderr)
            table.add(mech, "-", "-", "-", False)
            failed = True
            continue
        world = r.world
        world.finalize_metrics()
        retransmits = sum(p.lib.transport.retransmits for p in world.procs)
        injected = sum(v for k, v in world.injector.summary().items()
                       if k != "messages_seen")
        table.add(mech, f"{r.wall_time * 1e6:.1f}", retransmits, injected,
                  r.correct)
        failed = failed or not r.correct
        print(f"== mechanism: {mech} ==")
        print(render_reliability_report(world))
        print()
        print(render_vci_report(metrics))
        print()
    print(table.render())
    return 1 if failed else 0


def _cmd_legion(args) -> int:
    from .apps.legion import LegionConfig, run_legion
    table = Table("event-runtime polling",
                  ["mechanism", "rate(M/s)", "cost/evt(ns)", "probes/evt"],
                  widths=[14, 10, 13, 11])
    for mech in ("original", "communicators", "endpoints"):
        r = run_legion(LegionConfig(num_nodes=args.nodes,
                                    task_threads=args.threads,
                                    msgs_per_thread=args.messages,
                                    mechanism=mech))
        table.add(mech, f"{r.polling_rate / 1e6:.2f}",
                  f"{r.polling_cost_per_event * 1e9:.0f}",
                  f"{r.probes_per_event:.1f}")
    print(table.render())
    return 0


def _cmd_circuit(args) -> int:
    from .apps.legion import CircuitConfig, run_circuit
    table = Table("Legion circuit proxy", ["mechanism", "time/step(us)"],
                  widths=[14, 14])
    for mech in ("original", "communicators", "endpoints"):
        r = run_circuit(CircuitConfig(num_nodes=args.nodes,
                                      task_threads=args.threads,
                                      timesteps=args.steps,
                                      wires_per_thread=args.wires,
                                      mechanism=mech))
        table.add(mech, f"{r.time_per_step * 1e6:.1f}")
    print(table.render())
    return 0


def _cmd_graph(args) -> int:
    from .apps.graph import GraphConfig, run_graph
    table = Table("dynamic graph communication (Vite proxy)",
                  ["mechanism", "exchange(us)", "messages", "conflicts"],
                  widths=[14, 13, 9, 10])
    for mech in ("original", "tags", "communicators", "endpoints"):
        r = run_graph(GraphConfig(num_nodes=args.nodes,
                                  threads_per_proc=args.threads,
                                  graph_vertices=args.vertices,
                                  iters=args.iters, churn=args.churn,
                                  mechanism=mech, seed=args.seed))
        table.add(mech, f"{r.exchange_time * 1e6:.1f}", r.remote_messages,
                  r.comm_conflicts)
    print(table.render())
    return 0


def _cmd_nwchem(args) -> int:
    from .apps.nwchem import NwchemConfig, run_nwchem
    table = Table("get-compute-update over RMA",
                  ["mechanism", "wall(us)", "channels", "imbalance"],
                  widths=[15, 9, 9, 10])
    for mech in ("window", "window-relaxed", "endpoints"):
        r = run_nwchem(NwchemConfig(num_nodes=args.nodes,
                                    threads_per_proc=args.threads,
                                    tasks_per_thread=args.tasks,
                                    mechanism=mech, seed=args.seed))
        table.add(mech, f"{r.wall_time * 1e6:.1f}", r.channels_used,
                  f"{r.channel_imbalance:.2f}")
    print(table.render())
    return 0


def _cmd_vasp(args) -> int:
    from .apps.vasp import VaspConfig, run_vasp
    table = Table("multithreaded allreduce",
                  ["mechanism", "t/allreduce(us)", "result KiB/node"],
                  widths=[13, 16, 16])
    for mech in ("funneled", "existing", "endpoints", "partitioned"):
        r = run_vasp(VaspConfig(num_nodes=args.nodes,
                                threads_per_proc=args.threads,
                                elems=args.elems, repeats=args.repeats,
                                mechanism=mech))
        table.add(mech, f"{r.time_per_allreduce * 1e6:.1f}",
                  r.result_bytes_per_node // 1024)
    print(table.render())
    return 0


def _cmd_device(args) -> int:
    from .apps.device import DeviceConfig, run_device
    table = Table("device-initiated communication (Lesson 20)",
                  ["mechanism", "time/step(us)", "kernel launches"],
                  widths=[19, 14, 16])
    for mech in ("host-driven", "device-partitioned", "device-mpi"):
        r = run_device(DeviceConfig(mechanism=mech, blocks=args.blocks,
                                    timesteps=args.steps))
        table.add(mech, f"{r.time_per_step * 1e6:.2f}", r.kernel_launches)
    print(table.render())
    return 0


def _cmd_scope(args) -> int:
    from .analysis import render_table, render_usability, stencil_usability
    from .mapping import STENCIL_2D_5PT, StencilGeometry
    print(render_table())
    print()
    geom = StencilGeometry((3, 3), tuple(args.threads), STENCIL_2D_5PT)
    print(render_usability(stencil_usability(geom)))
    return 0


def _cmd_resources(args) -> int:
    from .mapping import (
        communicator_overhead_ratio_3d27,
        communicators_required_3d27,
        min_channels_3d27,
    )
    x, y, z = args.grid
    print(f"3D 27-pt stencil, [{x},{y},{z}] threads per process:")
    print(f"  communicators required : {communicators_required_3d27(x, y, z)}")
    print(f"  channels needed        : {min_channels_3d27(x, y, z)}")
    print(f"  overhead               : "
          f"{communicator_overhead_ratio_3d27(x, y, z):.1f}x")
    return 0


def _cmd_check(args) -> int:
    """Run a program with the correctness checker on every World."""
    import runpy

    from .check import CheckConfig, checking

    if args.list_rules:
        from .check.rules import render_catalog
        print(render_catalog(("dynamic",)))
        return 0
    if args.program is None:
        print("error: a program path is required (or --list-rules)",
              file=sys.stderr)
        return 2

    config = CheckConfig(mode=args.mode, races=not args.no_races,
                         lock_order=not args.no_lock_order,
                         semantics=not args.no_semantics,
                         leaks=not args.no_leaks,
                         emit_warnings=False)
    from .errors import CheckError
    status = 0
    with checking(config) as session:
        sys.argv = [args.program] + list(args.args)
        try:
            runpy.run_path(args.program, run_name="__main__")
        except CheckError as exc:
            print(f"stopped at first violation (raise mode): {exc}",
                  file=sys.stderr)
            status = 1
        except SystemExit as exc:
            if exc.code not in (None, 0):
                print(f"[program exited with status {exc.code}]",
                      file=sys.stderr)
                status = exc.code if isinstance(exc.code, int) else 1
    report = session.report()
    if args.json:
        print(report.to_json())
    else:
        print(report.render(limit=args.limit))
    return status or (0 if report.clean else 1)


def _cmd_replay(args) -> int:
    """Replay a recorded run to a simulated time or a checker finding."""
    from .snap.replay import run_replay

    if (args.until is None) == (args.to_finding is None):
        print("error: replay needs exactly one of --until / --to-finding",
              file=sys.stderr)
        return 2
    result, status = run_replay(
        args.program, list(args.args), until=args.until,
        to_finding=args.to_finding, interval=args.interval, keep=args.keep,
        snapshot_path=args.snapshot, live=not args.no_fork)
    if result is None:
        target = (f"t={args.until}" if args.until is not None
                  else args.to_finding)
        print(f"replay target never reached: {target} (program ran to "
              "completion)", file=sys.stderr)
        return status or 1
    print(result.render())
    return status or (0 if result.verified else 1)


def _corpus_paths() -> list[str]:
    """The shipped analysis corpus: app drivers, benches and examples."""
    import glob
    import os

    pkg = os.path.dirname(os.path.abspath(__file__))
    paths = sorted(glob.glob(os.path.join(pkg, "apps", "**", "*.py"),
                             recursive=True))
    paths += sorted(glob.glob(os.path.join(pkg, "bench", "*.py")))
    if os.path.isdir("examples"):
        paths += sorted(glob.glob(os.path.join("examples", "*.py")))
    return paths


def _cmd_analyze(args) -> int:
    """Statically analyze driver programs without executing them."""
    import glob
    import os

    from .check.rules import render_catalog
    from .check.static_ import analyze_paths, to_sarif

    if args.list_rules:
        print(render_catalog(("static",)))
        return 0
    paths: list[str] = []
    for p in args.paths:
        if os.path.isdir(p):
            paths += sorted(glob.glob(os.path.join(p, "**", "*.py"),
                                      recursive=True))
        else:
            paths.append(p)
    if args.corpus:
        paths += _corpus_paths()
    if not paths:
        print("error: no programs to analyze (pass paths, or --corpus)",
              file=sys.stderr)
        return 2
    report = analyze_paths(paths)
    status = 0 if report.clean else 1
    crossval = None
    if args.crossval:
        from .check.static_.crossval import cross_validate, render_crossval
        crossval = cross_validate(fixture_dir=args.fixtures)
        if crossval["fp"] or crossval["fn"]:
            status = status or 1
    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as fh:
            json.dump(to_sarif(report), fh, indent=2, sort_keys=True)
        print(f"[sarif written to {args.sarif}]", file=sys.stderr)
    if args.json:
        d = report.to_dict()
        if crossval is not None:
            d["crossval"] = crossval
        print(json.dumps(d, indent=2, sort_keys=True))
    else:
        print(report.render(limit=args.limit))
        if crossval is not None:
            print()
            print(render_crossval(crossval))
    return status


def _cmd_lint(args) -> int:
    """Run the repository's own AST lint (rules L200-L205)."""
    import pathlib

    from .check.lint import render_json, render_text, run_lint

    roots = [pathlib.Path(p) for p in args.paths] if args.paths else None
    findings = run_lint(roots, select=args.select)
    print(render_json(findings) if args.json else render_text(findings))
    return 0 if not findings else 1


def _cmd_campaign_run(args) -> int:
    """Run (or resume) a chaos-fuzzing campaign."""
    from .scenarios import render_report, run_campaign

    summary = run_campaign(
        args.out, seed=args.seed, n=args.n, jobs=args.jobs,
        apps=args.apps, resume=args.resume,
        shrink=not args.no_shrink, progress=print)
    print(render_report(summary))
    if summary["failures"] and not args.no_shrink:
        return 0 if summary["all_verified"] else 1
    return 0


def _cmd_campaign_report(args) -> int:
    """Summarize a campaign directory without running anything."""
    from .scenarios import campaign_report, render_report

    summary = campaign_report(args.out)
    print(render_report(summary))
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _cmd_campaign_replay(args) -> int:
    """Replay a minimal-repro artifact and verify it byte for byte."""
    from .scenarios import verify_artifact

    verdict = verify_artifact(args.artifact)
    outcome = verdict["outcome"]
    print(f"replay: {outcome['status']}/{outcome['rule']}")
    if outcome["detail"]:
        print(f"  {outcome['detail']}")
    if outcome["digest"]:
        print(f"  digest {outcome['digest'][:16]}...")
    if verdict["ok"]:
        print("verified: replay is byte-identical and matches the artifact")
        return 0
    for problem in verdict["problems"]:
        print(f"VERIFY FAILED: {problem}", file=sys.stderr)
    return 1


def _serve_url(args) -> str:
    """Resolve the service URL: --url wins, else the discovery file."""
    from .errors import ServeError
    if getattr(args, "url", None):
        return args.url
    import os
    path = os.path.join(args.state_dir, "serve.json")
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)["url"]
    except (OSError, ValueError, KeyError) as exc:
        raise ServeError(
            f"no running service found via {path!r} "
            f"(start one with 'repro serve --state-dir "
            f"{args.state_dir}', or pass --url): {exc}") from exc


def _cmd_serve(args) -> int:
    from .serve.service import run_service
    try:
        run_service(args.state_dir, workers=args.workers,
                    oversubscribe=args.oversubscribe,
                    heartbeat=args.heartbeat,
                    heartbeat_timeout=args.heartbeat_timeout,
                    announce=print)
    except KeyboardInterrupt:
        print("interrupted; jobs are resumable from "
              f"{args.state_dir} on the next 'repro serve'")
    return 0


def _cmd_submit(args) -> int:
    from .errors import ServeError
    from .serve.client import ServeClient
    from .serve.http import parse_job_document
    try:
        if args.job == "-":
            body = sys.stdin.buffer.read()
        else:
            with open(args.job, "rb") as fh:
                body = fh.read()
        kind, spec = parse_job_document(body)
        client = ServeClient(_serve_url(args))
        status = client.submit(kind, spec)
        print(f"submitted {status['job_id']} ({kind}, "
              f"{status['total']} points, "
              f"{status['cache_hits']} already cached)", file=sys.stderr)
        if args.wait or args.result:
            status = client.wait(status["job_id"], timeout=args.timeout)
        doc = (client.result(status["job_id"]) if args.result
               else client.job(status["job_id"]))
        print(json.dumps(doc, indent=2, sort_keys=True))
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_jobs(args) -> int:
    from .errors import ServeError
    from .serve.client import ServeClient
    try:
        jobs = ServeClient(_serve_url(args)).jobs()
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    table = Table("jobs", ["job", "kind", "status", "done", "hits", "sec"],
                  widths=[10, 10, 8, 11, 6, 9])
    for job in jobs:
        table.add(job["job_id"], job["kind"], job["status"],
                  f"{job['done']}/{job['total']}", job["cache_hits"],
                  f"{job['elapsed_sec']:.2f}")
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argparse parser with all subcommands."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Lessons Learned on "
                    "MPI+Threads Communication' (SC 2022)")
    sub = p.add_subparsers(dest="command", required=True)

    mr = sub.add_parser("msgrate", help="Fig 1(a) message-rate sweep")
    mr.add_argument("--modes", nargs="+", default=list(MODES[:5]),
                    choices=MODES)
    mr.add_argument("--cores", nargs="+", type=int, default=[1, 4, 8])
    mr.add_argument("--messages", type=int, default=64)
    mr.set_defaults(fn=_cmd_msgrate)

    sw = sub.add_parser(
        "sweep",
        help="parameter sweep fanned across worker processes",
        description="Run every (mode, cores) point of a sweep, optionally "
                    "across --jobs worker processes. Points are "
                    "independent simulations, so the results are "
                    "bit-identical to a serial run — only host wall-clock "
                    "changes.")
    sw.add_argument("experiment", choices=("msgrate",),
                    help="experiment to sweep")
    sw.add_argument("--modes", nargs="+", default=list(MODES[:5]),
                    choices=MODES)
    sw.add_argument("--cores", nargs="+", type=int,
                    default=[1, 2, 4, 8, 16, 32, 64])
    sw.add_argument("--messages", type=int, default=64)
    sw.add_argument("--seed", type=int, default=0)
    sw.add_argument("--jobs", "-j", type=int, default=1,
                    help="worker processes (default 1: serial)")
    sw.add_argument("--csv", metavar="PATH", help="also write rows as CSV")
    sw.add_argument("--checkpoint-dir", metavar="DIR",
                    help="persist each completed point to DIR (atomic "
                         "per-point JSON) so a killed campaign is "
                         "resumable with --resume")
    sw.add_argument("--resume", action="store_true",
                    help="skip points already checkpointed in "
                         "--checkpoint-dir; resumed rows are "
                         "byte-identical to an uninterrupted run")
    sw.set_defaults(fn=_cmd_sweep)

    pf = sub.add_parser(
        "profile",
        help="run an experiment with the observability subsystem on",
        description="Run an experiment with metrics and tracing enabled: "
                    "prints the per-VCI table (lock wait, doorbell "
                    "serialization, hardware-context occupancy) and can "
                    "export a Perfetto-loadable Chrome trace.")
    pf.add_argument("experiment", choices=("msgrate",),
                    help="experiment to profile")
    pf.add_argument("--modes", nargs="+", default=["everywhere"],
                    choices=MODES)
    pf.add_argument("--cores", nargs="+", type=int, default=[8])
    pf.add_argument("--messages", type=int, default=64)
    pf.add_argument("--seed", type=int, default=0)
    pf.add_argument("--full", action="store_true",
                    help="dump every metric series, not just the summary")
    pf.add_argument("--chrome-trace", metavar="PATH",
                    help="write a Chrome-trace JSON (chrome://tracing / "
                         "ui.perfetto.dev) to PATH")
    pf.set_defaults(fn=_cmd_profile)

    stn = sub.add_parser("stencil", help="halo exchange (Fig 1b, Lessons 1-3)")
    stn.add_argument("--mechanisms", nargs="+",
                     default=["original", "tags", "communicators",
                              "endpoints"])
    stn.add_argument("--procs", nargs="+", type=int, default=[2, 2])
    stn.add_argument("--threads", nargs="+", type=int, default=[3, 3])
    stn.add_argument("--points", type=int, default=9,
                     choices=(5, 9, 7, 27))
    stn.add_argument("--patch", type=int, default=6)
    stn.add_argument("--iters", type=int, default=4)
    stn.add_argument("--seed", type=int, default=0)
    stn.set_defaults(fn=_cmd_stencil)

    fl = sub.add_parser(
        "faults",
        help="run an experiment on a lossy fabric with reliable transport",
        description="Run the stencil app over a fault-injected fabric "
                    "(message drop/dup/corrupt/delay, NIC context stalls, "
                    "link flaps) with the reliable transport recovering "
                    "every fault; prints a reliability report next to the "
                    "per-VCI table. Plans: 'drop=0.05,dup=0.02' or a JSON "
                    "file; see docs/faults.md.")
    fl.add_argument("experiment", choices=("stencil",),
                    help="experiment to run under fault injection")
    fl.add_argument("--plan", default="drop=0.05,dup=0.02,corrupt=0.01",
                    help="fault plan spec or JSON file (default: "
                         "'drop=0.05,dup=0.02,corrupt=0.01')")
    fl.add_argument("--mechanisms", nargs="+",
                    default=["original", "tags", "communicators",
                             "endpoints", "partitioned"])
    fl.add_argument("--procs", nargs="+", type=int, default=[2, 2])
    fl.add_argument("--threads", nargs="+", type=int, default=[2, 2])
    # Default to a face-only stencil: partitioned supports 5/7-pt only.
    fl.add_argument("--points", type=int, default=5, choices=(5, 9, 7, 27))
    fl.add_argument("--patch", type=int, default=6)
    fl.add_argument("--iters", type=int, default=3)
    fl.add_argument("--seed", type=int, default=0)
    fl.set_defaults(fn=_cmd_faults)

    lg = sub.add_parser("legion", help="event-runtime polling (Fig 5)")
    lg.add_argument("--nodes", type=int, default=3)
    lg.add_argument("--threads", type=int, default=8)
    lg.add_argument("--messages", type=int, default=12)
    lg.set_defaults(fn=_cmd_legion)

    cc = sub.add_parser("circuit", help="Legion circuit proxy (Fig 1c)")
    cc.add_argument("--nodes", type=int, default=3)
    cc.add_argument("--threads", type=int, default=8)
    cc.add_argument("--steps", type=int, default=5)
    cc.add_argument("--wires", type=int, default=16)
    cc.set_defaults(fn=_cmd_circuit)

    gr = sub.add_parser("graph", help="dynamic graph proxy (Lesson 5)")
    gr.add_argument("--nodes", type=int, default=3)
    gr.add_argument("--threads", type=int, default=4)
    gr.add_argument("--vertices", type=int, default=120)
    gr.add_argument("--iters", type=int, default=3)
    gr.add_argument("--churn", type=float, default=0.3)
    gr.add_argument("--seed", type=int, default=0)
    gr.set_defaults(fn=_cmd_graph)

    nw = sub.add_parser("nwchem", help="RMA get-compute-update (Fig 6)")
    nw.add_argument("--nodes", type=int, default=3)
    nw.add_argument("--threads", type=int, default=8)
    nw.add_argument("--tasks", type=int, default=6)
    nw.add_argument("--seed", type=int, default=0)
    nw.set_defaults(fn=_cmd_nwchem)

    vs = sub.add_parser("vasp", help="multithreaded allreduce (Fig 7)")
    vs.add_argument("--nodes", type=int, default=4)
    vs.add_argument("--threads", type=int, default=8)
    vs.add_argument("--elems", type=int, default=1 << 14)
    vs.add_argument("--repeats", type=int, default=2)
    vs.set_defaults(fn=_cmd_vasp)

    dv = sub.add_parser("device", help="device-initiated comm (Lesson 20)")
    dv.add_argument("--blocks", type=int, default=8)
    dv.add_argument("--steps", type=int, default=6)
    dv.set_defaults(fn=_cmd_device)

    sc = sub.add_parser("scope", help="Table I + usability accounting")
    sc.add_argument("--threads", nargs=2, type=int, default=[3, 3])
    sc.set_defaults(fn=_cmd_scope)

    rs = sub.add_parser("resources", help="Lesson 3 closed-form counts")
    rs.add_argument("--grid", nargs=3, type=int, default=[4, 4, 4])
    rs.set_defaults(fn=_cmd_resources)

    ck = sub.add_parser(
        "check",
        help="run a program under the MPI+threads correctness checker",
        description="Execute a Python program with the dynamic checker "
                    "(races on shared MPI objects, lock-order cycles, "
                    "hint/partitioned/RMA semantics, leaks) enabled on "
                    "every World it creates; prints the merged report and "
                    "exits 1 if any violation was detected. See "
                    "docs/checking.md for the rule catalog.")
    ck.add_argument("program", nargs="?",
                    help="path to the Python program to run")
    ck.add_argument("args", nargs="*", help="arguments for the program")
    ck.add_argument("--list-rules", action="store_true",
                    help="print the dynamic rule catalog (CHK1xx) and exit")
    ck.add_argument("--mode", choices=("warn", "raise"), default="warn",
                    help="warn: record and continue; raise: stop at the "
                         "first violation (default: warn)")
    ck.add_argument("--no-races", action="store_true",
                    help="disable the happens-before race rules")
    ck.add_argument("--no-lock-order", action="store_true",
                    help="disable lock-order cycle detection")
    ck.add_argument("--no-semantics", action="store_true",
                    help="disable the MPI semantics state machines")
    ck.add_argument("--no-leaks", action="store_true",
                    help="disable the finalize leak scans")
    ck.add_argument("--json", action="store_true",
                    help="print the report as JSON")
    ck.add_argument("--limit", type=int, default=50,
                    help="max violations detailed in the text report")
    ck.set_defaults(fn=_cmd_check)

    an = sub.add_parser(
        "analyze",
        help="statically analyze a driver program (no execution)",
        description="Run the interprocedural static analyzer over driver "
                    "programs: lockset/happens-before race rules, request "
                    "lifecycle tracking, collective consistency and the "
                    "VCI-mappability advisor (rules S301-S315, the static "
                    "twins of the dynamic CHK catalog). The target is "
                    "parsed, never imported or executed. Exits 1 on "
                    "error/warning findings; advice never fails. See "
                    "docs/static-analysis.md.")
    an.add_argument("paths", nargs="*",
                    help="programs (or directories) to analyze")
    an.add_argument("--list-rules", action="store_true",
                    help="print the static rule catalog (S3xx) and exit")
    an.add_argument("--corpus", action="store_true",
                    help="also analyze the shipped corpus (app drivers, "
                         "bench drivers, examples)")
    an.add_argument("--crossval", action="store_true",
                    help="cross-validate against the dynamic checker over "
                         "the fixture corpus (runs the fixtures) and "
                         "append the precision/recall table")
    an.add_argument("--fixtures", metavar="DIR",
                    help="fixture directory for --crossval (default: "
                         "tests/fixtures/analyze found from cwd)")
    an.add_argument("--json", action="store_true",
                    help="print the report (and cross-validation) as JSON")
    an.add_argument("--sarif", metavar="PATH",
                    help="also write the findings as SARIF 2.1.0 to PATH")
    an.add_argument("--limit", type=int, default=50,
                    help="max findings detailed in the text report")
    an.set_defaults(fn=_cmd_analyze)

    rp = sub.add_parser(
        "replay",
        help="replay a recorded run to a time or a checker finding",
        description="Run a Python program under record-replay: worlds "
                    "execute in slices with live fork checkpoints parked "
                    "at interval boundaries. --until T stops at simulated "
                    "time T, --to-finding CHK1xx stops when that checker "
                    "rule first fires; either way the nearest checkpoint "
                    "is woken and re-executes deterministically to the "
                    "exact target step (never from t=0), and the "
                    "reproduction is verified by state digest (or by the "
                    "finding re-firing at the same step). See "
                    "docs/snapshot.md.")
    rp.add_argument("program", help="path to the Python program to run")
    rp.add_argument("args", nargs="*", help="arguments for the program")
    rp.add_argument("--until", type=float, metavar="T",
                    help="replay target: simulated time in seconds")
    rp.add_argument("--to-finding", metavar="RULE",
                    help="replay target: first firing of this checker "
                         "rule (e.g. CHK102); enables the checker in "
                         "warn mode")
    rp.add_argument("--interval", type=int, default=20_000,
                    help="kernel steps between live checkpoints "
                         "(default 20000)")
    rp.add_argument("--keep", type=int, default=8,
                    help="live checkpoints kept parked (default 8; older "
                         "ones are discarded)")
    rp.add_argument("--snapshot", metavar="PATH",
                    help="also write the verified state snapshot at the "
                         "target to PATH")
    rp.add_argument("--no-fork", action="store_true",
                    help="disable live fork checkpoints (capture at the "
                         "target only; no resume)")
    rp.set_defaults(fn=_cmd_replay)

    lt = sub.add_parser(
        "lint",
        help="run the repository's AST lint (rules L200-L205)",
        description="Static checks specific to this codebase: host "
                    "nondeterminism in simulated paths, raw trace-category "
                    "strings, bare except, public docstring/annotation "
                    "coverage. Exits 1 on findings. Suppress per line with "
                    "`# lint: ignore[RULE] -- reason`.")
    lt.add_argument("paths", nargs="*",
                    help="files/directories to lint (default: src/repro)")
    lt.add_argument("--select", nargs="+", metavar="RULE",
                    help="only report these rule ids (e.g. L201 L202)")
    lt.add_argument("--json", action="store_true",
                    help="machine-readable output for CI")
    lt.set_defaults(fn=_cmd_lint)

    cp = sub.add_parser(
        "campaign",
        help="chaos-fuzzing campaigns over sampled scenarios",
        description="Sample scenarios (app x mechanism x topology x "
                    "faults x traffic), run each under the dynamic "
                    "checker with crash-safe per-scenario checkpoints, "
                    "and delta-debug every failure down to a minimal "
                    "YAML artifact whose replay is verified byte for "
                    "byte. See docs/scenarios.md.")
    cpsub = cp.add_subparsers(dest="campaign_command", required=True)

    cpr = cpsub.add_parser("run", help="run a fresh campaign")
    cpr.add_argument("out", help="campaign output directory")
    cpr.add_argument("--seed", type=int, default=0,
                     help="sampler seed (default 0)")
    cpr.add_argument("-n", type=int, default=100,
                     help="scenarios to sample (default 100)")
    cpr.add_argument("--jobs", type=int, default=1,
                     help="worker processes (default 1)")
    cpr.add_argument("--apps", nargs="+", metavar="APP",
                     help="restrict sampling to these apps")
    cpr.add_argument("--no-shrink", action="store_true",
                     help="record failures without shrinking them")
    cpr.set_defaults(fn=_cmd_campaign_run, resume=False)

    cps = cpsub.add_parser(
        "resume", help="resume a killed or interrupted campaign")
    cps.add_argument("out", help="campaign output directory")
    cps.add_argument("--jobs", type=int, default=1)
    cps.add_argument("--no-shrink", action="store_true")
    cps.set_defaults(fn=_cmd_campaign_run, resume=True,
                     seed=0, n=0, apps=None)

    cpp = cpsub.add_parser(
        "report", help="summarize a campaign directory (even mid-flight)")
    cpp.add_argument("out", help="campaign output directory")
    cpp.add_argument("--json", action="store_true",
                     help="also print the summary as JSON")
    cpp.set_defaults(fn=_cmd_campaign_report)

    cpl = cpsub.add_parser(
        "replay", help="replay + verify a minimal-repro artifact")
    cpl.add_argument("artifact", help="artifact YAML written by a campaign")
    cpl.set_defaults(fn=_cmd_campaign_replay)

    sv = sub.add_parser(
        "serve",
        help="run the sweep/campaign service (HTTP API + worker pool)",
        description="Serve sweep, campaign and scenario jobs over HTTP "
                    "(see docs/serving.md): points are sharded across a "
                    "supervised local worker pool, deduplicated in "
                    "flight, cached persistently, and requeued when a "
                    "worker dies. Kill the service at any time — jobs "
                    "resume from --state-dir on the next start.")
    sv.add_argument("--state-dir", default=".repro-serve",
                    help="job manifests + result cache + discovery file "
                         "(default %(default)s)")
    sv.add_argument("--workers", "-j", type=int, default=None,
                    help="local worker processes (default: one per host "
                         "CPU; explicit counts are capped at the CPU "
                         "count unless --oversubscribe; 0 = external "
                         "workers only)")
    sv.add_argument("--oversubscribe", action="store_true",
                    help="allow more workers than host CPUs")
    sv.add_argument("--heartbeat", type=float, default=0.5,
                    help="worker heartbeat interval, seconds")
    sv.add_argument("--heartbeat-timeout", type=float, default=5.0,
                    help="declare a silent worker dead after this many "
                         "seconds and requeue its point")
    sv.set_defaults(fn=_cmd_serve)

    sb = sub.add_parser(
        "submit",
        help="submit a job document to a running service",
        description="POST a YAML/JSON job document ({kind: sweep|"
                    "campaign|scenarios|selftest, spec: {...}}) to the "
                    "service and (by default) wait for completion.")
    sb.add_argument("job", help="job document path, or - for stdin")
    sb.add_argument("--url", help="service URL (default: read "
                                  "--state-dir/serve.json)")
    sb.add_argument("--state-dir", default=".repro-serve")
    sb.add_argument("--no-wait", dest="wait", action="store_false",
                    help="print the job id and return immediately")
    sb.add_argument("--result", action="store_true",
                    help="wait and print the full result document")
    sb.add_argument("--timeout", type=float, default=600.0,
                    help="max seconds to wait (default %(default)s)")
    sb.set_defaults(fn=_cmd_submit)

    jb = sub.add_parser("jobs", help="list a running service's jobs")
    jb.add_argument("--url", help="service URL (default: read "
                                  "--state-dir/serve.json)")
    jb.add_argument("--state-dir", default=".repro-serve")
    jb.set_defaults(fn=_cmd_jobs)
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
