"""Chrome ``chrome://tracing`` / Perfetto JSON exporter.

Builds a Trace Event Format document from a :class:`~repro.sim.trace.Tracer`:
begin/end category pairs become complete ("X") duration events, everything
else becomes instant ("i") events. Records whose payload carries a
``span`` id (handed out by :meth:`Tracer.span_id`) are paired exactly;
records without one are paired FIFO per (category, track).

Track mapping: ``pid`` is the MPI rank (payload key ``rank``), ``tid`` is
the simulated task (payload key ``task``, falling back to ``vci``),
interned to small integers with thread-name metadata events so Perfetto
shows readable lanes. Timestamps are simulated microseconds.

The export is deterministic: same seed, same bytes.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Any, Optional, Union

from ..sim.trace import Category, TraceRecord, Tracer
from .metrics import MetricsRegistry

__all__ = ["build_chrome_trace", "export_chrome_trace"]

_US = 1e6  # seconds -> Chrome-trace microseconds


def _payload_dict(record: TraceRecord) -> dict[str, Any]:
    return record.payload if isinstance(record.payload, dict) else {}


def _span_name(begin: Category) -> str:
    name = begin.name
    return name[:-len(".begin")] if name.endswith(".begin") else name


class _TrackInterner:
    """Stable (pid, tid) assignment plus thread-name metadata events."""

    def __init__(self) -> None:
        self._tids: dict[tuple[int, str], int] = {}
        self.metadata: list[dict[str, Any]] = []

    def track(self, record: TraceRecord) -> tuple[int, int]:
        """Map a record to stable Chrome (pid, tid) track ids."""
        payload = _payload_dict(record)
        pid = int(payload.get("rank", payload.get("pid", 0)))
        name = payload.get("task")
        if name is None:
            vci = payload.get("vci")
            name = f"vci{vci}" if vci is not None else "main"
        key = (pid, str(name))
        tid = self._tids.get(key)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[key] = tid
            self.metadata.append({
                "args": {"name": str(name)}, "name": "thread_name",
                "ph": "M", "pid": pid, "tid": tid,
            })
        return pid, tid


def build_chrome_trace(tracer: Tracer,
                       metrics: Optional[MetricsRegistry] = None
                       ) -> dict[str, Any]:
    """Assemble the Trace Event Format document as a plain dict."""
    tracks = _TrackInterner()
    events: list[dict[str, Any]] = []
    # Exact pairing by span id; FIFO fallback per (pair-name, pid, tid).
    open_by_id: dict[tuple[str, Any], tuple[TraceRecord, int, int]] = {}
    open_fifo: dict[tuple[str, int, int],
                    deque[tuple[TraceRecord, int, int]]] = {}
    orphan_ends = 0

    for record in tracer.records:
        cat = record.category
        if cat.kind == "begin":
            pid, tid = tracks.track(record)
            payload = _payload_dict(record)
            span = payload.get("span")
            if span is not None:
                open_by_id[(cat.name, span)] = (record, pid, tid)
            else:
                open_fifo.setdefault((cat.name, pid, tid), deque()).append(
                    (record, pid, tid))
        elif cat.kind == "end":
            payload = _payload_dict(record)
            span = payload.get("span")
            begin = None
            if span is not None:
                begin = open_by_id.pop((cat.pair, span), None)
            else:
                pid, tid = tracks.track(record)
                queue = open_fifo.get((cat.pair, pid, tid))
                if queue:
                    begin = queue.popleft()
            if begin is None:
                orphan_ends += 1
                continue
            brec, bpid, btid = begin
            args = dict(_payload_dict(brec))
            args.update(payload)
            args.pop("span", None)
            events.append({
                "args": args, "cat": cat.layer, "dur": (record.time
                                                        - brec.time) * _US,
                "name": _span_name(brec.category), "ph": "X",
                "pid": bpid, "tid": btid, "ts": brec.time * _US,
            })
        else:
            pid, tid = tracks.track(record)
            args = _payload_dict(record)
            events.append({
                "args": args, "cat": cat.layer, "name": cat.name,
                "ph": "i", "pid": pid, "tid": tid, "s": "t",
                "ts": record.time * _US,
            })

    unmatched_begins = len(open_by_id) + sum(
        len(q) for q in open_fifo.values())
    events.sort(key=lambda e: e["ts"])  # stable: ties keep emit order
    doc: dict[str, Any] = {
        "displayTimeUnit": "ns",
        "otherData": {
            "orphan_end_records": orphan_ends,
            "unmatched_begin_records": unmatched_begins,
            "record_count": len(tracer.records),
        },
        "traceEvents": tracks.metadata + events,
    }
    if metrics is not None:
        doc["otherData"]["metrics"] = metrics.snapshot()
    return doc


def export_chrome_trace(tracer: Tracer,
                        dest: Optional[Union[str, IO[str]]] = None,
                        metrics: Optional[MetricsRegistry] = None) -> str:
    """Serialize the trace to Chrome-trace JSON.

    ``dest`` may be a path or an open text file; either way the JSON text
    is returned. Output is byte-stable for identical simulations.
    """
    doc = build_chrome_trace(tracer, metrics=metrics)
    text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    if isinstance(dest, str):
        with open(dest, "w") as fh:
            fh.write(text)
    elif dest is not None:
        dest.write(text)
    return text
