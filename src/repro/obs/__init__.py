"""Observability subsystem: metrics, contention histograms, trace export.

The paper's claims are statements about *where time and contention go*
inside the MPI library — per-VCI lock queues, doorbell serialization,
matching-queue depth, hardware-context occupancy. This package is the
instrument panel for those quantities:

- :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — counters, gauges
  and weighted histograms, all in simulated time; handed to
  ``World(metrics=...)`` and threaded through every hot layer.
- :func:`collect_world` (:mod:`repro.obs.collect`) — end-of-run harvest
  of structural stats (VCI totals, context occupancy, link saturation).
- :func:`render_report` / :func:`render_vci_report`
  (:mod:`repro.obs.report`) — plain-text profiling reports.
- :func:`export_chrome_trace` (:mod:`repro.obs.chrome`) — Chrome
  ``chrome://tracing`` / Perfetto JSON built from typed trace spans.

Typical use (or just run ``python -m repro profile msgrate``)::

    from repro import MetricsRegistry, World
    from repro.obs import render_report

    metrics = MetricsRegistry()
    world = World(num_nodes=2, metrics=metrics)
    ...  # run the experiment
    world.finalize_metrics()
    print(render_report(metrics))
"""

from ..sim.trace import Category, SpanPairing, TraceCategory, Tracer
from .chrome import build_chrome_trace, export_chrome_trace
from .collect import collect_world
from .metrics import (
    DEPTH_BUCKETS,
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    instrument_lock,
)
from .report import render_metrics_report, render_report, render_vci_report

__all__ = [
    "Category",
    "Counter",
    "DEPTH_BUCKETS",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanPairing",
    "TraceCategory",
    "Tracer",
    "build_chrome_trace",
    "collect_world",
    "export_chrome_trace",
    "instrument_lock",
    "render_metrics_report",
    "render_report",
    "render_vci_report",
]
