"""Metric primitives: counters, time-weighted gauges, weighted histograms.

All metrics live in *simulated* time: a :class:`MetricsRegistry` is bound
to a simulator clock (``World`` does this for its registry), gauges
integrate their value over simulated seconds, and histogram observations
may be weighted by simulated durations (e.g. "time spent at queue depth
d"). Recording a metric never schedules an event, so enabling metrics
cannot perturb simulated timings — two runs with the same seed produce
identical metric values whether or not anyone is watching.

Series are keyed by ``(name, labels)``; labels are small tag dictionaries
(``rank=0, vci=3``) sorted into a canonical tuple, so snapshots and
reports are deterministic.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DURATION_BUCKETS",
    "DEPTH_BUCKETS",
    "instrument_lock",
]

LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


def format_labels(labels: LabelKey) -> str:
    return ",".join(f"{k}={v}" for k, v in labels)


#: Default bucket bounds for durations in seconds: 1-2-5 per decade from
#: 1 ns to 10 ms. Values above the last bound land in the overflow bucket.
DURATION_BUCKETS: tuple[float, ...] = tuple(
    m * (10.0 ** e) for e in range(-9, -2) for m in (1.0, 2.0, 5.0))

#: Default bucket bounds for queue depths / occupancies: powers of two.
DEPTH_BUCKETS: tuple[float, ...] = tuple(
    float(1 << i) for i in range(13))  # 1 .. 4096


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def as_dict(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A sampled value, integrated over simulated time.

    ``set`` records the new value and accumulates ``old_value * dt`` so
    :meth:`time_weighted_mean` reports the average level over the run, not
    just the final sample.
    """

    __slots__ = ("name", "labels", "value", "max_value", "_now",
                 "_start_time", "_last_time", "_weighted_sum", "_samples")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey,
                 now: Callable[[], float]):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.max_value = 0.0
        self._now = now
        self._start_time = now()
        self._last_time = self._start_time
        self._weighted_sum = 0.0
        self._samples = 0

    def set(self, value: float) -> None:
        """Set the gauge, folding the old value into the time-weighted mean."""
        t = self._now()
        self._weighted_sum += self.value * (t - self._last_time)
        self._last_time = t
        self.value = value
        self.max_value = max(self.max_value, value)
        self._samples += 1

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def time_weighted_mean(self, until: Optional[float] = None) -> float:
        """Mean value from the first sample to ``until`` (default: now)."""
        t = self._now() if until is None else until
        total = self._weighted_sum + self.value * max(0.0, t - self._last_time)
        elapsed = t - self._start_time
        if elapsed <= 0.0:
            return self.value
        return total / elapsed

    def as_dict(self) -> dict[str, Any]:
        return {"value": self.value, "max": self.max_value,
                "samples": self._samples}


class Histogram:
    """A weighted histogram with fixed bucket bounds.

    ``observe(v)`` records one observation; ``observe(v, weight=dt)``
    records a *time-weighted* observation (bucket mass grows by ``dt``),
    which is how queue-depth-over-time distributions are built on a
    discrete-event clock.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_weights", "count",
                 "total", "weight", "min_value", "max_value")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey,
                 bounds: tuple[float, ...] = DURATION_BUCKETS):
        self.name = name
        self.labels = labels
        self.bounds = bounds
        #: One weight cell per bound plus one overflow cell.
        self.bucket_weights = [0.0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.weight = 0.0
        self.min_value = float("inf")
        self.max_value = float("-inf")

    def observe(self, value: float, weight: float = 1.0) -> None:
        """Record one sample into count/total/min/max and its bucket."""
        self.count += 1
        self.total += value
        self.weight += weight
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        self.bucket_weights[bisect.bisect_left(self.bounds, value)] += weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.weight <= 0.0:
            return 0.0
        target = q * self.weight
        cum = 0.0
        for i, w in enumerate(self.bucket_weights):
            cum += w
            if cum >= target:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max_value
        return self.max_value

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "weight": self.weight,
            "mean": self.mean,
            "min": self.min_value if self.count else 0.0,
            "max": self.max_value if self.count else 0.0,
        }


class MetricsRegistry:
    """The per-run metric store.

    Layers fetch (get-or-create) metric series by name + labels once and
    hold the returned handle; recording through a handle is a plain
    attribute update. A disabled registry (``enabled=False``) still hands
    out working handles — the ``enabled`` flag exists so hot paths can
    skip instrumentation wholesale.
    """

    def __init__(self, enabled: bool = True,
                 clock: Optional[Callable[[], float]] = None):
        self.enabled = enabled
        self._clock = clock or (lambda: 0.0)
        self._metrics: dict[tuple[str, LabelKey], Any] = {}

    # -- clock binding -----------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> "MetricsRegistry":
        """Attach the simulated-time clock (``World`` calls this)."""
        self._clock = clock
        return self

    def now(self) -> float:
        return self._clock()

    # -- series construction ----------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create the counter with this name and label set."""
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Counter(name, key[1])
            self._metrics[key] = metric
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create the gauge with this name and label set."""
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Gauge(name, key[1], self._clock)
            self._metrics[key] = metric
        return metric

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DURATION_BUCKETS,
                  **labels: Any) -> Histogram:
        """Get or create the histogram with this name, bounds and labels."""
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, key[1], bounds)
            self._metrics[key] = metric
        return metric

    # -- one-shot conveniences --------------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        if self.enabled:
            self.counter(name, **labels).inc(amount)

    def observe(self, name: str, value: float, weight: float = 1.0,
                **labels: Any) -> None:
        if self.enabled:
            self.histogram(name, **labels).observe(value, weight)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        if self.enabled:
            self.gauge(name, **labels).set(value)

    # -- introspection -----------------------------------------------------
    def series(self, name: str) -> list[Any]:
        """All series of metric ``name``, sorted by labels."""
        found = [m for (n, _), m in self._metrics.items() if n == name]
        found.sort(key=lambda m: m.labels)
        return found

    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """A specific series, or None if it was never recorded."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, default: float = 0.0, **labels: Any) -> float:
        """Scalar value of a counter/gauge series (``default`` if absent)."""
        metric = self.get(name, **labels)
        return metric.value if metric is not None else default

    def names(self) -> list[str]:
        return sorted({n for n, _ in self._metrics})

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, list[dict[str, Any]]]:
        """Deterministic nested-dict dump of every series (for tests,
        exporters, and run-to-run comparisons)."""
        out: dict[str, list[dict[str, Any]]] = {}
        for name in self.names():
            out[name] = [
                {"labels": format_labels(m.labels), "kind": m.kind,
                 **m.as_dict()}
                for m in self.series(name)
            ]
        return out


def instrument_lock(lock: Any, metrics: MetricsRegistry,
                    **labels: Any) -> None:
    """Attach contention metrics to a :class:`repro.sim.sync.Lock`.

    Feeds three series from the lock's observer hook: per-acquire wait
    times, per-release hold times, and a wait-time-weighted queue-depth
    histogram (how long acquirers spent waiting at each queue position).
    Idempotent per lock: an existing observer is left in place.
    """
    if lock.observer is not None or not metrics.enabled:
        return
    h_wait = metrics.histogram("sim.lock.wait", lock=lock.name, **labels)
    h_hold = metrics.histogram("sim.lock.hold", lock=lock.name, **labels)
    h_queue = metrics.histogram("sim.lock.queue_depth", bounds=DEPTH_BUCKETS,
                                lock=lock.name, **labels)

    def observer(event: str, duration: float, queue_len: int) -> None:
        if event == "acquire":
            h_wait.observe(duration)
            if queue_len:
                h_queue.observe(queue_len, weight=duration)
        elif event == "hold":
            h_hold.observe(duration)

    lock.observer = observer
