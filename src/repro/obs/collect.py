"""Harvest structural statistics from a finished (or running) World.

The hot layers record *per-event* metrics live (issue-path stage timings,
lock waits, match scan lengths). Everything that is cheaper to read off
the simulation structures at the end — VCI send/recv totals, matching
queue high-water marks, NIC context occupancy, fabric link saturation —
is collected here into gauges, so the hot paths stay lean.

``collect_world`` is idempotent (gauges are set, not incremented);
:meth:`repro.runtime.world.World.finalize_metrics` calls it once per
report. The world is duck-typed to keep :mod:`repro.obs` independent of
the runtime layer.
"""

from __future__ import annotations

from typing import Any

from .metrics import MetricsRegistry

__all__ = ["collect_world"]


def collect_world(world: Any, metrics: MetricsRegistry) -> None:
    """Snapshot per-VCI, per-context, and per-link stats into gauges."""
    if not metrics.enabled:
        return
    elapsed = world.sim.now
    metrics.set_gauge("sim.elapsed", elapsed)

    for proc in world.procs:
        lib = proc.lib
        rank = proc.rank
        metrics.set_gauge("mpi.sends_posted", lib.sends_posted, rank=rank)
        metrics.set_gauge("mpi.recvs_posted", lib.recvs_posted, rank=rank)
        metrics.set_gauge("mpi.recvs_completed", lib.recvs_completed,
                          rank=rank)
        metrics.set_gauge("mpi.bytes_sent", lib.bytes_sent, rank=rank)

        for vci in lib.vci_pool.active_vcis:
            labels = {"rank": rank, "vci": vci.index}
            metrics.set_gauge("vci.sends", vci.sends, **labels)
            metrics.set_gauge("vci.recvs", vci.recvs, **labels)
            metrics.set_gauge("vci.hw_ctx", vci.hw_context.index, **labels)
            metrics.set_gauge("vci.node", proc.node.node_id, **labels)

            lock = vci.lock.stats
            metrics.set_gauge("vci.lock.acquisitions", lock.acquisitions,
                              **labels)
            metrics.set_gauge("vci.lock.contention_ratio",
                              lock.contention_ratio, **labels)
            metrics.set_gauge("vci.lock.total_wait", lock.total_wait_time,
                              **labels)
            metrics.set_gauge("vci.lock.total_hold", lock.total_hold_time,
                              **labels)
            metrics.set_gauge("vci.lock.max_queue", lock.max_queue_length,
                              **labels)

            engine = vci.engine
            metrics.set_gauge("match.total_scans", engine.total_scans,
                              **labels)
            metrics.set_gauge("match.max_posted_depth",
                              engine.max_posted_depth, **labels)
            metrics.set_gauge("match.max_unexpected_depth",
                              engine.max_unexpected_depth, **labels)
            metrics.set_gauge("match.server_busy",
                              vci.match_server.stats.busy_time, **labels)

    for node in world.nodes:
        nic = node.nic
        metrics.set_gauge("nic.oversubscription", nic.oversubscription,
                          node=node.node_id)
        metrics.set_gauge("nic.load_imbalance", nic.load_imbalance(),
                          node=node.node_id)
        for ctx in nic.contexts:
            if ctx.sharers == 0 and ctx.messages_issued == 0:
                continue
            labels = {"node": node.node_id, "ctx": ctx.index}
            busy = ctx.injector.stats.busy_time
            metrics.set_gauge("hwctx.messages", ctx.messages_issued, **labels)
            metrics.set_gauge("hwctx.bytes", ctx.bytes_issued, **labels)
            metrics.set_gauge("hwctx.sharers", ctx.sharers, **labels)
            metrics.set_gauge("hwctx.busy", busy, **labels)
            metrics.set_gauge(
                "hwctx.occupancy",
                busy / elapsed if elapsed > 0.0 else 0.0, **labels)
            doorbell = ctx.doorbell_lock.stats
            metrics.set_gauge("hwctx.doorbell.total_wait",
                              doorbell.total_wait_time, **labels)
            metrics.set_gauge("hwctx.doorbell.contention_ratio",
                              doorbell.contention_ratio, **labels)
            if ctx.failovers_in or ctx.stall_waits:
                metrics.set_gauge("hwctx.failovers_in", ctx.failovers_in,
                                  **labels)
                metrics.set_gauge("hwctx.stall_waits", ctx.stall_waits,
                                  **labels)

    fabric = world.fabric
    metrics.set_gauge("fabric.messages_delivered", fabric.messages_delivered)
    metrics.set_gauge("fabric.bytes_delivered", fabric.bytes_delivered)
    for node_id, server in sorted(fabric._egress.items()):
        metrics.set_gauge("fabric.egress.busy", server.stats.busy_time,
                          node=node_id)
        metrics.set_gauge(
            "fabric.egress.saturation",
            server.stats.busy_time / elapsed if elapsed > 0.0 else 0.0,
            node=node_id)
    for node_id, server in sorted(fabric._ingress.items()):
        metrics.set_gauge("fabric.ingress.busy", server.stats.busy_time,
                          node=node_id)
        metrics.set_gauge(
            "fabric.ingress.saturation",
            server.stats.busy_time / elapsed if elapsed > 0.0 else 0.0,
            node=node_id)

    # -- interconnect topology (present only on RoutedFabric worlds) ------
    topology = getattr(fabric, "topology", None)
    if topology is not None:
        for link in topology.links():
            if link.messages == 0:
                continue
            stats = link.server.stats
            metrics.set_gauge("topo.link.messages", link.messages,
                              link=link.name)
            metrics.set_gauge("topo.link.bytes", link.bytes, link=link.name)
            metrics.set_gauge("topo.link.busy", stats.busy_time,
                              link=link.name)
            metrics.set_gauge(
                "topo.link.utilization",
                stats.busy_time / elapsed if elapsed > 0.0 else 0.0,
                link=link.name)
            metrics.set_gauge("topo.link.total_queue_delay",
                              stats.total_queue_delay, link=link.name)

    # -- fault injection + reliable transport (present only on worlds
    # built with faults=/transport=) --------------------------------------
    injector = getattr(world, "injector", None)
    if injector is not None:
        for key, value in injector.summary().items():
            metrics.set_gauge(f"fault.total.{key}", value)
    for proc in world.procs:
        transport = getattr(proc.lib, "transport", None)
        if transport is None:
            continue
        for key, value in transport.summary().items():
            metrics.set_gauge(f"transport.total.{key}", value,
                              rank=proc.rank)
        metrics.set_gauge("transport.unacked", transport.unacked,
                          rank=proc.rank)
