"""Plain-text reports over a :class:`~repro.obs.metrics.MetricsRegistry`.

Two views:

- :func:`render_vci_report` — the profiling headline: one row per
  (rank, VCI) joining the issue-path stage timings with the hardware
  context each VCI landed on (lock wait, doorbell serialization, shared
  posts, context occupancy). Requires the harvested gauges, i.e. run
  :meth:`World.finalize_metrics` first.
- :func:`render_metrics_report` — the full catalog dump, grouped by
  metric name, one line per label set.

Both render deterministically (series are sorted by name and labels).
"""

from __future__ import annotations

from typing import Any, Optional

from .metrics import (
    DEPTH_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_labels,
)

__all__ = ["render_vci_report", "render_metrics_report", "render_report"]


def _table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:>{w}}}" for w in widths)
    lines = [f"== {title} ==", fmt.format(*headers),
             "-" * (sum(widths) + 2 * (len(widths) - 1))]
    lines += [fmt.format(*row) for row in rows]
    return "\n".join(lines)


def _us(seconds: float) -> str:
    return f"{seconds * 1e6:.3f}"


def _labels_of(metric: Any) -> dict[str, Any]:
    return dict(metric.labels)


def render_vci_report(metrics: MetricsRegistry) -> str:
    """Per-VCI table: issue counts, lock wait, doorbell serialization,
    shared-context posts, and hardware-context occupancy."""
    rows: list[list[str]] = []
    for sends in metrics.series("vci.sends"):
        labels = _labels_of(sends)
        rank, vci = labels["rank"], labels["vci"]
        issues = metrics.value("mpi.issue.count", rank=rank, vci=vci)
        lock_wait = metrics.get("mpi.issue.lock_wait", rank=rank, vci=vci)
        db_wait = metrics.get("mpi.issue.doorbell_wait", rank=rank, vci=vci)
        shared = metrics.value("nic.shared_post", rank=rank, vci=vci)
        node = int(metrics.value("vci.node", rank=rank, vci=vci))
        ctx = int(metrics.value("vci.hw_ctx", rank=rank, vci=vci))
        occ = metrics.value("hwctx.occupancy", node=node, ctx=ctx)
        rows.append([
            str(rank), str(vci), f"{int(issues)}",
            _us(lock_wait.total if lock_wait else 0.0),
            _us(lock_wait.mean if lock_wait else 0.0),
            _us(db_wait.total if db_wait else 0.0),
            f"{int(shared)}",
            f"{node}/{ctx}",
            f"{occ * 100.0:.1f}%",
        ])
    if not rows:
        return ("== per-VCI metrics ==\n(no per-VCI series recorded — run "
                "with metrics enabled and call World.finalize_metrics())")
    return _table(
        "per-VCI metrics",
        ["rank", "vci", "issues", "lockwait(us)", "lw/msg(us)",
         "dbwait(us)", "shared", "node/ctx", "ctx-occ"],
        rows)


def render_metrics_report(metrics: MetricsRegistry,
                          names: Optional[list[str]] = None) -> str:
    """Full metric dump grouped by name (optionally restricted to
    ``names``), one line per label set."""
    sections: list[str] = []
    for name in (names if names is not None else metrics.names()):
        lines = [f"{name}:"]
        for m in metrics.series(name):
            label_text = format_labels(m.labels) or "-"
            if isinstance(m, Histogram):
                if not m.count:
                    body = "count=0"
                elif m.bounds is DEPTH_BUCKETS:  # dimensionless depths
                    body = (f"count={m.count} mean={m.mean:.2f} "
                            f"max={m.max_value:g}")
                else:  # durations in seconds
                    body = (f"count={m.count} total={_us(m.total)}us "
                            f"mean={_us(m.mean)}us max={_us(m.max_value)}us "
                            f"p99<={_us(m.quantile(0.99))}us")
            elif isinstance(m, Gauge):
                body = f"value={m.value:g} max={m.max_value:g}"
            elif isinstance(m, Counter):
                body = f"value={m.value:g}"
            else:  # pragma: no cover - future metric kinds
                body = repr(m.as_dict())
            lines.append(f"  {{{label_text}}} {body}")
        sections.append("\n".join(lines))
    return "\n".join(sections)


def render_report(metrics: MetricsRegistry) -> str:
    """The default profiling report: per-VCI table plus key totals."""
    parts = [render_vci_report(metrics)]
    totals = [n for n in ("sim.elapsed", "fabric.messages_delivered",
                          "fabric.bytes_delivered", "nic.oversubscription",
                          "fabric.egress.saturation",
                          "fabric.ingress.saturation")
              if metrics.series(n)]
    if totals:
        parts.append(render_metrics_report(metrics, totals))
    return "\n\n".join(parts)
