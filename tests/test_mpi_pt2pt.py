"""Point-to-point semantics tests: ordering, wildcards, protocols,
truncation, probes (repro.mpi.comm + library)."""

import numpy as np
import pytest

from repro.errors import (
    HintViolationError,
    MpiUsageError,
    TagOverflowError,
    TruncationError,
)
from repro.mpi import ANY_SOURCE, ANY_TAG, Info, waitall
from repro.mpi.vci import TAG_UB
from repro.netsim import NetworkConfig
from repro.runtime import World

from tests.helpers import run_ranks, run_same


def test_send_recv_data_integrity(world2):
    data = np.arange(32, dtype=np.float64) * 1.5

    def sender(proc):
        yield from proc.comm_world.Send(data.copy(), dest=1, tag=3)

    def receiver(proc):
        buf = np.zeros(32)
        st = yield from proc.comm_world.Recv(buf, source=0, tag=3)
        assert np.allclose(buf, data)
        assert st.source == 0 and st.tag == 3 and st.count == 32

    run_ranks(world2, sender, receiver)


def test_send_before_recv_unexpected_path(world2):
    def sender(proc):
        yield from proc.comm_world.Send(np.full(4, 9.0), dest=1, tag=1)

    def receiver(proc):
        yield proc.compute(50e-6)  # let the message arrive unexpected
        buf = np.zeros(4)
        yield from proc.comm_world.Recv(buf, source=0, tag=1)
        assert np.allclose(buf, 9.0)

    run_ranks(world2, sender, receiver)


def test_nonovertaking_same_tag_fifo(world2):
    """Two same-tag sends must be received in posting order."""
    def sender(proc):
        for v in (1.0, 2.0, 3.0):
            yield from proc.comm_world.Send(np.full(1, v), dest=1, tag=0)

    def receiver(proc):
        got = []
        for _ in range(3):
            buf = np.zeros(1)
            yield from proc.comm_world.Recv(buf, source=0, tag=0)
            got.append(buf[0])
        assert got == [1.0, 2.0, 3.0]

    run_ranks(world2, sender, receiver)


def test_any_source_any_tag_wildcards(world4):
    def sender(proc):
        if proc.rank != 0:
            yield from proc.comm_world.Send(
                np.full(1, float(proc.rank)), dest=0, tag=proc.rank * 10)

    def receiver(proc):
        if proc.rank == 0:
            seen = set()
            for _ in range(3):
                buf = np.zeros(1)
                st = yield from proc.comm_world.Recv(buf, ANY_SOURCE, ANY_TAG)
                assert st.tag == st.source * 10
                assert buf[0] == st.source
                seen.add(st.source)
            assert seen == {1, 2, 3}
        else:
            yield from sender(proc)

    run_same(world4, receiver)


def test_tag_selectivity(world2):
    """A receive with tag B must not consume an earlier tag-A message."""
    def sender(proc):
        yield from proc.comm_world.Send(np.full(1, 1.0), dest=1, tag=1)
        yield from proc.comm_world.Send(np.full(1, 2.0), dest=1, tag=2)

    def receiver(proc):
        b2 = np.zeros(1)
        yield from proc.comm_world.Recv(b2, source=0, tag=2)
        assert b2[0] == 2.0
        b1 = np.zeros(1)
        yield from proc.comm_world.Recv(b1, source=0, tag=1)
        assert b1[0] == 1.0

    run_ranks(world2, sender, receiver)


def test_rendezvous_large_message(world2):
    """Messages beyond the eager threshold take the RTS/CTS/DATA path."""
    n = 1 << 16  # 512 KiB of float64 > 16 KiB threshold
    data = np.random.default_rng(0).random(n)

    def sender(proc):
        req = yield from proc.comm_world.Isend(data.copy(), dest=1, tag=0)
        yield from req.wait()

    def receiver(proc):
        buf = np.zeros(n)
        st = yield from proc.comm_world.Recv(buf, source=0, tag=0)
        assert st.count == n
        assert np.allclose(buf, data)

    run_ranks(world2, sender, receiver)


def test_rendezvous_unexpected_rts(world2):
    """RTS arriving before the receive is posted still completes."""
    n = 1 << 15
    def sender(proc):
        yield from proc.comm_world.Send(np.ones(n), dest=1, tag=0)

    def receiver(proc):
        yield proc.compute(100e-6)
        buf = np.zeros(n)
        yield from proc.comm_world.Recv(buf, source=0, tag=0)
        assert np.allclose(buf, 1.0)

    run_ranks(world2, sender, receiver)


def test_large_message_slower_than_small(world2):
    def sender(proc):
        t0 = proc.sim.now
        yield from proc.comm_world.Send(np.zeros(8), dest=1, tag=0)
        small = proc.sim.now - t0
        yield proc.compute(1e-3)
        t0 = proc.sim.now
        yield from proc.comm_world.Send(np.zeros(1 << 20), dest=1, tag=1)
        big = proc.sim.now - t0
        assert big > small * 5

    def receiver(proc):
        b = np.zeros(8)
        yield from proc.comm_world.Recv(b, source=0, tag=0)
        b = np.zeros(1 << 20)
        yield from proc.comm_world.Recv(b, source=0, tag=1)

    run_ranks(world2, sender, receiver)


def test_truncation_error(world2):
    def sender(proc):
        yield from proc.comm_world.Send(np.zeros(10), dest=1, tag=0)

    def receiver(proc):
        buf = np.zeros(5)
        req = yield from proc.comm_world.Irecv(buf, source=0, tag=0)
        with pytest.raises(TruncationError):
            yield from req.wait()

    run_ranks(world2, sender, receiver)


def test_self_send(world2):
    def rank0(proc):
        comm = proc.comm_world
        buf = np.zeros(4)
        rreq = yield from comm.Irecv(buf, source=0, tag=0)
        sreq = yield from comm.Isend(np.full(4, 5.0), dest=0, tag=0)
        yield from waitall([rreq, sreq])
        assert np.allclose(buf, 5.0)

    def rank1(proc):
        return
        yield

    run_ranks(world2, rank0, rank1)


def test_intranode_message_bypasses_fabric():
    world = World(num_nodes=1, procs_per_node=2)

    def sender(proc):
        yield from proc.comm_world.Send(np.full(4, 2.0), dest=1, tag=0)

    def receiver(proc):
        buf = np.zeros(4)
        yield from proc.comm_world.Recv(buf, source=0, tag=0)
        assert np.allclose(buf, 2.0)

    run_ranks(world, sender, receiver)
    assert world.fabric.messages_delivered == 0


def test_internode_message_uses_fabric(world2):
    def sender(proc):
        yield from proc.comm_world.Send(np.zeros(4), dest=1, tag=0)

    def receiver(proc):
        buf = np.zeros(4)
        yield from proc.comm_world.Recv(buf, source=0, tag=0)

    run_ranks(world2, sender, receiver)
    assert world2.fabric.messages_delivered == 1


def test_iprobe_sees_unexpected_then_recv(world2):
    def sender(proc):
        yield from proc.comm_world.Send(np.full(2, 3.0), dest=1, tag=44)

    def receiver(proc):
        comm = proc.comm_world
        while True:
            hit = yield from comm.Iprobe(ANY_SOURCE, ANY_TAG)
            if hit is not None:
                break
        src, tag, size = hit
        assert (src, tag, size) == (0, 44, 16)
        buf = np.zeros(2)
        yield from comm.Recv(buf, source=src, tag=tag)
        assert np.allclose(buf, 3.0)

    run_ranks(world2, sender, receiver)


def test_iprobe_returns_none_when_empty(world2):
    def rank0(proc):
        hit = yield from proc.comm_world.Iprobe(ANY_SOURCE, ANY_TAG)
        assert hit is None

    def rank1(proc):
        return
        yield

    run_ranks(world2, rank0, rank1)


# ---------------------------------------------------------------- validation

def test_invalid_dest_rejected(world2):
    def rank0(proc):
        with pytest.raises(MpiUsageError):
            yield from proc.comm_world.Isend(np.zeros(1), dest=9, tag=0)

    def rank1(proc):
        return
        yield

    run_ranks(world2, rank0, rank1)


def test_send_wildcards_rejected(world2):
    def rank0(proc):
        with pytest.raises(MpiUsageError):
            yield from proc.comm_world.Isend(np.zeros(1), dest=ANY_SOURCE, tag=0)
        with pytest.raises(MpiUsageError):
            yield from proc.comm_world.Isend(np.zeros(1), dest=1, tag=ANY_TAG)

    def rank1(proc):
        return
        yield

    run_ranks(world2, rank0, rank1)


def test_tag_overflow_raises(world2):
    def rank0(proc):
        with pytest.raises(TagOverflowError):
            yield from proc.comm_world.Isend(np.zeros(1), dest=1,
                                             tag=TAG_UB + 1)

    def rank1(proc):
        return
        yield

    run_ranks(world2, rank0, rank1)


def test_negative_tag_rejected(world2):
    def rank0(proc):
        with pytest.raises(MpiUsageError):
            yield from proc.comm_world.Isend(np.zeros(1), dest=1, tag=-5)

    def rank1(proc):
        return
        yield

    run_ranks(world2, rank0, rank1)


def test_hint_violation_any_tag(world2):
    def worker(proc):
        info = Info({"mpi_assert_no_any_tag": "true"})
        comm = yield from proc.comm_world.Dup(info)
        if proc.rank == 0:
            with pytest.raises(HintViolationError):
                yield from comm.Irecv(np.zeros(1), source=1, tag=ANY_TAG)

    run_same(world2, worker)


def test_freed_comm_rejected(world2):
    def worker(proc):
        comm = yield from proc.comm_world.Dup()
        comm.Free()
        with pytest.raises(MpiUsageError):
            yield from comm.Isend(np.zeros(1), dest=0, tag=0)

    run_same(world2, worker)


def test_send_completes_before_recv_posted(world2):
    """Eager sends complete locally without a matching receive."""
    def sender(proc):
        req = yield from proc.comm_world.Isend(np.zeros(4), dest=1, tag=0)
        yield from req.wait()
        return proc.sim.now

    def receiver(proc):
        yield proc.compute(1.0)  # posts the recv a full second later
        buf = np.zeros(4)
        yield from proc.comm_world.Recv(buf, source=0, tag=0)
        return proc.sim.now

    t_send, t_recv = run_ranks(world2, sender, receiver)
    assert t_send < 1e-4 and t_recv > 1.0
