"""Tests for the Legion event-runtime / circuit and graph proxies."""

import pytest

from repro.apps.graph import GraphConfig, partition_graph, run_graph
from repro.apps.legion import (
    CircuitConfig,
    LegionConfig,
    run_circuit,
    run_legion,
)
from repro.errors import MpiUsageError


# ---------------------------------------------------------------- legion

@pytest.mark.parametrize("mechanism", ["original", "communicators",
                                       "endpoints"])
def test_legion_all_events_processed(mechanism):
    cfg = LegionConfig(num_nodes=3, task_threads=4, msgs_per_thread=6,
                       mechanism=mechanism)
    r = run_legion(cfg)
    assert r.correct
    assert r.polling_rate > 0


def test_legion_partitioned_rejected():
    """Lesson 15: wildcard polling cannot be expressed with partitions."""
    with pytest.raises(MpiUsageError, match="Lesson 15"):
        LegionConfig(mechanism="partitioned")


def test_legion_needs_two_nodes():
    with pytest.raises(MpiUsageError):
        LegionConfig(num_nodes=1)


def test_fig5_polling_cost_grows_with_communicators():
    """Fig 5 / Lesson 5: the polling thread pays more per event when it
    must iterate over the task threads' communicators (paper: 1.63x)."""
    base = dict(num_nodes=3, task_threads=8, msgs_per_thread=10)
    r_comm = run_legion(LegionConfig(mechanism="communicators", **base))
    r_ep = run_legion(LegionConfig(mechanism="endpoints", **base))
    ratio = r_comm.polling_cost_per_event / r_ep.polling_cost_per_event
    assert 1.2 < ratio < 2.5
    assert r_comm.probes_per_event > 1.5 * r_ep.probes_per_event


def test_fig5_ratio_grows_with_thread_count():
    """More task threads -> more communicators to iterate -> worse."""
    def ratio(nthreads):
        # Scale the per-thread think time with the thread count so the
        # aggregate event rate at the polling thread stays constant.
        base = dict(num_nodes=3, task_threads=nthreads, msgs_per_thread=10,
                    task_work=1.25e-6 * nthreads * 2)
        r_comm = run_legion(LegionConfig(mechanism="communicators", **base))
        r_ep = run_legion(LegionConfig(mechanism="endpoints", **base))
        return r_comm.polling_cost_per_event / r_ep.polling_cost_per_event

    assert ratio(12) > ratio(3)


# ---------------------------------------------------------------- circuit

@pytest.mark.parametrize("mechanism", ["original", "communicators",
                                       "endpoints"])
def test_circuit_correct(mechanism):
    cfg = CircuitConfig(num_nodes=3, task_threads=4, timesteps=3,
                        wires_per_thread=4, mechanism=mechanism)
    assert run_circuit(cfg).correct


def test_fig1c_original_slower():
    base = dict(num_nodes=3, task_threads=8, timesteps=4,
                wires_per_thread=16, compute_per_step=1e-6)
    t_orig = run_circuit(CircuitConfig(mechanism="original", **base))
    t_ep = run_circuit(CircuitConfig(mechanism="endpoints", **base))
    assert t_orig.time_per_step > 1.1 * t_ep.time_per_step


def test_circuit_deterministic():
    cfg = CircuitConfig(num_nodes=2, task_threads=3, timesteps=2,
                        mechanism="endpoints")
    assert run_circuit(cfg).wall_time == run_circuit(cfg).wall_time


# ---------------------------------------------------------------- graph

def test_partition_graph_covers_all_vertices():
    cfg = GraphConfig(graph_vertices=64, num_nodes=2, threads_per_proc=2)
    g, owners = partition_graph(cfg)
    assert set(owners) == set(g.nodes)
    assert all(0 <= p < 2 and 0 <= t < 2 for p, t in owners.values())


@pytest.mark.parametrize("mechanism", ["original", "tags", "communicators",
                                       "endpoints"])
def test_graph_all_updates_delivered(mechanism):
    cfg = GraphConfig(num_nodes=3, threads_per_proc=3, graph_vertices=90,
                      iters=3, mechanism=mechanism)
    r = run_graph(cfg)
    assert r.correct
    assert r.remote_messages > 0


def test_graph_churn_validation():
    with pytest.raises(MpiUsageError):
        GraphConfig(churn=1.5)


def test_lesson5_churn_causes_communicator_conflicts():
    """Dynamic neighbourhoods make distinct local threads share static
    communicators (Lesson 5); endpoints never conflict."""
    base = dict(num_nodes=3, threads_per_proc=4, graph_vertices=120,
                iters=4, churn=0.5)
    r_comm = run_graph(GraphConfig(mechanism="communicators", **base))
    r_ep = run_graph(GraphConfig(mechanism="endpoints", **base))
    assert r_comm.comm_conflicts > 0
    assert r_ep.comm_conflicts == 0


def test_graph_zero_churn_static_pattern():
    cfg = GraphConfig(num_nodes=2, threads_per_proc=2, graph_vertices=40,
                      iters=2, churn=0.0, mechanism="tags")
    assert run_graph(cfg).correct
