"""Unit tests for synchronization primitives (repro.sim.sync)."""

import pytest

from repro.sim import Barrier, Gate, Lock, Mailbox, Semaphore, SimulationError, Simulator


# ---------------------------------------------------------------- Lock

def test_lock_serializes_critical_sections():
    sim = Simulator()
    lock = Lock(sim)
    log = []

    def worker(tag):
        yield from lock.acquire()
        log.append(("enter", tag, sim.now))
        yield sim.timeout(1.0)
        log.append(("exit", tag, sim.now))
        lock.release()

    for tag in range(3):
        sim.spawn(worker(tag))
    sim.run()
    # Sections must not overlap: enter/exit strictly alternate.
    kinds = [k for k, _, _ in log]
    assert kinds == ["enter", "exit"] * 3
    assert sim.now == pytest.approx(3.0)


def test_lock_fifo_order():
    sim = Simulator()
    lock = Lock(sim)
    order = []

    def worker(tag):
        yield from lock.acquire()
        order.append(tag)
        yield sim.timeout(1.0)
        lock.release()

    for tag in range(5):
        sim.spawn(worker(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_lock_contention_stats():
    sim = Simulator()
    lock = Lock(sim)

    def worker():
        yield from lock.acquire()
        yield sim.timeout(2.0)
        lock.release()

    for _ in range(4):
        sim.spawn(worker())
    sim.run()
    assert lock.stats.acquisitions == 4
    assert lock.stats.contended_acquisitions == 3
    # Waits: 2, 4, 6 seconds.
    assert lock.stats.total_wait_time == pytest.approx(12.0)
    assert lock.stats.total_hold_time == pytest.approx(8.0)
    assert lock.stats.contention_ratio == pytest.approx(0.75)
    assert lock.stats.mean_wait_time == pytest.approx(3.0)


def test_lock_try_acquire():
    sim = Simulator()
    lock = Lock(sim)
    assert lock.try_acquire()
    assert not lock.try_acquire()
    lock.release()
    assert lock.try_acquire()


def test_lock_release_unheld_raises():
    sim = Simulator()
    lock = Lock(sim)
    with pytest.raises(SimulationError):
        lock.release()


def test_uncontended_lock_takes_no_time():
    sim = Simulator()
    lock = Lock(sim)

    def solo():
        yield from lock.acquire()
        lock.release()
        yield from lock.acquire()
        lock.release()

    proc = sim.spawn(solo())
    sim.run(until=proc)
    assert sim.now == 0.0
    assert lock.stats.contended_acquisitions == 0


# ---------------------------------------------------------------- Semaphore

def test_semaphore_basic_counting():
    sim = Simulator()
    sem = Semaphore(sim, initial=2)
    done = []

    def worker(tag):
        yield from sem.wait()
        done.append((tag, sim.now))

    for tag in range(3):
        sim.spawn(worker(tag))

    def poster():
        yield sim.timeout(5.0)
        sem.post()

    sim.spawn(poster())
    sim.run()
    assert done[0] == (0, 0.0)
    assert done[1] == (1, 0.0)
    assert done[2] == (2, 5.0)


def test_semaphore_negative_initial_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Semaphore(sim, initial=-1)


def test_semaphore_post_many():
    sim = Simulator()
    sem = Semaphore(sim)
    sem.post(3)
    assert sem.count == 3


# ---------------------------------------------------------------- Barrier

def test_barrier_releases_all_at_last_arrival():
    sim = Simulator()
    bar = Barrier(sim, parties=3)
    release_times = []

    def worker(delay):
        yield sim.timeout(delay)
        yield from bar.wait()
        release_times.append(sim.now)

    for d in (1.0, 2.0, 3.0):
        sim.spawn(worker(d))
    sim.run()
    assert release_times == pytest.approx([3.0, 3.0, 3.0])


def test_barrier_is_cyclic():
    sim = Simulator()
    bar = Barrier(sim, parties=2)
    log = []

    def worker(tag):
        for i in range(3):
            yield sim.timeout(1.0 + tag)
            yield from bar.wait()
            log.append((tag, i, sim.now))

    sim.spawn(worker(0))
    sim.spawn(worker(1))
    sim.run()
    assert bar.generation == 3
    # Each round releases at the slower worker's arrival.
    times = sorted({t for _, _, t in log})
    assert times == pytest.approx([2.0, 4.0, 6.0])


def test_barrier_per_entry_cost():
    sim = Simulator()
    bar = Barrier(sim, parties=2, per_entry_cost=0.5)

    def worker():
        yield from bar.wait()

    sim.spawn(worker())
    sim.spawn(worker())
    sim.run()
    assert sim.now == pytest.approx(0.5)


def test_barrier_requires_positive_parties():
    sim = Simulator()
    with pytest.raises(ValueError):
        Barrier(sim, parties=0)


# ---------------------------------------------------------------- Gate

def test_gate_blocks_until_opened():
    sim = Simulator()
    gate = Gate(sim)
    log = []

    def waiter():
        value = yield from gate.wait()
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(2.0)
        gate.open("go")

    sim.spawn(waiter())
    sim.spawn(opener())
    sim.run()
    assert log == [(2.0, "go")]


def test_gate_open_passes_immediately():
    sim = Simulator()
    gate = Gate(sim, open=True)
    log = []

    def waiter():
        yield sim.timeout(1.0)
        yield from gate.wait()
        log.append(sim.now)

    sim.spawn(waiter())
    sim.run()
    assert log == [1.0]


def test_gate_reset_reblocks():
    sim = Simulator()
    gate = Gate(sim)
    gate.open()
    gate.reset()
    assert not gate.is_open


# ---------------------------------------------------------------- Mailbox

def test_mailbox_put_then_get():
    sim = Simulator()
    box = Mailbox(sim)
    box.put("a")
    box.put("b")
    got = []

    def getter():
        got.append((yield from box.get()))
        got.append((yield from box.get()))

    sim.spawn(getter())
    sim.run()
    assert got == ["a", "b"]


def test_mailbox_get_blocks_until_put():
    sim = Simulator()
    box = Mailbox(sim)
    got = []

    def getter():
        item = yield from box.get()
        got.append((sim.now, item))

    def putter():
        yield sim.timeout(3.0)
        box.put("late")

    sim.spawn(getter())
    sim.spawn(putter())
    sim.run()
    assert got == [(3.0, "late")]


def test_mailbox_try_get():
    sim = Simulator()
    box = Mailbox(sim)
    ok, item = box.try_get()
    assert not ok and item is None
    box.put(7)
    ok, item = box.try_get()
    assert ok and item == 7
    assert len(box) == 0


def test_mailbox_fifo_getters():
    sim = Simulator()
    box = Mailbox(sim)
    got = []

    def getter(tag):
        item = yield from box.get()
        got.append((tag, item))

    sim.spawn(getter("first"))
    sim.spawn(getter("second"))

    def putter():
        yield sim.timeout(1.0)
        box.put(1)
        box.put(2)

    sim.spawn(putter())
    sim.run()
    assert got == [("first", 1), ("second", 2)]
