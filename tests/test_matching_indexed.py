"""Equivalence of the indexed matching engine and the linear reference.

The indexed :class:`~repro.mpi.matching.MatchingEngine` must be
*observationally identical* to :class:`LinearMatchingEngine`: same match
results, same ``scanned`` counts (they feed the cost model, so simulated
timings depend on them), same depths and ``total_scans``. These tests
drive both engines through identical operation interleavings — randomized
(Hypothesis) and adversarial (cancel storms that force compaction) — and
regenerate one committed results file with the linear engine to prove
byte-identity end to end.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.matching import (ANY_SOURCE, ANY_TAG, LinearMatchingEngine,
                                MatchingEngine, PostedRecv)
from repro.mpi.request import Request
from repro.netsim.message import MessageKind, WireMessage
from repro.sim import Simulator
from repro.netsim import ClusterSpec

BUF = np.zeros(1, dtype=np.uint8)


def mk_msg(ctx, src, tag, dst):
    return WireMessage(kind=MessageKind.EAGER, src_node=0, dst_node=0,
                       src_rank=src, dst_rank=dst, context_id=ctx,
                       tag=tag, size=1, payload=None,
                       meta={"src_addr": src, "dst_addr": dst})


def mk_entry(sim, req, ctx, src, tag, dst):
    return PostedRecv(req=req, buf=BUF, count=1, context_id=ctx,
                      source=src, tag=tag, dst_addr=dst)


class EnginePair:
    """Drives the indexed engine and the linear reference through the
    same operation stream, asserting identical observables at each step."""

    def __init__(self):
        self.sim = Simulator()
        self.a = MatchingEngine()       # indexed, under test
        self.b = LinearMatchingEngine()  # reference
        self.posted = []  # Requests ever posted (cancel targets)

    def post(self, ctx, src, tag, dst):
        req = Request(self.sim, "recv")
        ea = mk_entry(self.sim, req, ctx, src, tag, dst)
        eb = mk_entry(self.sim, req, ctx, src, tag, dst)
        ra, sa = self.a.post_recv(ea)
        rb, sb = self.b.post_recv(eb)
        assert sa == sb
        assert ra is rb  # matched message objects are shared, or both None
        if ra is None:
            assert ea.seq == eb.seq
            self.posted.append(req)

    def incoming(self, ctx, src, tag, dst):
        msg = mk_msg(ctx, src, tag, dst)
        ra, sa = self.a.incoming(msg)
        rb, sb = self.b.incoming(msg)
        assert sa == sb
        assert (ra is None) == (rb is None)
        if ra is not None:  # distinct PostedRecv objects, same receive
            assert ra.req is rb.req
            assert ra.seq == rb.seq

    def probe(self, ctx, src, tag, dst):
        ra, sa = self.a.probe(ctx, src, tag, dst)
        rb, sb = self.b.probe(ctx, src, tag, dst)
        assert sa == sb and ra is rb

    def claim(self, ctx, src, tag, dst):
        ra, sa = self.a.claim_unexpected(ctx, src, tag, dst)
        rb, sb = self.b.claim_unexpected(ctx, src, tag, dst)
        assert sa == sb and ra is rb

    def scan_ux(self, ctx, src, tag, dst):
        assert (self.a.scan_cost_unexpected(ctx, src, tag, dst)
                == self.b.scan_cost_unexpected(ctx, src, tag, dst))

    def scan_po(self, ctx, src, tag, dst):
        msg = mk_msg(ctx, src, tag, dst)
        assert self.a.scan_cost_posted(msg) == self.b.scan_cost_posted(msg)

    def cancel(self, i):
        if not self.posted:
            return
        req = self.posted[i % len(self.posted)]
        assert self.a.cancel_posted(req) == self.b.cancel_posted(req)

    def check_invariants(self):
        a, b = self.a, self.b
        assert a.total_scans == b.total_scans
        assert a.posted_depth == b.posted_depth
        assert a.unexpected_depth == b.unexpected_depth
        assert a.max_posted_depth == b.max_posted_depth
        assert a.max_unexpected_depth == b.max_unexpected_depth


# Small domains force bucket collisions, FIFO ties and wildcard overlap.
SRC = st.sampled_from([ANY_SOURCE, 0, 1, 2])
TAG = st.sampled_from([ANY_TAG, 0, 1, 2])
CSRC = st.sampled_from([0, 1, 2])   # messages carry concrete values
CTAG = st.sampled_from([0, 1, 2])
CTX = st.sampled_from([0, 1])
DST = st.sampled_from([0, 1])

OP = st.one_of(
    st.tuples(st.just("post"), CTX, SRC, TAG, DST),
    st.tuples(st.just("incoming"), CTX, CSRC, CTAG, DST),
    st.tuples(st.just("probe"), CTX, SRC, TAG, DST),
    st.tuples(st.just("claim"), CTX, SRC, TAG, DST),
    st.tuples(st.just("scan_ux"), CTX, SRC, TAG, DST),
    st.tuples(st.just("scan_po"), CTX, CSRC, CTAG, DST),
    st.tuples(st.just("cancel"), st.integers(0, 1 << 20),
              st.just(0), st.just(0), st.just(0)),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(OP, max_size=120))
def test_indexed_equals_linear_under_random_interleavings(ops):
    pair = EnginePair()
    step = {"post": pair.post, "incoming": pair.incoming,
            "probe": pair.probe, "claim": pair.claim,
            "scan_ux": pair.scan_ux, "scan_po": pair.scan_po}
    for kind, *params in ops:
        if kind == "cancel":
            pair.cancel(params[0])
        else:
            step[kind](*params)
        pair.check_invariants()


def test_long_seeded_interleaving():
    """A deep deterministic run (beyond Hypothesis example sizes) that
    cycles the queues enough to hit tombstone compaction repeatedly."""
    rng = np.random.default_rng(1234)
    pair = EnginePair()
    for _ in range(4000):
        op = rng.integers(0, 7)
        ctx = int(rng.integers(0, 2))
        dst = int(rng.integers(0, 2))
        src = int(rng.integers(-1, 3))
        tag = int(rng.integers(-1, 3))
        if op <= 1:
            pair.post(ctx, src, tag, dst)
        elif op <= 3:
            pair.incoming(ctx, max(src, 0), max(tag, 0), dst)
        elif op == 4:
            pair.claim(ctx, src, tag, dst)
        elif op == 5:
            pair.probe(ctx, src, tag, dst)
        else:
            pair.cancel(int(rng.integers(0, 1 << 20)))
    pair.check_invariants()


def test_cancel_under_load_forces_compaction():
    """Cancel storms on a deep queue: dead records must be compacted away
    and survivors must still match with the linear engine's scan counts."""
    pair = EnginePair()
    for i in range(400):
        pair.post(0, i % 3, i % 2, 0)
    # Cancel 300 scattered receives -> dead (300) > live (100) + 64.
    for i in range(400):
        if i % 4 != 3:
            assert pair.a.cancel_posted(pair.posted[i])
            assert pair.b.cancel_posted(pair.posted[i])
    assert pair.a._po_dead < 64 + pair.a.posted_depth  # compaction ran
    pair.check_invariants()
    # Survivors still match FIFO with identical analytic scan counts.
    for i in range(100):
        pair.incoming(0, i % 3, i % 2, 0)
        pair.check_invariants()
    # Double-cancel and cancel-after-match report False on both engines.
    for req in pair.posted:
        assert pair.a.cancel_posted(req) == pair.b.cancel_posted(req)
    pair.check_invariants()


def test_wildcard_fifo_ties_across_buckets():
    """Wildcard and concrete receives interleaved: the earliest-seq winner
    must be chosen across *different* buckets."""
    pair = EnginePair()
    pair.post(0, ANY_SOURCE, ANY_TAG, 0)
    pair.post(0, 1, ANY_TAG, 0)
    pair.post(0, ANY_SOURCE, 1, 0)
    pair.post(0, 1, 1, 0)
    for _ in range(4):
        pair.incoming(0, 1, 1, 0)
        pair.check_invariants()
    assert pair.a.posted_depth == 0


def test_unexpected_wildcard_index_built_lazily():
    eng = MatchingEngine()
    for tag in range(8):
        eng.incoming(mk_msg(0, 0, tag, 0))
    assert not eng._ux_wild
    msg, scanned = eng.probe(0, ANY_SOURCE, ANY_TAG, 0)
    assert eng._ux_wild
    assert msg is not None and scanned == 1
    # Wildcard index stays consistent with later arrivals and claims.
    eng.incoming(mk_msg(0, 2, 99, 0))
    got, scanned = eng.claim_unexpected(0, 2, ANY_TAG, 0)
    assert got is not None and got.tag == 99 and scanned == 9


def test_golden_results_file_identical_with_linear_engine(monkeypatch):
    """Regenerate the committed Fig 1(a) table with the reference linear
    engine substituted into the VCI layer: every simulated rate — hence
    the rendered results file — must be byte-identical to what the
    indexed engine produced (``benchmarks/results/fig1a_message_rate.txt``
    is committed from the indexed run)."""
    import pathlib

    import repro.mpi.vci as vci
    from repro.bench import MsgRateConfig, Table, run_msgrate

    monkeypatch.setattr(vci, "MatchingEngine", LinearMatchingEngine)

    from repro.netsim import NetworkConfig

    cores_list = (1, 2, 4, 8, 16, 32, 64)
    modes = ("everywhere", "threads-original", "threads-tags",
             "threads-comms", "threads-endpoints")
    table = Table("Fig 1(a): aggregate message rate (M msg/s) vs cores",
                  ["cores"] + list(modes),
                  widths=[6] + [19] * len(modes))
    rates = {}
    for mode in modes:
        for cores in cores_list:
            r = run_msgrate(MsgRateConfig(mode=mode, cores=cores,
                                          msgs_per_core=64),
                            net=NetworkConfig.omnipath())
            rates[(mode, cores)] = r.rate
    for cores in cores_list:
        table.add(cores, *[f"{rates[(m, cores)] / 1e6:.2f}" for m in modes])

    golden = pathlib.Path(__file__).resolve().parent.parent \
        / "benchmarks" / "results" / "fig1a_message_rate.txt"
    # write_results() terminates the file with a newline.
    assert table.render() + "\n" == golden.read_text()


def test_total_scans_identical_between_engines(monkeypatch):
    """The aggregate O(n) matching-work metric must not depend on the
    engine implementation (it is *modelled* cost, not host cost), and
    neither may the simulated completion time."""
    import repro.mpi.vci as vci
    from repro.netsim import NetworkConfig
    from repro.runtime import World

    from tests.helpers import run_ranks

    def traffic(engine_cls):
        monkeypatch.setattr(vci, "MatchingEngine", engine_cls)
        world = World(cluster=ClusterSpec(nodes=2, network=NetworkConfig()),
                      max_vcis_per_proc=1, seed=7)

        def sender(proc):
            for k in range(24):
                yield from proc.comm_world.Send(
                    np.full(4, float(k)), dest=1, tag=k % 5)
            for k in range(3):
                yield from proc.comm_world.Send(
                    np.full(4, 0.0), dest=1, tag=100 + k)

        def receiver(proc):
            yield proc.compute(200e-6)  # pile up unexpected messages
            buf = np.zeros(4)
            # Drain deepest tags first so concrete receives scan far into
            # the unexpected queue; alternate ANY_SOURCE for wildcard paths.
            for tag in (4, 3, 2, 1, 0):
                for j in range(4 if tag == 4 else 5):
                    src = ANY_SOURCE if j % 2 else 0
                    yield from proc.comm_world.Recv(buf, source=src, tag=tag)
            for _ in range(3):  # pure-wildcard tail
                yield from proc.comm_world.Recv(buf, source=ANY_SOURCE,
                                                tag=ANY_TAG)

        run_ranks(world, sender, receiver)
        scans = sum(v.engine.total_scans
                    for p in world.procs
                    for v in p.lib.vci_pool.active_vcis)
        return scans, world.sim.now

    scans_a, now_a = traffic(MatchingEngine)
    scans_b, now_b = traffic(LinearMatchingEngine)
    assert scans_a == scans_b > 0
    assert repr(now_a) == repr(now_b)
