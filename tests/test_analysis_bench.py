"""Tests for the analysis package (Table I, usability) and the bench
utilities (msgrate, reporting)."""

import os

import pytest

from repro.analysis import (
    MECHANISM_NAMES,
    OPERATIONS,
    PATTERNS,
    render_table,
    render_usability,
    scope_matrix,
    stencil_usability,
)
from repro.bench import MODES, MsgRateConfig, Table, run_msgrate, write_results
from repro.errors import MpiUsageError
from repro.mapping import STENCIL_2D_5PT, STENCIL_2D_9PT, StencilGeometry


# ---------------------------------------------------------------- scope

def test_scope_matrix_complete():
    m = scope_matrix()
    for row in OPERATIONS + PATTERNS:
        for mech in MECHANISM_NAMES:
            assert (row, mech) in m, (row, mech)


def test_scope_matrix_lessons_encoded():
    m = scope_matrix()
    # Lesson 15: partitioned can't do wildcards or dynamic patterns.
    assert not m[("wildcard-polling", "partitioned")].supported
    assert not m[("irregular-dynamic", "partitioned")].supported
    # Lesson 18: existing collectives demand user-side work.
    assert m[("collective", "existing")].user_side_work
    # Endpoints support everything without user-side work.
    for row in OPERATIONS + PATTERNS:
        cap = m[(row, "endpoints")]
        assert cap.supported and not cap.user_side_work


def test_scope_render_mentions_tbd():
    text = render_table()
    assert "TBD" in text
    assert "NO" in text
    assert "endpoints" in text


def test_scope_render_subset():
    text = render_table(rows=("rma",))
    assert "rma" in text and "collective" not in text


# ---------------------------------------------------------------- usability

def test_usability_reports_ranked_as_paper_argues():
    geom = StencilGeometry((3, 3), (3, 3), STENCIL_2D_5PT)
    reports = stencil_usability(geom)
    # Communicators need by far the most setup objects (Lesson 3).
    assert reports["communicators"].setup_calls \
        > 5 * reports["endpoints"].setup_calls
    # Only the tags mechanism requires implementation-specific hints
    # (Lesson 8's portability hazard).
    assert reports["tags"].implementation_specific_hints > 0
    for name in ("original", "communicators", "endpoints", "partitioned"):
        assert reports[name].implementation_specific_hints == 0
    # Only communicators require mirroring math (Lesson 1).
    assert reports["communicators"].needs_mirroring_logic
    assert not reports["endpoints"].needs_mirroring_logic
    # Partitioned introduces the most new concepts and extra sync steps
    # (Lesson 14).
    assert reports["partitioned"].new_concepts \
        > reports["endpoints"].new_concepts
    assert reports["partitioned"].extra_sync_steps > 0


def test_usability_skips_partitioned_for_diagonal_stencils():
    geom = StencilGeometry((2, 2), (3, 3), STENCIL_2D_9PT)
    reports = stencil_usability(geom)
    assert "partitioned" not in reports  # Lesson 15
    assert "endpoints" in reports


def test_usability_render_contains_all_rows():
    geom = StencilGeometry((2, 2), (2, 2), STENCIL_2D_5PT)
    text = render_usability(stencil_usability(geom))
    for name in ("original", "communicators", "tags", "endpoints",
                 "partitioned"):
        assert name in text


# ---------------------------------------------------------------- bench

def test_msgrate_modes_validated():
    with pytest.raises(MpiUsageError):
        MsgRateConfig(mode="warp-drive")
    with pytest.raises(MpiUsageError):
        MsgRateConfig(cores=0)
    assert "everywhere" in MODES


def test_msgrate_rate_positive_and_deterministic():
    cfg = MsgRateConfig(mode="threads-endpoints", cores=4, msgs_per_core=16)
    a = run_msgrate(cfg)
    b = run_msgrate(cfg)
    assert a.rate > 0
    assert a.rate == b.rate
    assert a.messages == 4 * 16


def test_msgrate_everywhere_scales():
    r1 = run_msgrate(MsgRateConfig(mode="everywhere", cores=1,
                                   msgs_per_core=32))
    r4 = run_msgrate(MsgRateConfig(mode="everywhere", cores=4,
                                   msgs_per_core=32))
    assert r4.rate > 3 * r1.rate


def test_table_rendering_and_validation():
    t = Table("demo", ["a", "b"], widths=[4, 6])
    t.add(1, 2.5)
    t.add("x", 0.125)
    text = t.render()
    assert "demo" in text and "2.5" in text and "0.125" in text
    with pytest.raises(ValueError):
        t.add(1)  # wrong arity


def test_write_results_creates_file(tmp_path):
    path = write_results("unit_test_table", "hello", directory=str(tmp_path))
    assert os.path.exists(path)
    with open(path) as fh:
        assert fh.read().strip() == "hello"


# ---------------------------------------------------------------- sweep

def test_sweep_points_cartesian():
    from repro.bench import Sweep
    s = Sweep("demo", {"a": [1, 2], "b": ["x", "y", "z"]})
    assert len(s.points) == 6
    assert {"a": 2, "b": "y"} in s.points


def test_sweep_run_and_render():
    from repro.bench import Sweep
    s = Sweep("demo", {"n": [1, 2, 3]})
    rows = s.run(lambda n: {"square": n * n})
    assert [r.outputs["square"] for r in rows] == [1, 4, 9]
    text = s.to_table(rows)
    assert "square" in text and "9" in text


def test_sweep_csv(tmp_path):
    import csv as _csv
    from repro.bench import Sweep
    s = Sweep("demo", {"n": [1, 2]})
    rows = s.run(lambda n: {"double": 2 * n})
    path = s.to_csv(rows, str(tmp_path / "out.csv"))
    with open(path) as fh:
        got = list(_csv.DictReader(fh))
    assert got[1] == {"n": "2", "double": "4"}


def test_sweep_pivot():
    from repro.bench import Sweep
    s = Sweep("demo", {"mode": ["a", "b"], "cores": [1, 2]})
    rows = s.run(lambda mode, cores: {"v": f"{mode}{cores}"})
    text = s.pivot(rows, index="mode", column="cores", value="v").render()
    assert "a1" in text and "b2" in text


def test_sweep_validation():
    from repro.bench import Sweep
    with pytest.raises(ValueError):
        Sweep("demo", {})
    with pytest.raises(ValueError):
        Sweep("demo", {"a": []})
    s = Sweep("demo", {"a": [1]})
    with pytest.raises(ValueError):
        s.run(lambda a: {"a": 2})  # output collides with param
    with pytest.raises(ValueError):
        s.pivot([], index="a", column="nope", value="v")


# ------------------------------------------------------------ contention

def _run_msgrate_world(mode, cores=4):
    """Run a small message-rate experiment and return its world."""
    import numpy as np
    from repro.mpi.request import waitall
    from repro.runtime import World

    world = World(num_nodes=2, procs_per_node=1, threads_per_proc=cores,
                  max_vcis_per_proc=1 if mode == "original" else 16)

    def node(proc):
        from repro.mpi.endpoints import comm_create_endpoints
        if mode == "endpoints":
            comms = yield from comm_create_endpoints(proc.comm_world, cores)
        else:
            comms = [proc.comm_world] * cores

        def t(tid):
            comm = comms[tid]
            peer = (1 - proc.rank) if mode != "endpoints" \
                else ((comm.rank + cores) % (2 * cores))
            buf = np.zeros(8)
            for k in range(12):
                if proc.rank == 0:
                    req = yield from comm.Isend(buf, peer, tag=tid)
                else:
                    req = yield from comm.Irecv(buf, peer, tag=tid)
                yield from req.wait()

        tasks = [proc.spawn(t(tid)) for tid in range(cores)]
        yield proc.sim.all_of(tasks)

    tasks = [world.procs[i].spawn(node(world.procs[i])) for i in range(2)]
    world.run_all(tasks, max_steps=None)
    return world


def test_contention_report_shapes():
    from repro.analysis import collect
    world = _run_msgrate_world("original")
    report = collect(world)
    assert report.active_vcis >= 1
    assert len(report.nodes) == 2
    assert report.total_match_scans > 0
    # everything funnels through one channel
    assert report.channel_spread() > 0.45
    text = report.render()
    assert "lockwait" in text and "node 0" in text


def test_contention_endpoints_spread_channels():
    from repro.analysis import collect
    r_orig = collect(_run_msgrate_world("original"))
    r_ep = collect(_run_msgrate_world("endpoints"))
    # endpoints spread traffic over many channels; original does not
    assert r_ep.active_vcis > r_orig.active_vcis
    assert r_ep.channel_spread() < r_orig.channel_spread()
    # and the original mode shows contended lock acquisitions
    assert r_orig.total_contended_acquisitions \
        >= r_ep.total_contended_acquisitions


def test_contention_busiest_vci_and_empty():
    from repro.analysis import ContentionReport, collect
    with pytest.raises(ValueError):
        _ = ContentionReport().busiest_vci
    world = _run_msgrate_world("original")
    report = collect(world)
    b = report.busiest_vci
    assert b.sends + b.recvs > 0
