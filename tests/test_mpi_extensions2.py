"""Tests for waitany/testany, nonblocking collectives, and vector
datatypes."""

import numpy as np
import pytest

from repro.errors import MpiUsageError
from repro.mpi.datatypes import DOUBLE, INT, VectorType
from repro.mpi.request import waitall, waitany
from repro.mpi.request import testany as mpi_testany
from repro.runtime import World

from tests.helpers import run_ranks, run_same


# ------------------------------------------------------------ waitany

def test_waitany_returns_first_completion(world2):
    def sender(proc):
        yield proc.compute(5e-6)
        yield from proc.comm_world.Send(np.full(1, 2.0), dest=1, tag=2)
        yield proc.compute(20e-6)
        yield from proc.comm_world.Send(np.full(1, 1.0), dest=1, tag=1)

    def receiver(proc):
        comm = proc.comm_world
        b1, b2 = np.zeros(1), np.zeros(1)
        r1 = yield from comm.Irecv(b1, 0, tag=1)
        r2 = yield from comm.Irecv(b2, 0, tag=2)
        idx, status = yield from waitany([r1, r2])
        assert idx == 1 and status.tag == 2 and b2[0] == 2.0
        idx, status = yield from waitany([r1, r2])
        assert idx == 1  # already complete: lowest complete index wins
        yield from r1.wait()

    run_ranks(world2, sender, receiver)


def test_waitany_empty_rejected():
    with pytest.raises(MpiUsageError):
        # generator raises at first next()
        next(waitany([]))


def test_testany(world2):
    def sender(proc):
        yield from proc.comm_world.Send(np.zeros(1), dest=1, tag=0)

    def receiver(proc):
        buf = np.zeros(1)
        req = yield from proc.comm_world.Irecv(buf, 0, tag=0)
        # may or may not be done yet; poll until it is
        while mpi_testany([req]) is None:
            yield proc.compute(1e-6)
        idx, status = mpi_testany([req])
        assert idx == 0 and status.source == 0

    run_ranks(world2, sender, receiver)


# ------------------------------------------------------------ icoll

def test_iallreduce_overlaps_compute():
    world = World(num_nodes=4, procs_per_node=1)
    spans = {}

    def worker(proc):
        out = np.zeros(1 << 12)
        t0 = proc.sim.now
        req = yield from proc.comm_world.Iallreduce(
            np.full(1 << 12, 1.0), out)
        issue_time = proc.sim.now - t0
        yield proc.compute(50e-6)       # overlapped work
        yield from req.wait()
        spans[proc.rank] = (issue_time, proc.sim.now - t0)
        assert np.allclose(out, 4.0)

    run_same(world, worker)
    for issue, total in spans.values():
        assert issue < 1e-6          # the call returns immediately
        # total is dominated by the overlapped compute, not issue+coll
        assert total < 80e-6


def test_ibarrier_and_ibcast(world4):
    def worker(proc):
        comm = proc.comm_world
        breq = yield from comm.Ibarrier()
        yield from breq.wait()
        buf = np.full(4, 9.0) if proc.rank == 2 else np.zeros(4)
        req = yield from comm.Ibcast(buf, root=2)
        yield from req.wait()
        assert np.allclose(buf, 9.0)

    run_same(world4, worker)


def test_icoll_serial_rule_enforced(world2):
    def worker(proc):
        comm = proc.comm_world
        req = yield from comm.Iallreduce(np.zeros(1 << 14), np.zeros(1 << 14))
        with pytest.raises(MpiUsageError, match="serially"):
            yield from comm.Iallreduce(np.zeros(4), np.zeros(4))
        yield from req.wait()
        # after completion a new collective is fine
        out = np.zeros(2)
        yield from comm.Allreduce(np.ones(2), out)
        assert np.allclose(out, 2.0)

    run_same(world2, worker)


# ------------------------------------------------------------ vector type

def test_vector_pack_unpack_roundtrip():
    v = VectorType(count=4, blocklength=3, stride=5)
    buf = np.arange(20.0)
    packed = v.pack(buf)
    assert packed.size == v.elements == 12
    out = np.full(20, -1.0)
    v.unpack(out, packed)
    for b in range(4):
        assert np.allclose(out[b * 5:b * 5 + 3], buf[b * 5:b * 5 + 3])
        assert np.allclose(out[b * 5 + 3:b * 5 + 5], -1.0)


def test_vector_column_of_matrix():
    """The canonical use: a column of a row-major matrix."""
    m = np.arange(30.0).reshape(5, 6)
    col = VectorType(count=5, blocklength=1, stride=6)
    assert np.allclose(col.pack(m, offset=2), m[:, 2])


def test_vector_offset_and_extent():
    v = VectorType(count=2, blocklength=2, stride=4)
    assert v.extent == 6
    buf = np.arange(10.0)
    assert np.allclose(v.pack(buf, offset=3), [3, 4, 7, 8])
    with pytest.raises(MpiUsageError):
        v.pack(buf, offset=5)   # extent 6 from 5 exceeds 10


def test_vector_validation():
    with pytest.raises(MpiUsageError):
        VectorType(count=2, blocklength=3, stride=2)  # overlapping
    with pytest.raises(MpiUsageError):
        VectorType(count=-1, blocklength=1, stride=1)
    v = VectorType(count=2, blocklength=2, stride=2)  # contiguous OK
    assert v.extent == 4


def test_vector_zero_count():
    v = VectorType(count=0, blocklength=3, stride=4)
    assert v.extent == 0 and v.elements == 0
    assert v.pack(np.arange(4.0)).size == 0


def test_vector_unpack_size_checked():
    v = VectorType(count=2, blocklength=2, stride=3)
    with pytest.raises(MpiUsageError):
        v.unpack(np.zeros(8), np.zeros(3))


def test_vector_wire_size_uses_base():
    v = VectorType(count=2, blocklength=4, stride=4, base=INT)
    assert v.size == 8 * 4
    assert VectorType(count=2, blocklength=4, stride=4).size == 8 * 8


def test_vector_end_to_end_column_exchange(world2):
    """Send a matrix column with VectorType through the simulated MPI."""
    m = np.arange(24.0).reshape(4, 6)
    col = VectorType(count=4, blocklength=1, stride=6)

    def sender(proc):
        yield from proc.comm_world.Send(col.pack(m, offset=3), dest=1, tag=0)

    def receiver(proc):
        out = np.zeros((4, 6))
        strip = np.zeros(4)
        yield from proc.comm_world.Recv(strip, source=0, tag=0)
        col.unpack(out, strip, offset=3)
        assert np.allclose(out[:, 3], m[:, 3])

    run_ranks(world2, sender, receiver)
