"""Collective correctness tests across sizes (repro.mpi.coll)."""

import numpy as np
import pytest

from repro.errors import MpiUsageError
from repro.mpi.coll import MAX, MIN, PROD, SUM, ThreadTeamBcast, ThreadTeamReduce
from repro.runtime import World

from tests.helpers import run_same


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8])
def test_allreduce_sum_various_sizes(n):
    world = World(num_nodes=n, procs_per_node=1)

    def worker(proc):
        send = np.arange(6, dtype=np.float64) + proc.rank
        recv = np.zeros(6)
        yield from proc.comm_world.Allreduce(send, recv)
        expected = n * np.arange(6) + n * (n - 1) / 2
        assert np.allclose(recv, expected), (proc.rank, recv, expected)

    run_same(world, worker)


@pytest.mark.parametrize("op,expected", [
    (MAX, 3.0), (MIN, 0.0), (SUM, 6.0), (PROD, 0.0)])
def test_allreduce_ops(op, expected):
    world = World(num_nodes=4, procs_per_node=1)

    def worker(proc):
        recv = np.zeros(2)
        yield from proc.comm_world.Allreduce(
            np.full(2, float(proc.rank)), recv, op=op)
        assert np.allclose(recv, expected)

    run_same(world, worker)


@pytest.mark.parametrize("n,root", [(2, 0), (5, 2), (8, 7), (3, 1)])
def test_bcast_roots_and_sizes(n, root):
    world = World(num_nodes=n, procs_per_node=1)

    def worker(proc):
        buf = np.full(5, 42.0) if proc.rank == root else np.zeros(5)
        yield from proc.comm_world.Bcast(buf, root=root)
        assert np.allclose(buf, 42.0)

    run_same(world, worker)


@pytest.mark.parametrize("n,root", [(4, 0), (5, 3), (6, 5)])
def test_reduce(n, root):
    world = World(num_nodes=n, procs_per_node=1)

    def worker(proc):
        recv = np.zeros(3) if proc.rank == root else None
        yield from proc.comm_world.Reduce(
            np.full(3, float(proc.rank + 1)), recv, root=root)
        if proc.rank == root:
            assert np.allclose(recv, n * (n + 1) / 2)

    run_same(world, worker)


def test_reduce_root_needs_buffer():
    world = World(num_nodes=2, procs_per_node=1)

    def worker(proc):
        if proc.rank == 0:
            with pytest.raises(MpiUsageError):
                yield from proc.comm_world.Reduce(np.zeros(2), None, root=0)
        else:
            yield from proc.comm_world.Reduce(np.zeros(2), None, root=0)

    # Rank 1's send may dangle after rank 0 errors; just run the tasks.
    tasks = [world.procs[i].spawn(worker(world.procs[i])) for i in range(2)]
    world.run(max_steps=100000)
    assert tasks[0].triggered


@pytest.mark.parametrize("n", [2, 3, 5, 8])
def test_barrier_synchronizes(n):
    world = World(num_nodes=n, procs_per_node=1)
    release = {}

    def worker(proc):
        yield proc.compute(proc.rank * 1e-3)  # staggered arrival
        yield from proc.comm_world.Barrier()
        release[proc.rank] = proc.sim.now

    run_same(world, worker)
    slowest_arrival = (n - 1) * 1e-3
    assert all(t >= slowest_arrival for t in release.values())


@pytest.mark.parametrize("n", [2, 4, 5])
def test_allgather(n):
    world = World(num_nodes=n, procs_per_node=1)

    def worker(proc):
        recv = np.zeros(3 * n)
        yield from proc.comm_world.Allgather(
            np.full(3, float(proc.rank)), recv)
        assert np.allclose(recv, np.repeat(np.arange(n), 3))

    run_same(world, worker)


@pytest.mark.parametrize("n", [2, 4, 7])
def test_alltoall(n):
    world = World(num_nodes=n, procs_per_node=1)

    def worker(proc):
        send = np.array([proc.rank * 100 + j for j in range(n)],
                        dtype=np.float64)
        recv = np.zeros(n)
        yield from proc.comm_world.Alltoall(send, recv)
        assert np.allclose(recv, np.arange(n) * 100 + proc.rank)

    run_same(world, worker)


def test_alltoall_rejects_ragged_buffers():
    world = World(num_nodes=3, procs_per_node=1)

    def worker(proc):
        with pytest.raises(MpiUsageError):
            yield from proc.comm_world.Alltoall(np.zeros(4), np.zeros(4))
        return True
        yield

    tasks = [world.procs[i].spawn(worker(world.procs[i])) for i in range(3)]
    assert world.run_all(tasks) == [True] * 3


def test_bcast_bad_root_rejected():
    world = World(num_nodes=2, procs_per_node=1)

    def worker(proc):
        with pytest.raises(MpiUsageError):
            yield from proc.comm_world.Bcast(np.zeros(1), root=5)
        return True
        yield

    tasks = [world.procs[i].spawn(worker(world.procs[i])) for i in range(2)]
    assert world.run_all(tasks) == [True, True]


def test_collective_takes_time_proportional_to_size():
    world = World(num_nodes=4, procs_per_node=1)
    times = {}

    def worker(proc):
        small = np.zeros(8)
        t0 = proc.sim.now
        yield from proc.comm_world.Allreduce(small, small.copy())
        t_small = proc.sim.now - t0
        big = np.zeros(1 << 18)
        t0 = proc.sim.now
        yield from proc.comm_world.Allreduce(big, big.copy())
        times[proc.rank] = (t_small, proc.sim.now - t0)

    run_same(world, worker)
    for t_small, t_big in times.values():
        assert t_big > 10 * t_small


# ------------------------------------------------- thread-team helpers

def test_thread_team_reduce():
    world = World(num_nodes=1, procs_per_node=1)
    proc = world.procs[0]
    nthreads = 4
    team = ThreadTeamReduce(proc, nthreads, SUM)
    bufs = [np.full(8, float(tid + 1)) for tid in range(nthreads)]

    def thread(tid):
        yield from team.reduce(tid, bufs[tid])

    tasks = [proc.spawn(thread(t)) for t in range(nthreads)]
    world.run_all(tasks)
    assert np.allclose(bufs[0], 1 + 2 + 3 + 4)


def test_thread_team_reduce_single_thread():
    world = World(num_nodes=1, procs_per_node=1)
    proc = world.procs[0]
    team = ThreadTeamReduce(proc, 1, SUM)
    buf = np.full(4, 5.0)

    def thread():
        yield from team.reduce(0, buf)

    world.run_all([proc.spawn(thread())])
    assert np.allclose(buf, 5.0)


def test_thread_team_bcast_copies():
    world = World(num_nodes=1, procs_per_node=1)
    proc = world.procs[0]
    nthreads = 3
    team = ThreadTeamBcast(proc, nthreads, copy=True)
    bufs = [np.zeros(4) for _ in range(nthreads)]
    bufs[0][:] = 7.0

    def thread(tid):
        yield from team.bcast(tid, bufs[tid])

    world.run_all([proc.spawn(thread(t)) for t in range(nthreads)])
    for b in bufs:
        assert np.allclose(b, 7.0)


def test_thread_team_bcast_nocopy_leaves_buffers():
    world = World(num_nodes=1, procs_per_node=1)
    proc = world.procs[0]
    team = ThreadTeamBcast(proc, 2, copy=False)
    bufs = [np.full(4, 7.0), np.zeros(4)]

    def thread(tid):
        yield from team.bcast(tid, bufs[tid])

    world.run_all([proc.spawn(thread(t)) for t in range(2)])
    assert np.allclose(bufs[1], 0.0)  # read-in-place semantics: no copy


# ------------------------------------------------- ring allreduce

@pytest.mark.parametrize("n,count", [(2, 10), (3, 7), (5, 100), (8, 64)])
def test_ring_allreduce_matches_recursive_doubling(n, count):
    from repro.mpi.coll.algorithms import (
        allreduce_recursive_doubling,
        allreduce_ring,
    )
    results = {}
    for name, algo in (("ring", allreduce_ring),
                       ("rd", allreduce_recursive_doubling)):
        world = World(num_nodes=n, procs_per_node=1)
        outs = {}

        def worker(proc):
            out = np.zeros(count)
            yield from algo(proc.comm_world,
                            np.arange(count, dtype=np.float64) + proc.rank,
                            out, SUM)
            outs[proc.rank] = out

        run_same(world, worker)
        results[name] = outs
    for r in range(n):
        assert np.allclose(results["ring"][r], results["rd"][r])


def test_allreduce_switches_to_ring_for_large_buffers():
    """Beyond the threshold the ring's bandwidth optimality makes large
    allreduces cheaper than recursive doubling on >2 ranks."""
    from repro.mpi.coll.algorithms import (
        allreduce_recursive_doubling,
        allreduce_ring,
    )
    n, count = 8, 1 << 16  # 512 KiB

    def timed(algo):
        world = World(num_nodes=n, procs_per_node=1)

        def worker(proc):
            out = np.zeros(count)
            yield from algo(proc.comm_world, np.ones(count), out, SUM)
            assert np.allclose(out, n)

        run_same(world, worker)
        return world.now

    assert timed(allreduce_ring) < timed(allreduce_recursive_doubling)


def test_small_allreduce_stays_recursive_doubling():
    """Below the threshold latency wins: Allreduce must not pay the ring's
    2(n-1) steps for tiny payloads."""
    world = World(num_nodes=8, procs_per_node=1)

    def worker(proc):
        out = np.zeros(4)
        yield from proc.comm_world.Allreduce(np.ones(4), out)
        assert np.allclose(out, 8.0)

    run_same(world, worker)
    small_time = world.now

    world2 = World(num_nodes=8, procs_per_node=1)

    def worker2(proc):
        from repro.mpi.coll.algorithms import allreduce_ring
        out = np.zeros(4)
        yield from allreduce_ring(proc.comm_world, np.ones(4), out, SUM)

    run_same(world2, worker2)
    assert small_time < world2.now
