"""Unit tests for FIFOServer (repro.sim.resources)."""

import pytest

from repro.sim import FIFOServer, Simulator


def test_single_request_completes_after_service_time():
    sim = Simulator()
    srv = FIFOServer(sim, service_time=0.25)
    done = []

    def task():
        yield srv.submit()
        done.append(sim.now)

    sim.spawn(task())
    sim.run()
    assert done == [pytest.approx(0.25)]


def test_back_to_back_requests_rate_limited():
    """The core message-rate behaviour: N requests take N*g seconds."""
    sim = Simulator()
    gap = 0.2
    srv = FIFOServer(sim, service_time=gap)
    completions = []

    def burst():
        events = [srv.submit() for _ in range(5)]
        for ev in events:
            yield ev
            completions.append(sim.now)

    sim.spawn(burst())
    sim.run()
    assert completions == pytest.approx([0.2, 0.4, 0.6, 0.8, 1.0])


def test_idle_server_does_not_accumulate_backlog():
    sim = Simulator()
    srv = FIFOServer(sim, service_time=1.0)

    def task():
        yield srv.submit()
        yield sim.timeout(10.0)  # idle gap
        yield srv.submit()

    proc = sim.spawn(task())
    sim.run(until=proc)
    assert sim.now == pytest.approx(12.0)


def test_per_request_service_time_override():
    sim = Simulator()
    srv = FIFOServer(sim, service_time=1.0)

    def task():
        yield srv.submit(0.5)

    proc = sim.spawn(task())
    sim.run(until=proc)
    assert sim.now == pytest.approx(0.5)


def test_negative_service_time_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        FIFOServer(sim, service_time=-1.0)
    srv = FIFOServer(sim)
    with pytest.raises(ValueError):
        srv.submit(-0.5)


def test_occupy_returns_completion_time_without_event():
    sim = Simulator()
    srv = FIFOServer(sim, service_time=0.1)
    assert srv.occupy() == pytest.approx(0.1)
    assert srv.occupy() == pytest.approx(0.2)
    assert srv.backlog == pytest.approx(0.2)


def test_stats_track_utilization_and_queue_delay():
    sim = Simulator()
    srv = FIFOServer(sim, service_time=0.5)

    def burst():
        events = [srv.submit() for _ in range(4)]
        yield events[-1]

    proc = sim.spawn(burst())
    sim.run(until=proc)
    assert srv.stats.requests == 4
    assert srv.stats.busy_time == pytest.approx(2.0)
    # Queue delays: 0, 0.5, 1.0, 1.5.
    assert srv.stats.total_queue_delay == pytest.approx(3.0)
    assert srv.stats.mean_queue_delay == pytest.approx(0.75)
    assert srv.stats.utilization(sim.now) == pytest.approx(1.0)


def test_free_at_tracks_clock():
    sim = Simulator()
    srv = FIFOServer(sim, service_time=1.0)
    assert srv.free_at == 0.0
    srv.occupy()

    def waiter():
        yield sim.timeout(5.0)

    proc = sim.spawn(waiter())
    sim.run(until=proc)
    assert srv.free_at == pytest.approx(5.0)
    assert srv.backlog == 0.0
