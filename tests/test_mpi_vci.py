"""Unit tests for VCIs and VCI-selection policies (repro.mpi.vci)."""

import pytest

from repro.errors import HintViolationError, MpiUsageError
from repro.mpi.info import CommHints, Info, parse_comm_hints
from repro.mpi.matching import ANY_TAG
from repro.mpi.vci import (
    TAG_BITS,
    EndpointVciMap,
    SingleVciMap,
    TagBitsVciMap,
    VciPool,
    mix_hash,
)
from repro.netsim import NetworkConfig, Nic
from repro.sim import Simulator


def make_pool(max_vcis=16, contexts=160):
    sim = Simulator()
    cfg = NetworkConfig().with_contexts(contexts)
    nic = Nic(sim, cfg.nic)
    return VciPool(sim, nic, cfg.cpu, max_vcis=max_vcis)


# ---------------------------------------------------------------- hash

def test_mix_hash_deterministic_and_spread():
    vals = {mix_hash(i) % 8 for i in range(64)}
    assert len(vals) == 8  # hits all buckets over 64 inputs
    assert mix_hash(42) == mix_hash(42)
    assert mix_hash(42) != mix_hash(43)


# ---------------------------------------------------------------- pool

def test_pool_lazily_creates_and_wraps():
    pool = make_pool(max_vcis=4)
    v0 = pool.get(0)
    assert pool.get(0) is v0
    assert pool.get(4) is v0  # wraps modulo max
    assert pool.num_active == 1
    pool.get(3)
    assert pool.num_active == 2


def test_pool_requires_positive_size():
    sim = Simulator()
    nic = Nic(sim, NetworkConfig().nic)
    with pytest.raises(MpiUsageError):
        VciPool(sim, nic, NetworkConfig().cpu, max_vcis=0)


def test_pool_context_hash_stable():
    pool = make_pool(max_vcis=8)
    a = pool.vci_index_for_context(100)
    assert a == pool.vci_index_for_context(100)
    assert 0 <= a < 8


def test_vcis_draw_hardware_contexts_from_nic():
    pool = make_pool(max_vcis=8, contexts=4)
    vcis = [pool.get(i) for i in range(8)]
    # 8 VCIs on 4 contexts: each context shared twice.
    assert vcis[0].hw_context is vcis[4].hw_context
    assert vcis[0].hw_context.sharers == 2


# ---------------------------------------------------------------- single map

def test_single_map_constant():
    m = SingleVciMap(3)
    assert m.send_local(0, 1, 7) == 3
    assert m.send_remote(0, 1, 7) == 3
    assert m.recv_vci(1, 0, 7) == 3
    assert m.recv_vci(1, -1, ANY_TAG) == 3  # wildcards fine on one VCI


# ---------------------------------------------------------------- tag-bits map

def one_to_one_hints(n=4, bits=2):
    return parse_comm_hints(Info({
        "mpi_assert_no_any_tag": "true",
        "mpi_assert_no_any_source": "true",
        "mpich_num_vcis": str(n),
        "mpich_num_tag_bits_vci": str(bits),
        "mpich_place_tag_bits_local_vci": "MSB",
        "mpich_tag_vci_hash_type": "one-to-one",
    }))


def encode_msb(src_tid, dst_tid, app_tag, bits=2):
    return (src_tid << (TAG_BITS - bits)) | (dst_tid << (TAG_BITS - 2 * bits)) \
        | app_tag


def test_one_to_one_msb_extraction():
    m = TagBitsVciMap(one_to_one_hints(), base_index=0, num_pool_vcis=16)
    tag = encode_msb(src_tid=2, dst_tid=3, app_tag=17)
    assert m.src_field(tag) == 2
    assert m.dst_field(tag) == 3
    assert m.send_local(0, 1, tag) == 2
    assert m.send_remote(0, 1, tag) == 3
    assert m.recv_vci(1, 0, tag) == 3


def test_one_to_one_lsb_placement():
    hints = parse_comm_hints(Info({
        "mpi_assert_no_any_tag": "true",
        "mpi_assert_no_any_source": "true",
        "mpich_num_vcis": "4",
        "mpich_num_tag_bits_vci": "2",
        "mpich_place_tag_bits_local_vci": "LSB",
        "mpich_tag_vci_hash_type": "one-to-one",
    }))
    m = TagBitsVciMap(hints, base_index=0, num_pool_vcis=16)
    tag = (3 << 2) | 1  # dst=3, src=1 in LSB layout
    assert m.src_field(tag) == 1
    assert m.dst_field(tag) == 3


def test_one_to_one_consistency_sender_receiver():
    """The sender's remote choice must equal the receiver's recv choice."""
    m = TagBitsVciMap(one_to_one_hints(), base_index=5, num_pool_vcis=64)
    for s in range(4):
        for d in range(4):
            tag = encode_msb(s, d, 9)
            assert m.send_remote(0, 1, tag) == m.recv_vci(1, 0, tag)


def test_hash_map_consistency():
    hints = parse_comm_hints(Info({
        "mpi_assert_no_any_tag": "true",
        "mpi_assert_no_any_source": "true",
        "mpich_num_vcis": "8",
    }))
    m = TagBitsVciMap(hints, base_index=0, num_pool_vcis=64)
    for tag in range(100):
        assert m.send_remote(0, 1, tag) == m.recv_vci(1, 0, tag)
    # hashing spreads across several VCIs
    assert len({m.send_local(0, 1, t) for t in range(100)}) > 4


def test_overtaking_only_send_side():
    hints = parse_comm_hints(Info({
        "mpi_assert_allow_overtaking": "true",
        "mpich_num_vcis": "8",
    }))
    m = TagBitsVciMap(hints, base_index=2, num_pool_vcis=64)
    locals_ = {m.send_local(0, 1, t) for t in range(50)}
    assert len(locals_) > 4  # sender spreads
    assert {m.send_remote(0, 1, t) for t in range(50)} == {2}  # receiver pinned
    assert m.recv_vci(1, 0, ANY_TAG) == 2  # wildcards still legal


def test_recv_any_tag_violates_no_any_tag_assertion():
    m = TagBitsVciMap(one_to_one_hints(), base_index=0, num_pool_vcis=16)
    with pytest.raises(HintViolationError):
        m.recv_vci(1, 0, ANY_TAG)


def test_tag_bits_clamps_to_pool():
    hints = one_to_one_hints(n=64, bits=6)
    m = TagBitsVciMap(hints, base_index=0, num_pool_vcis=8)
    assert m.n == 8


# ---------------------------------------------------------------- endpoint map

def test_endpoint_map_routes_by_target_rank():
    table = [3, 7, 1, 4]  # ep rank -> owner VCI
    m = EndpointVciMap(my_vci=7, ep_vci_table=table)
    assert m.send_local(1, 2, 99) == 7
    assert m.send_remote(1, 2, 99) == 1
    assert m.send_remote(1, 3, 99) == 4
    assert m.recv_vci(1, 0, ANY_TAG) == 7  # wildcards legal (Lesson 11)
    assert m.recv_vci(1, -1, 5) == 7
