"""Unit tests for the matching engine (repro.mpi.matching)."""

import numpy as np
import pytest

from repro.mpi.matching import ANY_SOURCE, ANY_TAG, MatchingEngine, PostedRecv
from repro.mpi.request import Request
from repro.netsim.message import MessageKind, WireMessage
from repro.sim import Simulator


def mk_msg(src_addr=0, dst_addr=1, tag=5, ctx=0, size=0, payload=None):
    return WireMessage(kind=MessageKind.EAGER, src_node=0, dst_node=1,
                       src_rank=src_addr, dst_rank=dst_addr, context_id=ctx,
                       tag=tag, size=size, payload=payload,
                       meta={"src_addr": src_addr, "dst_addr": dst_addr})


def mk_recv(sim, src=0, tag=5, ctx=0, dst_addr=1, count=4):
    return PostedRecv(req=Request(sim, "recv"), buf=np.zeros(count),
                      count=count, context_id=ctx, source=src, tag=tag,
                      dst_addr=dst_addr)


@pytest.fixture
def sim():
    return Simulator()


def test_posted_then_incoming_matches(sim):
    eng = MatchingEngine()
    entry = mk_recv(sim)
    found, scanned = eng.post_recv(entry)
    assert found is None and scanned == 0
    matched, scanned = eng.incoming(mk_msg())
    assert matched is entry and scanned == 1
    assert eng.posted_depth == 0


def test_incoming_then_posted_matches(sim):
    eng = MatchingEngine()
    msg = mk_msg()
    matched, _ = eng.incoming(msg)
    assert matched is None
    assert eng.unexpected_depth == 1
    found, scanned = eng.post_recv(mk_recv(sim))
    assert found is msg and scanned == 1
    assert eng.unexpected_depth == 0


def test_tag_mismatch_does_not_match(sim):
    eng = MatchingEngine()
    eng.post_recv(mk_recv(sim, tag=7))
    matched, _ = eng.incoming(mk_msg(tag=8))
    assert matched is None
    assert eng.posted_depth == 1 and eng.unexpected_depth == 1


def test_source_mismatch_does_not_match(sim):
    eng = MatchingEngine()
    eng.post_recv(mk_recv(sim, src=3))
    matched, _ = eng.incoming(mk_msg(src_addr=4))
    assert matched is None


def test_context_mismatch_does_not_match(sim):
    eng = MatchingEngine()
    eng.post_recv(mk_recv(sim, ctx=0))
    matched, _ = eng.incoming(mk_msg(ctx=2))
    assert matched is None


def test_dst_addr_separates_endpoints(sim):
    """Two endpoints sharing a VCI must not steal each other's messages."""
    eng = MatchingEngine()
    e1 = mk_recv(sim, dst_addr=1)
    e2 = mk_recv(sim, dst_addr=2)
    eng.post_recv(e1)
    eng.post_recv(e2)
    matched, _ = eng.incoming(mk_msg(dst_addr=2))
    assert matched is e2
    matched, _ = eng.incoming(mk_msg(dst_addr=1))
    assert matched is e1


def test_any_source_wildcard(sim):
    eng = MatchingEngine()
    eng.post_recv(mk_recv(sim, src=ANY_SOURCE))
    matched, _ = eng.incoming(mk_msg(src_addr=42))
    assert matched is not None


def test_any_tag_wildcard(sim):
    eng = MatchingEngine()
    eng.post_recv(mk_recv(sim, tag=ANY_TAG))
    matched, _ = eng.incoming(mk_msg(tag=999))
    assert matched is not None


def test_fifo_nonovertaking_posted_order(sim):
    """Earliest matching posted receive wins (non-overtaking)."""
    eng = MatchingEngine()
    first = mk_recv(sim, src=ANY_SOURCE, tag=ANY_TAG)
    second = mk_recv(sim, src=0, tag=5)
    eng.post_recv(first)
    eng.post_recv(second)
    matched, _ = eng.incoming(mk_msg())
    assert matched is first


def test_fifo_nonovertaking_unexpected_order(sim):
    """Earliest matching unexpected message wins."""
    eng = MatchingEngine()
    m1 = mk_msg(tag=5)
    m2 = mk_msg(tag=5)
    eng.incoming(m1)
    eng.incoming(m2)
    found, _ = eng.post_recv(mk_recv(sim, tag=5))
    assert found is m1
    found, _ = eng.post_recv(mk_recv(sim, tag=5))
    assert found is m2


def test_specific_recv_skips_nonmatching_earlier_unexpected(sim):
    eng = MatchingEngine()
    other = mk_msg(tag=1)
    wanted = mk_msg(tag=2)
    eng.incoming(other)
    eng.incoming(wanted)
    found, scanned = eng.post_recv(mk_recv(sim, tag=2))
    assert found is wanted and scanned == 2
    assert eng.unexpected_depth == 1  # tag=1 still parked


def test_probe_is_nondestructive(sim):
    eng = MatchingEngine()
    eng.incoming(mk_msg(tag=9))
    msg, _ = eng.probe(0, ANY_SOURCE, 9, dst_addr=1)
    assert msg is not None
    assert eng.unexpected_depth == 1
    msg, _ = eng.probe(0, ANY_SOURCE, 10, dst_addr=1)
    assert msg is None


def test_scan_counts_accumulate(sim):
    eng = MatchingEngine()
    for tag in range(5):
        eng.incoming(mk_msg(tag=tag))
    assert eng.total_scans == 0  # nothing posted yet
    eng.post_recv(mk_recv(sim, tag=4))
    assert eng.total_scans == 5


def test_depth_highwater_marks(sim):
    eng = MatchingEngine()
    for tag in range(3):
        eng.post_recv(mk_recv(sim, tag=100 + tag))
    assert eng.max_posted_depth == 3
    for tag in range(4):
        eng.incoming(mk_msg(tag=tag))
    assert eng.max_unexpected_depth == 4


def test_cancel_posted(sim):
    eng = MatchingEngine()
    entry = mk_recv(sim)
    eng.post_recv(entry)
    assert eng.cancel_posted(entry.req)
    assert eng.posted_depth == 0
    assert not eng.cancel_posted(entry.req)
