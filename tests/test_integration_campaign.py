"""End-to-end campaign: the paper's headline claims in one integration
run, cross-checked against each other.

This test is intentionally redundant with the per-experiment benches —
it exists so that a single fast test run demonstrates the reproduction's
core narrative holding *simultaneously* on one build.
"""

import numpy as np

from repro.apps.device import DeviceConfig, run_device
from repro.apps.legion import LegionConfig, run_legion
from repro.apps.nwchem import NwchemConfig, run_nwchem
from repro.apps.stencil import StencilConfig, run_stencil
from repro.apps.vasp import VaspConfig, run_vasp
from repro.bench import MsgRateConfig, run_msgrate
from repro.mapping import (
    communicator_overhead_ratio_3d27,
    communicators_required_3d27,
    min_channels_3d27,
)


def test_campaign_headline_claims():
    # -- Fig 1(a): original flat, endpoints scale ------------------------
    r1 = run_msgrate(MsgRateConfig(mode="threads-original", cores=1,
                                   msgs_per_core=32))
    r8_orig = run_msgrate(MsgRateConfig(mode="threads-original", cores=8,
                                        msgs_per_core=32))
    r8_ep = run_msgrate(MsgRateConfig(mode="threads-endpoints", cores=8,
                                      msgs_per_core=32))
    r8_every = run_msgrate(MsgRateConfig(mode="everywhere", cores=8,
                                         msgs_per_core=32))
    assert r8_orig.rate < 1.5 * r1.rate              # flat
    assert r8_ep.rate > 4 * r8_orig.rate             # parallel wins big
    assert abs(r8_ep.rate / r8_every.rate - 1) < 0.1  # matches everywhere

    # -- Lesson 3: the exact arithmetic ----------------------------------
    assert communicators_required_3d27(4, 4, 4) == 808
    assert min_channels_3d27(4, 4, 4) == 56
    assert round(communicator_overhead_ratio_3d27(4, 4, 4), 1) == 14.4

    # -- Fig 1(b): stencil, data-checked ---------------------------------
    base = dict(proc_grid=(2, 2), thread_grid=(3, 3), pnx=4, pny=4,
                stencil_points=9, iters=3)
    s_orig = run_stencil(StencilConfig(mechanism="original", **base))
    s_ep = run_stencil(StencilConfig(mechanism="endpoints", **base))
    s_tags = run_stencil(StencilConfig(mechanism="tags", **base))
    assert s_orig.correct and s_ep.correct and s_tags.correct
    assert s_orig.halo_time > 1.3 * s_ep.halo_time
    # hints keep up with endpoints (the prior-work quantitative result)
    assert abs(s_tags.halo_time / s_ep.halo_time - 1) < 0.25

    # -- Fig 5: polling-thread penalty with communicators ----------------
    lbase = dict(num_nodes=3, task_threads=8, msgs_per_thread=8)
    l_comm = run_legion(LegionConfig(mechanism="communicators", **lbase))
    l_ep = run_legion(LegionConfig(mechanism="endpoints", **lbase))
    assert l_comm.correct and l_ep.correct
    assert 1.2 < (l_comm.polling_cost_per_event
                  / l_ep.polling_cost_per_event) < 2.5

    # -- Fig 6: RMA atomics -----------------------------------------------
    nbase = dict(num_nodes=3, threads_per_proc=8, tiles_per_proc=8,
                 tile_dim=8, tasks_per_thread=4)
    n_win = run_nwchem(NwchemConfig(mechanism="window", **nbase))
    n_ep = run_nwchem(NwchemConfig(mechanism="endpoints", **nbase))
    assert n_win.correct and n_ep.correct
    assert n_win.wall_time > n_ep.wall_time

    # -- Fig 7 / Lesson 19: collectives ----------------------------------
    vbase = dict(num_nodes=4, threads_per_proc=8, elems=1 << 12, repeats=2)
    v_fun = run_vasp(VaspConfig(mechanism="funneled", **vbase))
    v_exist = run_vasp(VaspConfig(mechanism="existing", **vbase))
    v_ep = run_vasp(VaspConfig(mechanism="endpoints", **vbase))
    assert v_fun.correct and v_exist.correct and v_ep.correct
    assert v_fun.time_per_allreduce > 1.3 * v_exist.time_per_allreduce
    assert v_ep.result_bytes_per_node == 8 * v_exist.result_bytes_per_node

    # -- Lesson 20: device-initiated --------------------------------------
    d_host = run_device(DeviceConfig(mechanism="host-driven", blocks=8,
                                     timesteps=4))
    d_part = run_device(DeviceConfig(mechanism="device-partitioned",
                                     blocks=8, timesteps=4))
    assert d_host.correct and d_part.correct
    assert d_part.time_per_step < d_host.time_per_step
    assert d_part.kernel_launches == 1
