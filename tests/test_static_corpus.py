"""Corpus-level guarantees of the static analyzer: the shipped drivers
analyze clean (zero false positives), the deliberately broken scenario
app is flagged, cross-validation against the dynamic checker scores
perfect precision/recall over the fixture corpus, and the analyzer is a
deterministic pure function that never executes its target."""

import hashlib
import pathlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check import analyze_path, analyze_paths, analyze_source
from repro.check.static_.crossval import (
    DYNAMIC_EXEMPT,
    cross_validate,
    render_crossval,
)

ROOT = pathlib.Path(__file__).parent.parent
FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "analyze"

APP_PACKAGES = ("device", "graph", "legion", "nwchem", "stencil", "vasp")


def corpus_files():
    paths = sorted((ROOT / "src" / "repro" / "apps").rglob("*.py"))
    paths += sorted((ROOT / "src" / "repro" / "bench").glob("*.py"))
    paths += sorted((ROOT / "examples").glob("*.py"))
    return [str(p) for p in paths]


def failing(report):
    return [f for f in report.findings
            if f.severity in ("error", "warning")]


# ------------------------------------------------- zero false positives

@pytest.mark.parametrize("pkg", APP_PACKAGES)
def test_app_driver_analyzes_clean(pkg):
    files = sorted((ROOT / "src" / "repro" / "apps" / pkg).glob("*.py"))
    assert files
    report = analyze_paths([str(p) for p in files])
    assert failing(report) == [], report.render()


def test_whole_corpus_is_clean():
    report = analyze_paths(corpus_files())
    assert report.clean, report.render()
    assert not report.errors


def test_examples_analyze_clean():
    files = sorted((ROOT / "examples").glob("*.py"))
    assert files
    report = analyze_paths([str(p) for p in files])
    assert failing(report) == [], report.render()


# ------------------------------------------------------ true positives

def test_racer_scenario_app_is_flagged():
    """The deliberately broken campaign app carries exactly one defect:
    the CHK101 request race, which the analyzer must see ahead of any
    run as its static twin S301 — and nothing else."""
    report = analyze_path(str(ROOT / "src" / "repro" / "scenarios"
                              / "apps.py"))
    assert report.counts() == {"S301": 1}
    finding = report.by_rule("S301")[0]
    assert "poker" in finding.function


# ------------------------------------------------------------- advisor

def test_advisor_verdicts_match_paper_stories():
    """The advisor reproduces the paper's mechanism guidance: legion's
    wildcard polling blocks tags/per-thread-comms but endpoints work;
    msgrate already asserts hints and uses endpoints."""
    legion = analyze_path(str(ROOT / "src" / "repro" / "apps" / "legion"
                              / "runtime.py"))
    verdict = next(iter(legion.advisor.values()))
    mech = verdict["mechanisms"]
    assert not verdict["wildcard_free"]
    assert mech["tags-with-hints"]["status"] == "blocked"
    assert mech["per-thread-comms"]["status"] == "blocked"
    assert mech["endpoints"]["status"] in ("ok", "in-use")
    assert [f.rule_id for f in legion.findings] == ["S313"]

    msgrate = analyze_path(str(ROOT / "src" / "repro" / "bench"
                               / "msgrate.py"))
    verdict = next(iter(msgrate.advisor.values()))
    mech = verdict["mechanisms"]
    assert verdict["wildcard_free"]
    assert mech["tags-with-hints"]["status"] == "ok"
    assert mech["endpoints"]["status"] == "in-use"


def test_advisor_sees_attribute_held_hinted_comms():
    """Regression: the stencil tags driver asserts the Listing 2 hints
    through ``listing2_info`` and stores the communicator on
    ``self.comm``; the advisor must credit those hints rather than
    advising the driver to add what it already has."""
    stencil = analyze_path(str(ROOT / "src" / "repro" / "apps"
                               / "stencil" / "drivers.py"))
    verdict = next(iter(stencil.advisor.values()))
    tags = verdict["mechanisms"]["tags-with-hints"]
    assert tags["status"] == "ok"
    assert any("self.comm" in reason for reason in tags["reasons"])
    assert not any(f.rule_id == "S315" for f in stencil.findings)


# ----------------------------------------------------- cross-validation

def test_crossval_perfect_precision_and_recall():
    result = cross_validate(fixture_dir=str(FIXTURES))
    table = render_crossval(result)
    assert result["fp"] == 0, table
    assert result["fn"] == 0, table
    assert result["precision"] == 1.0
    assert result["recall"] == 1.0
    # Every dynamic rule class is exercised by some fixture...
    fired = {chk for row in result["rows"] for chk in row["dynamic"]}
    assert fired == {f"CHK1{i:02d}" for i in range(1, 12)}
    # ...and the shipped drivers are clean under both engines.
    assert result["drivers"] and all(r["clean"] for r in result["drivers"])
    # The static-only rules are covered by the non-executable fixtures.
    static_only = {rid for row in result["static_only"]
                   for rid in row["static"]}
    assert {"S311", "S312"} <= static_only
    assert set(DYNAMIC_EXEMPT) == {row["file"]
                                   for row in result["static_only"]}


def test_crossval_report_is_json_ready():
    import json
    result = cross_validate(fixture_dir=str(FIXTURES), drivers=False)
    payload = json.loads(json.dumps(result))
    assert payload["schema"] == 1 and payload["kind"] == "crossval"
    assert {"tp", "fp", "fn", "precision", "recall"} <= set(payload)


# ------------------------------------- purity / determinism (hypothesis)

_FIXTURE_SOURCES = sorted(p.name for p in FIXTURES.glob("*.py"))

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@SETTINGS
@given(st.sampled_from(_FIXTURE_SOURCES))
def test_analysis_is_deterministic_and_pure(name):
    """Same source, same report — and the target file is untouched."""
    path = FIXTURES / name
    before = hashlib.sha256(path.read_bytes()).hexdigest()
    first = analyze_path(str(path)).to_json()
    second = analyze_path(str(path)).to_json()
    assert first == second
    assert hashlib.sha256(path.read_bytes()).hexdigest() == before


@SETTINGS
@given(st.text(alphabet=st.characters(codec="ascii"), max_size=400))
def test_arbitrary_text_never_crashes_the_analyzer(source):
    """Garbage in, E999 (or a report) out — never an exception."""
    report = analyze_source(source, path="fuzz.py")
    assert report.to_json()


def test_analyzer_never_executes_the_target(tmp_path):
    """A program whose import has side effects is analyzed untouched."""
    marker = tmp_path / "executed.marker"
    prog = tmp_path / "prog.py"
    prog.write_text(
        "import pathlib\n"
        f"pathlib.Path({str(marker)!r}).write_text('ran')\n"
        "raise SystemExit(99)\n")
    report = analyze_path(str(prog))
    assert report.to_dict()["kind"] == "static"
    assert not marker.exists()
