"""Per-rule tests for the static analyzer: every S3xx rule fires on its
bad fixture and stays silent on the ok twin, reports/SARIF serialize,
and the unified rule registry is consistent across the three families."""

import json
import pathlib

import pytest

from repro.check import (
    CHK_EQUIVALENT,
    DYNAMIC_RULES,
    STATIC_FOR_DYNAMIC,
    STATIC_RULES,
    analyze_path,
    analyze_source,
    rule,
    to_sarif,
)
from repro.check.rules import render_catalog, rules_catalog
from repro.cli import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "analyze"

#: bad fixture -> the exact failing (error/warning) rule set it triggers.
BAD_EXPECT = {
    "bad_request_race.py": {"S301"},
    "bad_channel_collision.py": {"S302"},
    "bad_lock_order.py": {"S303"},
    "bad_hint_violation.py": {"S304"},
    "bad_partitioned_inactive.py": {"S305"},
    "bad_partitioned_double_ready.py": {"S305"},
    "bad_rma_epoch.py": {"S306"},
    "bad_rma_race.py": {"S307"},
    "bad_request_leak.py": {"S308"},
    "bad_window_leak.py": {"S309"},
    "bad_collective_overlap.py": {"S310"},
    "bad_rank_collective.py": {"S310"},
    "bad_double_wait.py": {"S311"},
    "bad_cancel_after_complete.py": {"S312"},
}

OK_FIXTURES = sorted(p.name for p in FIXTURES.glob("ok_*.py"))


def failing_rules(report):
    return {f.rule_id for f in report.findings
            if f.severity in ("error", "warning")}


@pytest.mark.parametrize("name", sorted(BAD_EXPECT))
def test_bad_fixture_fires_exactly_its_rule(name):
    report = analyze_path(str(FIXTURES / name))
    assert failing_rules(report) == BAD_EXPECT[name]
    assert not report.clean


@pytest.mark.parametrize("name", OK_FIXTURES)
def test_ok_fixture_is_clean(name):
    report = analyze_path(str(FIXTURES / name))
    assert failing_rules(report) == set()
    assert report.clean  # advice findings never fail a report


def test_rma_epoch_reports_both_violations():
    """Double Lock and stray Unlock are two findings (CHK107 parity)."""
    report = analyze_path(str(FIXTURES / "bad_rma_epoch.py"))
    assert report.counts() == {"S306": 2}


def test_advice_wildcard_fixture():
    report = analyze_path(str(FIXTURES / "advice_wildcard.py"))
    assert report.clean
    assert [f.rule_id for f in report.findings] == ["S313"]
    assert report.findings[0].severity == "advice"


def test_advice_no_hints_fixture():
    report = analyze_path(str(FIXTURES / "advice_no_hints.py"))
    assert report.clean
    assert set(report.counts()) == {"S314", "S315"}


# ----------------------------------------------------- findings/report

def test_finding_describe_and_dict():
    report = analyze_path(str(FIXTURES / "bad_request_race.py"))
    f = report.by_rule("S301")[0]
    assert f.rule_name == "static-request-race"
    assert f.severity == "error"
    text = f.describe()
    assert "bad_request_race.py" in text and "S301" in text
    d = f.to_dict()
    assert d["rule"] == "S301" and d["line"] == f.line


def test_report_schema_mirrors_check_report():
    report = analyze_path(str(FIXTURES / "bad_window_leak.py"))
    d = report.to_dict()
    assert d["schema"] == 1 and d["kind"] == "static"
    assert d["clean"] is False
    assert d["counts"] == {"S309": 1}
    json.loads(report.to_json())  # round-trips


def test_report_merge_and_render():
    a = analyze_path(str(FIXTURES / "bad_request_race.py"))
    b = analyze_path(str(FIXTURES / "ok_request_race.py"))
    merged = a.merge(b)
    assert len(merged.paths) == 2
    assert "S301" in merged.render()


def test_syntax_error_becomes_e999():
    report = analyze_source("def broken(:\n", path="broken.py")
    assert not report.clean
    assert report.errors and report.errors[0]["path"] == "broken.py"
    sarif = to_sarif(report)
    results = sarif["runs"][0]["results"]
    assert any(r["ruleId"] == "E999" for r in results)


# --------------------------------------------------------------- SARIF

def test_sarif_export_structure():
    report = analyze_path(str(FIXTURES / "bad_rma_race.py"))
    sarif = to_sarif(report, version="1.2.3")
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["version"] == "1.2.3"
    rule_ids = {r["id"] for r in driver["rules"]}
    assert {r.id for r in STATIC_RULES} <= rule_ids  # full catalog
    result = run["results"][0]
    assert result["ruleId"] == "S307"
    assert result["level"] == "error"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uriBaseId"] == "SRCROOT"
    assert loc["region"]["startLine"] >= 1


def test_sarif_advice_maps_to_note():
    report = analyze_path(str(FIXTURES / "advice_wildcard.py"))
    result = to_sarif(report)["runs"][0]["results"][0]
    assert result["level"] == "note"


# ------------------------------------------------------------ registry

def test_registry_families():
    assert rule("CHK101").kind == "dynamic"
    assert rule("L201").kind == "lint"
    assert rule("S301").kind == "static"
    assert rule("S301").doc == "docs/static-analysis.md#s301"
    assert rule("CHK101").doc == "docs/checking.md#chk101"


def test_every_dynamic_rule_has_a_static_twin():
    for r in DYNAMIC_RULES:
        assert r.id in STATIC_FOR_DYNAMIC, f"{r.id} has no static twin"
        twin = STATIC_FOR_DYNAMIC[r.id]
        assert r.id in CHK_EQUIVALENT[twin]


def test_catalog_filtering_and_rendering():
    static_only = rules_catalog(("static",))
    assert {r.kind for r in static_only} == {"static"}
    text = render_catalog(("static",))
    assert "twin of CHK101" in text
    assert "S315" in text
    assert "CHK101" not in text.split("twin of CHK101")[0]


def test_advisor_rules_are_advice_severity():
    for rid in ("S313", "S314", "S315"):
        assert rule(rid).severity == "advice"
        assert CHK_EQUIVALENT[rid] == ()


# ------------------------------------------------------------------ CLI

def test_cli_analyze_bad_fixture_fails(capsys):
    status = main(["analyze", str(FIXTURES / "bad_request_race.py")])
    assert status == 1
    assert "S301" in capsys.readouterr().out


def test_cli_analyze_ok_fixture_passes(capsys):
    status = main(["analyze", str(FIXTURES / "ok_request_race.py")])
    assert status == 0
    assert "no static violations" in capsys.readouterr().out


def test_cli_analyze_json_and_sarif(tmp_path, capsys):
    sarif_path = tmp_path / "out.sarif"
    status = main(["analyze", str(FIXTURES / "bad_window_leak.py"),
                   "--json", "--sarif", str(sarif_path)])
    assert status == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"S309": 1}
    sarif = json.loads(sarif_path.read_text())
    assert sarif["version"] == "2.1.0"


def test_cli_analyze_directory(capsys):
    status = main(["analyze", str(FIXTURES)])
    assert status == 1
    out = capsys.readouterr().out
    assert "S301" in out and "S309" in out


def test_cli_list_rules(capsys):
    assert main(["analyze", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "S301" in out
    assert not any(ln.startswith("CHK") for ln in out.splitlines())
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "CHK101" in out and "docs/checking.md#chk101" in out


def test_cli_analyze_requires_paths(capsys):
    assert main(["analyze"]) == 2
    assert "no programs" in capsys.readouterr().err


def test_cli_check_requires_program(capsys):
    assert main(["check"]) == 2
    assert "program path" in capsys.readouterr().err
