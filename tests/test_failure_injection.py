"""Failure injection: timing jitter across network channels.

MPI's transport guarantees per-channel FIFO ordering but nothing across
channels; logically parallel communication must therefore be robust to
arbitrary cross-channel arrival reordering. These tests inject
deterministic per-message injection jitter at the NIC and assert that
every subsystem still produces exact data.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.apps.stencil import StencilConfig, run_stencil
from repro.apps.vasp import VaspConfig, run_vasp
from repro.mpi.partitioned import precv_init, psend_init
from repro.netsim import NetworkConfig, NicParams
from repro.runtime import World
from repro.netsim import ClusterSpec

from tests.helpers import run_ranks, run_same


def jittery(jitter: float = 2e-6, contexts: int = 4096) -> NetworkConfig:
    cfg = NetworkConfig()
    return replace(cfg, nic=replace(cfg.nic, issue_jitter=jitter,
                                    num_hardware_contexts=contexts),
                   name=f"jitter[{jitter}]")


def test_jitter_changes_timing_not_data():
    cfg = StencilConfig(proc_grid=(2, 2), thread_grid=(3, 3), pnx=4, pny=4,
                        stencil_points=9, iters=3, mechanism="endpoints")
    calm = run_stencil(cfg)
    rough = run_stencil(cfg, net=jittery())
    assert calm.correct and rough.correct
    assert rough.wall_time > calm.wall_time  # jitter only ever adds delay


@pytest.mark.parametrize("mechanism", ["original", "tags", "communicators",
                                       "endpoints", "partitioned"])
def test_stencil_correct_under_jitter(mechanism):
    cfg = StencilConfig(proc_grid=(2, 2), thread_grid=(2, 2), pnx=4, pny=4,
                        stencil_points=5, iters=3, mechanism=mechanism)
    assert run_stencil(cfg, net=jittery()).correct


def test_collectives_correct_under_jitter():
    world = World(cluster=ClusterSpec(nodes=5, network=jittery()))

    def worker(proc):
        out = np.zeros(16)
        yield from proc.comm_world.Allreduce(
            np.full(16, float(proc.rank + 1)), out)
        assert np.allclose(out, 15.0)
        recv = np.zeros(5)
        yield from proc.comm_world.Alltoall(
            np.arange(5.0) + 10 * proc.rank, recv)
        assert np.allclose(recv, 10 * np.arange(5) + proc.rank)

    run_same(world, worker)


def test_vasp_correct_under_jitter():
    r = run_vasp(VaspConfig(num_nodes=3, threads_per_proc=4, elems=1 << 10,
                            repeats=2, mechanism="endpoints"),
                 net=jittery())
    assert r.correct


def test_partitioned_cycles_survive_cross_channel_reordering():
    """Partitions spread over 4 VCIs with heavy jitter arrive wildly out
    of order, across cycles; buffering by (cycle, partition) must still
    deliver exact data."""
    from repro.mpi.info import Info
    world = World(cluster=ClusterSpec(nodes=2, network=jittery(jitter=20e-6)))
    cycles = 4

    def sender(proc):
        buf = np.zeros(16)
        req = psend_init(proc.comm_world, buf, 8, 2, dest=1, tag=0,
                         info=Info({"mpich_part_num_vcis": "4"}))
        for c in range(cycles):
            buf[:] = np.arange(16) + 100 * c
            yield from req.start()
            for i in range(8):
                yield from req.pready(i)
            yield from req.wait()

    checks = []

    def receiver(proc):
        buf = np.zeros(16)
        req = precv_init(proc.comm_world, buf, 8, 2, source=0, tag=0)
        for c in range(cycles):
            yield from req.start()
            yield from req.wait()
            checks.append(bool(np.allclose(buf, np.arange(16) + 100 * c)))

    run_ranks(world, sender, receiver)
    assert checks == [True] * cycles


def test_same_channel_fifo_preserved_under_jitter():
    """Jitter must never reorder messages within one channel (that would
    violate MPI's transport assumption and corrupt same-tag streams)."""
    world = World(cluster=ClusterSpec(nodes=2, network=jittery(jitter=50e-6)))

    def sender(proc):
        for v in range(20):
            yield from proc.comm_world.Send(np.full(1, float(v)), 1, tag=0)

    def receiver(proc):
        got = []
        buf = np.zeros(1)
        for _ in range(20):
            yield from proc.comm_world.Recv(buf, 0, tag=0)
            got.append(buf[0])
        assert got == sorted(got)

    run_ranks(world, sender, receiver)


def test_jitter_deterministic():
    cfg = StencilConfig(proc_grid=(2, 1), thread_grid=(2, 2), pnx=3, pny=3,
                        stencil_points=5, iters=2, mechanism="endpoints")
    a = run_stencil(cfg, net=jittery())
    b = run_stencil(cfg, net=jittery())
    assert a.wall_time == b.wall_time
