"""Tests for the NWChem RMA proxy (Fig 6) and the VASP collectives proxy
(Fig 7)."""

import pytest

from repro.apps.nwchem import NwchemConfig, run_nwchem
from repro.apps.vasp import VaspConfig, run_vasp
from repro.errors import MpiUsageError


# ---------------------------------------------------------------- nwchem

@pytest.mark.parametrize("mechanism", ["window", "window-relaxed",
                                       "endpoints"])
def test_nwchem_accumulations_exact(mechanism):
    cfg = NwchemConfig(num_nodes=3, threads_per_proc=4, tiles_per_proc=8,
                       tile_dim=8, tasks_per_thread=5, mechanism=mechanism)
    r = run_nwchem(cfg)
    assert r.correct


def test_nwchem_unknown_mechanism():
    with pytest.raises(MpiUsageError):
        NwchemConfig(mechanism="magic")


def test_fig6_channel_usage_ordering():
    """Lesson 16: default windows pin atomics to one channel; relaxed
    ordering spreads them by hashing (collisions possible); endpoints
    spread them perfectly by construction."""
    base = dict(num_nodes=3, threads_per_proc=8, tiles_per_proc=16,
                tile_dim=8, tasks_per_thread=6)
    r_win = run_nwchem(NwchemConfig(mechanism="window", **base))
    r_rel = run_nwchem(NwchemConfig(mechanism="window-relaxed", **base))
    r_ep = run_nwchem(NwchemConfig(mechanism="endpoints", **base))
    # Default ordering uses strictly fewer channels.
    assert r_win.channels_used < r_rel.channels_used
    # Endpoints beat the serialized window on time.
    assert r_ep.wall_time < r_win.wall_time
    # Relaxed-hashing lands between (or equal); endpoints spread evenly.
    assert r_ep.wall_time <= r_rel.wall_time * 1.05
    assert r_ep.channel_imbalance <= r_rel.channel_imbalance + 0.25


def test_nwchem_deterministic():
    cfg = NwchemConfig(num_nodes=2, threads_per_proc=3, tiles_per_proc=4,
                       tile_dim=4, tasks_per_thread=3, mechanism="endpoints")
    assert run_nwchem(cfg).wall_time == run_nwchem(cfg).wall_time


# ---------------------------------------------------------------- vasp

@pytest.mark.parametrize("mechanism", ["funneled", "existing", "endpoints",
                                       "partitioned"])
def test_vasp_allreduce_exact(mechanism):
    cfg = VaspConfig(num_nodes=3, threads_per_proc=4, elems=1 << 10,
                     repeats=2, mechanism=mechanism)
    r = run_vasp(cfg)
    assert r.correct


def test_vasp_elems_must_divide():
    with pytest.raises(MpiUsageError):
        VaspConfig(threads_per_proc=3, elems=100)


def test_fig7_multithreaded_beats_funneled():
    """The VASP result: driving the collective with threads in parallel
    beats the funneled baseline (paper: >2x speedup)."""
    base = dict(num_nodes=4, threads_per_proc=8, elems=1 << 15, repeats=2)
    t_fun = run_vasp(VaspConfig(mechanism="funneled", **base))
    t_exist = run_vasp(VaspConfig(mechanism="existing", **base))
    t_ep = run_vasp(VaspConfig(mechanism="endpoints", **base))
    assert t_fun.time_per_allreduce > 1.3 * t_exist.time_per_allreduce
    assert t_fun.time_per_allreduce > 1.1 * t_ep.time_per_allreduce


def test_lesson19_endpoint_buffer_duplication():
    """Endpoints duplicate the result buffer per endpoint; the other
    mechanisms keep one copy per node."""
    base = dict(num_nodes=2, threads_per_proc=4, elems=1 << 10, repeats=1)
    r_ep = run_vasp(VaspConfig(mechanism="endpoints", **base))
    r_exist = run_vasp(VaspConfig(mechanism="existing", **base))
    r_part = run_vasp(VaspConfig(mechanism="partitioned", **base))
    assert r_ep.result_bytes_per_node == 4 * r_exist.result_bytes_per_node
    assert r_part.result_bytes_per_node == r_exist.result_bytes_per_node


def test_lesson18_endpoints_one_step_usability():
    """Structural check: the endpoint path involves no user-driven
    intranode step — a single collective call per thread suffices (the
    assertion here is simply that it completes and is correct with any
    thread count, including non-powers of two)."""
    cfg = VaspConfig(num_nodes=2, threads_per_proc=5, elems=1000,
                     repeats=1, mechanism="endpoints")
    assert run_vasp(cfg).correct


def test_vasp_single_node():
    cfg = VaspConfig(num_nodes=1, threads_per_proc=4, elems=1 << 8,
                     repeats=1, mechanism="endpoints")
    assert run_vasp(cfg).correct
