"""Property-based end-to-end tests: collectives and data transport against
numpy references under randomized shapes."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpi.coll import MAX, MIN, PROD, SUM
from repro.mpi.partitioned import precv_init, psend_init
from tests.helpers import flat_world, run_ranks, run_same

SETTINGS = settings(max_examples=15, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow,
                                           HealthCheck.data_too_large])

OPS = {"SUM": (SUM, np.add), "MAX": (MAX, np.maximum),
       "MIN": (MIN, np.minimum), "PROD": (PROD, np.multiply)}


@SETTINGS
@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=32),
       st.sampled_from(sorted(OPS)),
       st.integers(min_value=0, max_value=99))
def test_allreduce_matches_numpy(nprocs, count, opname, seed):
    op, npop = OPS[opname]
    rng = np.random.default_rng(seed)
    inputs = rng.uniform(0.5, 2.0, size=(nprocs, count))
    expected = inputs[0].copy()
    for i in range(1, nprocs):
        expected = npop(expected, inputs[i])

    world = flat_world(nprocs)
    outs = {}

    def worker(proc):
        out = np.zeros(count)
        yield from proc.comm_world.Allreduce(inputs[proc.rank].copy(), out,
                                             op=op)
        outs[proc.rank] = out

    run_same(world, worker, max_steps=None)
    for r in range(nprocs):
        assert np.allclose(outs[r], expected), (r, opname)


@SETTINGS
@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=1, max_value=40),
       st.integers(min_value=0, max_value=99))
def test_alltoall_matches_reference(nprocs, count, seed):
    rng = np.random.default_rng(seed)
    sends = rng.normal(size=(nprocs, nprocs * count))
    world = flat_world(nprocs)
    outs = {}

    def worker(proc):
        recv = np.zeros(nprocs * count)
        yield from proc.comm_world.Alltoall(sends[proc.rank].copy(), recv)
        outs[proc.rank] = recv

    run_same(world, worker, max_steps=None)
    for r in range(nprocs):
        for s in range(nprocs):
            assert np.allclose(outs[r][s * count:(s + 1) * count],
                               sends[s][r * count:(r + 1) * count])


@SETTINGS
@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                max_size=12),
       st.integers(min_value=0, max_value=99))
def test_pt2pt_stream_preserves_order_and_data(tags, seed):
    """A random same-peer tag sequence arrives with exact data and, per
    tag, in FIFO order."""
    rng = np.random.default_rng(seed)
    payloads = [rng.normal(size=4) for _ in tags]
    world = flat_world(2)
    received = []

    def sender(proc):
        for tag, data in zip(tags, payloads):
            yield from proc.comm_world.Send(data.copy(), dest=1, tag=tag)

    def receiver(proc):
        # receive per-tag in posting order
        order = sorted(range(len(tags)), key=lambda i: (tags[i], i))
        bufs = {}
        for i in order:
            buf = np.zeros(4)
            yield from proc.comm_world.Recv(buf, source=0, tag=tags[i])
            bufs[i] = buf
        for i in range(len(tags)):
            received.append(bufs[i])

    run_ranks(world, sender, receiver, max_steps=None)
    for got, want in zip(received, payloads):
        assert np.allclose(got, want)


@SETTINGS
@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=16),
       st.integers(min_value=1, max_value=3),
       st.data())
def test_partitioned_random_pready_orders(partitions, count, cycles, data):
    """Any pready permutation over any number of cycles delivers exact
    data."""
    world = flat_world(2)
    perms = [data.draw(st.permutations(range(partitions)), label=f"perm{c}")
             for c in range(cycles)]

    def sender(proc):
        buf = np.zeros(partitions * count)
        req = psend_init(proc.comm_world, buf, partitions, count, dest=1,
                         tag=0)
        for c in range(cycles):
            buf[:] = np.arange(partitions * count) + 100 * c
            yield from req.start()
            for i in perms[c]:
                yield from req.pready(i)
            yield from req.wait()

    checks = []

    def receiver(proc):
        buf = np.zeros(partitions * count)
        req = precv_init(proc.comm_world, buf, partitions, count, source=0,
                         tag=0)
        for c in range(cycles):
            yield from req.start()
            yield from req.wait()
            checks.append(np.allclose(
                buf, np.arange(partitions * count) + 100 * c))

    run_ranks(world, sender, receiver, max_steps=None)
    assert all(checks) and len(checks) == cycles
