"""Smoke tests: every example script runs to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES = [
    "quickstart.py",
    "stencil_halo_exchange.py",
    "legion_event_runtime.py",
    "nwchem_rma.py",
    "vasp_collectives.py",
    "device_offload.py",
    "fat_tree_collectives.py",
]

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = os.path.join(ROOT, "examples", script)
    assert os.path.exists(path), f"missing example {script}"
    proc = subprocess.run([sys.executable, path], capture_output=True,
                          text=True, timeout=300, cwd=ROOT)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_directory_complete():
    listed = {f for f in os.listdir(os.path.join(ROOT, "examples"))
              if f.endswith(".py")}
    assert listed == set(EXAMPLES)
