"""Tests of library internals: protocol paths, delivery, issue paths
(repro.mpi.library)."""

import numpy as np
import pytest

from repro.errors import MpiUsageError
from repro.mpi import waitall
from repro.netsim import NetworkConfig
from repro.netsim.message import MessageKind, WireMessage
from repro.runtime import World

from tests.helpers import flat_world, run_ranks


def test_unknown_message_kind_rejected(world2):
    lib = world2.procs[0].lib
    msg = WireMessage(kind=MessageKind.CTRL, src_node=1, dst_node=0,
                      src_rank=1, dst_rank=0, context_id=0, tag=0, size=0)
    with pytest.raises(MpiUsageError, match="no handler"):
        lib.deliver(msg)


def test_eager_threshold_boundary(world2):
    """Messages exactly at the eager threshold remain eager; one byte more
    goes rendezvous. Both must deliver correct data."""
    threshold = world2.cfg.fabric.eager_threshold
    at = threshold // 8          # float64 elements exactly at threshold
    over = at + 1

    def sender(proc):
        yield from proc.comm_world.Send(np.arange(at, dtype=np.float64),
                                        dest=1, tag=0)
        yield from proc.comm_world.Send(np.arange(over, dtype=np.float64),
                                        dest=1, tag=1)

    def receiver(proc):
        b1 = np.zeros(at)
        yield from proc.comm_world.Recv(b1, source=0, tag=0)
        assert np.allclose(b1, np.arange(at))
        b2 = np.zeros(over)
        yield from proc.comm_world.Recv(b2, source=0, tag=1)
        assert np.allclose(b2, np.arange(over))

    run_ranks(world2, sender, receiver)
    # exactly one rendezvous handshake happened
    lib0 = world2.procs[0].lib
    assert not lib0._rndv_sends          # all drained
    assert not world2.procs[1].lib._rndv_recvs


def test_rendezvous_send_completes_only_after_cts(world2):
    """A rendezvous send must not complete locally before the receiver
    grants it (unlike eager sends)."""
    n = 1 << 15  # 256 KiB > threshold
    times = {}

    def sender(proc):
        req = yield from proc.comm_world.Isend(np.zeros(n), dest=1, tag=0)
        yield from req.wait()
        times["send_done"] = proc.sim.now

    def receiver(proc):
        yield proc.compute(500e-6)  # delay posting the receive
        times["posted"] = proc.sim.now
        buf = np.zeros(n)
        yield from proc.comm_world.Recv(buf, source=0, tag=0)

    run_ranks(world2, sender, receiver)
    assert times["send_done"] > times["posted"]


def test_eager_send_completes_before_recv_posted(world2):
    times = {}

    def sender(proc):
        req = yield from proc.comm_world.Isend(np.zeros(16), dest=1, tag=0)
        yield from req.wait()
        times["send_done"] = proc.sim.now

    def receiver(proc):
        yield proc.compute(500e-6)
        buf = np.zeros(16)
        yield from proc.comm_world.Recv(buf, source=0, tag=0)

    run_ranks(world2, sender, receiver)
    assert times["send_done"] < 500e-6


def test_intranode_faster_than_internode():
    """Same-node ranks talk through shared memory: cheaper than the wire."""
    w_intra = World(num_nodes=1, procs_per_node=2)
    w_inter = flat_world(2)
    times = {}

    def sender(proc):
        yield from proc.comm_world.Send(np.zeros(256), dest=1, tag=0)

    def make_receiver(key):
        def receiver(proc):
            buf = np.zeros(256)
            yield from proc.comm_world.Recv(buf, source=0, tag=0)
            times[key] = proc.sim.now
        return receiver

    run_ranks(w_intra, sender, make_receiver("intra"))
    run_ranks(w_inter, sender, make_receiver("inter"))
    assert times["intra"] < times["inter"]


def test_endpoint_vci_allocation_wraps(world2):
    lib = world2.procs[0].lib
    first = [lib.alloc_endpoint_vci() for _ in range(lib.vci_pool.max_vcis)]
    assert first == list(range(lib.vci_pool.max_vcis))
    assert lib.alloc_endpoint_vci() == 0  # wraps


def test_progress_charges_time(world2):
    proc = world2.procs[0]

    def t():
        yield from proc.lib.progress()

    world2.run_all([proc.spawn(t())])
    assert world2.now == pytest.approx(world2.cfg.cpu.progress_poll)


def test_counters_track_traffic(world2):
    def sender(proc):
        for k in range(3):
            yield from proc.comm_world.Send(np.zeros(8), dest=1, tag=k)

    def receiver(proc):
        for k in range(3):
            buf = np.zeros(8)
            yield from proc.comm_world.Recv(buf, source=0, tag=k)

    run_ranks(world2, sender, receiver)
    lib0, lib1 = world2.procs[0].lib, world2.procs[1].lib
    assert lib0.sends_posted == 3
    assert lib0.bytes_sent == 3 * 64
    assert lib1.recvs_posted == 3
    assert lib1.recvs_completed == 3


def test_complete_at_orders_with_clock(world2):
    from repro.mpi.request import Request
    lib = world2.procs[0].lib
    req = Request(world2.sim, "test")
    lib.complete_at(req, when=5e-6, source=1, tag=2, count=3)
    assert not req.done
    world2.run()
    assert req.done
    st = req.test()
    assert (st.source, st.tag, st.count) == (1, 2, 3)
    assert world2.now == pytest.approx(5e-6)


def test_issue_async_charges_no_thread_time(world2):
    """Library-internal responses (CTS/acks) consume NIC time only."""
    lib = world2.procs[0].lib
    vci = lib.vci_pool.get(0)
    msg = WireMessage(kind=MessageKind.EAGER, src_node=0, dst_node=1,
                      src_rank=0, dst_rank=1, context_id=0, tag=0, size=0,
                      payload=np.zeros(0),
                      meta={"src_addr": 0, "dst_addr": 1})
    depart = lib.issue_async(vci, msg)
    assert depart > 0.0
    assert world2.sim.now == 0.0  # no simulated thread time consumed


def test_comm_test_contends_on_shared_channel():
    """MPI_Test drives progress on the request's channel: on a shared
    channel ('original' mode) a polling thread's tests serialize against
    senders — the Fig 1(c)/Fig 5 mechanism."""
    def run(n_senders):
        world = flat_world(2, threads_per_proc=n_senders + 1,
                           max_vcis_per_proc=1)
        poll_times = []

        def node(proc):
            comm = proc.comm_world
            if proc.rank == 0:
                def sender():
                    for _ in range(40):
                        req = yield from comm.Isend(np.zeros(4), 1, tag=0)
                        yield from req.wait()

                def tester():
                    buf = np.zeros(4)
                    req = yield from comm.Irecv(buf, 1, tag=99)
                    t0 = proc.sim.now
                    for _ in range(20):
                        yield from comm.Test(req)
                    poll_times.append(proc.sim.now - t0)
                    # satisfy the pending recv
                    sreq = yield from comm.Isend(buf, 1, tag=5)
                    yield from sreq.wait()
                    yield from req.wait()

                tasks = [proc.spawn(sender()) for _ in range(n_senders)]
                tasks.append(proc.spawn(tester()))
                yield proc.sim.all_of(tasks)
            else:
                buf = np.zeros(4)
                for _ in range(40 * n_senders):
                    yield from comm.Recv(buf, 0, tag=0)
                yield from comm.Recv(buf, 0, tag=5)
                yield from comm.Send(buf, 0, tag=99)

        tasks = [world.procs[i].spawn(node(world.procs[i]))
                 for i in range(2)]
        world.run_all(tasks, max_steps=None)
        return poll_times[0]

    # More concurrent senders on the shared channel -> slower tests.
    assert run(6) > 1.5 * run(0)
