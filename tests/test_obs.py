"""Tests for the observability subsystem (:mod:`repro.obs`).

Covers the metric primitives, the typed trace-category namespace, the
issue-path stage accounting against a hand-computed scenario, the
Chrome-trace exporter's schema, determinism of the whole pipeline, and a
lint rule banning raw string categories at ``Tracer.emit`` call sites.
"""

import json
import pathlib

import pytest

from repro.bench.msgrate import MsgRateConfig, run_msgrate
from repro.netsim.message import MessageKind, WireMessage
from repro.obs import (
    DEPTH_BUCKETS,
    MetricsRegistry,
    TraceCategory,
    Tracer,
    build_chrome_trace,
    export_chrome_trace,
    render_report,
    render_vci_report,
)
from repro.runtime.world import World

NS = 1e-9


# ------------------------------------------------------------- primitives

def test_counter_math():
    m = MetricsRegistry()
    c = m.counter("c", rank=0)
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    assert m.counter("c", rank=0) is c          # get-or-create
    assert m.counter("c", rank=1) is not c      # distinct labels
    m.inc("c", rank=0)
    assert m.value("c", rank=0) == 4.5


def test_gauge_time_weighted_mean():
    t = [0.0]
    m = MetricsRegistry(clock=lambda: t[0])
    g = m.gauge("g")
    g.set(10.0)          # value 10 over [0, 4)
    t[0] = 4.0
    g.set(2.0)           # value 2 over [4, 8)
    t[0] = 8.0
    assert g.time_weighted_mean() == pytest.approx((10 * 4 + 2 * 4) / 8)
    assert g.max_value == 10.0
    # gauges created mid-run integrate from their first sight of the clock
    t[0] = 10.0
    late = m.gauge("late")
    late.set(6.0)
    t[0] = 20.0
    assert late.time_weighted_mean() == pytest.approx(6.0)


def test_histogram_math():
    m = MetricsRegistry()
    h = m.histogram("h")
    for v in (1e-9, 3e-9, 100e-9):
        h.observe(v)
    assert h.count == 3
    assert h.mean == pytest.approx(104e-9 / 3)
    assert h.min_value == 1e-9 and h.max_value == 100e-9
    assert h.quantile(1.0) >= 100e-9
    assert sum(h.bucket_weights) == pytest.approx(3.0)


def test_histogram_weighted_observations():
    m = MetricsRegistry()
    h = m.histogram("depth", bounds=DEPTH_BUCKETS)
    h.observe(2, weight=3.0)   # 3 seconds at depth 2
    h.observe(4, weight=1.0)   # 1 second at depth 4
    assert h.weight == pytest.approx(4.0)
    # depth 2 holds 3/4 of the mass, so the median bucket bound is 2
    assert h.quantile(0.5) == 2.0


def test_snapshot_is_deterministic_and_sorted():
    m = MetricsRegistry()
    m.inc("z.last", rank=1)
    m.inc("a.first", rank=1)
    m.inc("a.first", rank=0)
    snap = m.snapshot()
    assert list(snap) == ["a.first", "z.last"]
    assert [s["labels"] for s in snap["a.first"]] == ["rank=0", "rank=1"]


# ------------------------------------------------------ typed categories

def test_trace_category_namespace_is_frozen():
    with pytest.raises(AttributeError):
        TraceCategory.NEW_THING = object()
    with pytest.raises(AttributeError):
        del TraceCategory.ISSUE_BEGIN


def test_trace_category_interning():
    a = TraceCategory.custom("obs.test.cat", "app")
    b = TraceCategory.custom("obs.test.cat")
    assert a is b
    assert TraceCategory.get("obs.test.cat") is a
    assert TraceCategory.get("obs.never.defined") is None
    begin, end = TraceCategory.span("obs.test.window")
    assert begin.kind == "begin" and begin.pair == end.name
    assert end.kind == "end" and end.pair == begin.name


def test_pair_spans_counts_orphans():
    b, e = TraceCategory.span("obs.test.orphans")
    tr = Tracer()
    tr.emit(e)          # orphan end: no outstanding begin
    tr.emit(b)
    tr.emit(e)
    tr.emit(b)          # never closed
    pairing = tr.pair_spans(b, e)
    assert pairing.spans == [(0.0, 0.0)]
    assert pairing.orphan_ends == 1
    assert pairing.unmatched_begins == 1
    assert pairing.total_time == 0.0


def test_world_keeps_enabled_but_empty_instruments():
    # Regression: both MetricsRegistry and Tracer are falsy when empty, so
    # World must test `is None`, not truthiness.
    m, t = MetricsRegistry(), Tracer()
    world = World(num_nodes=2, metrics=m, tracer=t)
    assert world.metrics is m and world.tracer is t
    bare = World(num_nodes=2)
    assert not bare.metrics.enabled and not bare.tracer.enabled


# --------------------------------------------- issue-path stage accounting

def _issue_world(metrics=None, tracer=None):
    return World(num_nodes=2, procs_per_node=1, threads_per_proc=2,
                 metrics=metrics, tracer=tracer)


def _eager(size=8):
    return WireMessage(kind=MessageKind.EAGER, src_node=0, dst_node=1,
                       src_rank=0, dst_rank=1, context_id=0, tag=0,
                       size=size, payload=None)


def test_issue_path_two_thread_accounting():
    """Two threads issue on one VCI at t=0; every stage is hand-computed.

    Cost model (defaults): lock_acquire 15 ns, lock_handoff 45 ns,
    doorbell 30 ns, issue_gap 180 ns, issue_per_byte 1/12.5e9. An 8-byte
    payload is 56 wire bytes, so injector service = 184.48 ns.

    Thread A: no lock wait, sw cost 15+30 = 45 ns, departs 229.48 ns.
    Thread B: waits 45 ns for the VCI lock, sw cost 15+45+30 = 90 ns,
    resumes at 135 ns, and departs behind A at 413.96 ns.
    """
    m = MetricsRegistry()
    world = _issue_world(metrics=m)
    lib = world.procs[0].lib
    vci = lib.vci_pool.get(0)
    departs = []

    def issuer():
        d = yield from lib.issue_from_thread(vci, _eager())
        departs.append(d)

    world.sim.spawn(issuer())
    world.sim.spawn(issuer())
    world.run()

    service = 180e-9 + 56 / 12.5e9
    assert departs[0] == pytest.approx(45 * NS + service)
    assert departs[1] == pytest.approx(max(departs[0], 135 * NS) + service)

    assert m.value("mpi.issue.count", rank=0, vci=0) == 2
    lock_wait = m.get("mpi.issue.lock_wait", rank=0, vci=0)
    assert lock_wait.count == 2
    assert lock_wait.total == pytest.approx(45 * NS)
    assert lock_wait.max_value == pytest.approx(45 * NS)
    assert m.get("mpi.issue.doorbell_wait", rank=0, vci=0).total == 0.0
    assert m.get("mpi.issue.sw_cost", rank=0, vci=0).total \
        == pytest.approx((45 + 90) * NS)
    inject = m.get("mpi.issue.inject_delay", rank=0, vci=0)
    assert inject.total == pytest.approx(service + (departs[1] - 135 * NS))

    # The generic lock observer saw the same contention.
    wait = m.get("sim.lock.wait", lock="vci0.lock", rank=0, vci=0)
    assert wait.count == 2 and wait.total == pytest.approx(45 * NS)
    hold = m.get("sim.lock.hold", lock="vci0.lock", rank=0, vci=0)
    assert hold.total == pytest.approx((45 + 90) * NS)
    assert m.value("nic.shared_post", rank=0, vci=0) == 0


def test_metrics_do_not_perturb_timings():
    bare, instrumented = [], []
    for sink in (bare, instrumented):
        m = MetricsRegistry() if sink is instrumented else None
        t = Tracer() if sink is instrumented else None
        world = _issue_world(metrics=m, tracer=t)
        lib = world.procs[0].lib
        vci = lib.vci_pool.get(0)

        def issuer():
            sink.append((yield from lib.issue_from_thread(vci, _eager())))

        world.sim.spawn(issuer())
        world.sim.spawn(issuer())
        world.run()
    assert bare == instrumented


# ------------------------------------------------------- chrome exporter

def _profiled_run(cores=2, msgs=8, seed=0):
    m, t = MetricsRegistry(), Tracer()
    run_msgrate(MsgRateConfig(mode="everywhere", cores=cores,
                              msgs_per_core=msgs, seed=seed),
                metrics=m, tracer=t)
    return m, t


def test_chrome_trace_schema():
    m, t = _profiled_run()
    doc = build_chrome_trace(t, metrics=m)
    assert doc["displayTimeUnit"] == "ns"
    assert doc["otherData"]["orphan_end_records"] == 0
    assert doc["otherData"]["unmatched_begin_records"] == 0
    assert doc["otherData"]["record_count"] == len(t)
    events = doc["traceEvents"]
    assert events, "expected a non-empty trace"
    phases = {e["ph"] for e in events}
    assert phases <= {"M", "X", "i"}
    for e in events:
        assert {"ph", "pid", "tid", "name"} <= e.keys()
        if e["ph"] == "X":
            assert e["dur"] >= 0.0 and "ts" in e and "cat" in e
        elif e["ph"] == "i":
            assert e["s"] == "t"
    # every mpi.issue span closed: one X event per issued message
    issues = [e for e in events if e["ph"] == "X" and e["name"] == "mpi.issue"]
    assert len(issues) == int(m.value("fabric.messages_delivered"))
    # body events are time-sorted
    ts = [e["ts"] for e in events if e["ph"] != "M"]
    assert ts == sorted(ts)
    # round-trips through the serializer
    assert json.loads(export_chrome_trace(t, metrics=m)) == doc


def test_chrome_trace_written_to_path(tmp_path):
    m, t = _profiled_run()
    dest = tmp_path / "trace.json"
    text = export_chrome_trace(t, str(dest), metrics=m)
    assert dest.read_text() == text
    assert json.loads(text)["traceEvents"]


def test_observability_pipeline_is_deterministic():
    m1, t1 = _profiled_run(seed=3)
    m2, t2 = _profiled_run(seed=3)
    assert m1.snapshot() == m2.snapshot()
    assert export_chrome_trace(t1, metrics=m1) \
        == export_chrome_trace(t2, metrics=m2)


def test_reports_render():
    m, _ = _profiled_run()
    vci_table = render_vci_report(m)
    assert "rank" in vci_table and "lockwait(us)" in vci_table
    full = render_report(m)
    assert "per-VCI metrics" in full
    assert "fabric.messages_delivered" in full


def test_profile_cli(tmp_path, capsys):
    from repro.cli import main
    dest = tmp_path / "out.json"
    rc = main(["profile", "msgrate", "--modes", "everywhere", "--cores", "2",
               "--messages", "4", "--chrome-trace", str(dest)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "lockwait(us)" in out and "chrome trace written" in out
    assert json.loads(dest.read_text())["traceEvents"]


# ----------------------------------------------------------------- lint

def test_no_raw_string_categories_at_emit_sites():
    """``Tracer.emit`` call sites must pass ``TraceCategory`` members, not
    string literals — enforced by lint rule L202 over src and tests."""
    from repro.check.lint import run_lint
    root = pathlib.Path(__file__).resolve().parent.parent
    findings = run_lint(roots=[root / "src", root / "tests"],
                        select=["L202"])
    findings = [f for f in findings
                if f.path != "tests/test_lint.py"]  # fixture strings
    assert not findings, (
        "raw string categories passed to .emit() (use TraceCategory "
        "members or TraceCategory.custom()):\n"
        + "\n".join(f.describe() for f in findings))
