"""Pytest fixtures (helpers live in tests/helpers.py)."""

import os

import pytest

from repro.runtime import World

try:
    from hypothesis import HealthCheck, settings

    # Bounded profile for CI: fewer examples, no deadline flakiness on
    # shared runners. Select with HYPOTHESIS_PROFILE=ci (the workflow
    # does); the default profile is untouched for local runs.
    settings.register_profile(
        "ci", max_examples=15, deadline=None, derandomize=True,
        suppress_health_check=[HealthCheck.too_slow])
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    pass


@pytest.fixture
def world2():
    """Two single-process nodes with default config."""
    return World(num_nodes=2, procs_per_node=1)


@pytest.fixture
def world4():
    """Four single-process nodes."""
    return World(num_nodes=4, procs_per_node=1)
