"""Pytest fixtures (helpers live in tests/helpers.py)."""

import pytest

from repro.runtime import World


@pytest.fixture
def world2():
    """Two single-process nodes with default config."""
    return World(num_nodes=2, procs_per_node=1)


@pytest.fixture
def world4():
    """Four single-process nodes."""
    return World(num_nodes=4, procs_per_node=1)
