"""Unit tests for repro.snap: state capture, snapshots, restore,
sliced sessions, fork checkpoints, replay, bisect, and resumable
sweeps."""

import json
import os
import textwrap
from unittest import mock

import numpy as np
import pytest

from repro.bench.parallel import point_key, run_points
from repro.bench.sweep import Sweep
from repro.cli import main
from repro.errors import SnapshotFormatError, SnapshotMismatchError
from repro.faults import parse_plan
from repro.mpi import vci as vci_mod
from repro.mpi.matching import LinearMatchingEngine
from repro.obs import MetricsRegistry, Tracer
from repro.runtime import World
from repro.snap import (
    SnapController,
    capture_state,
    default_snap_controller,
    diff_states,
    fast_forward,
    first_divergence,
    load_snapshot,
    prune_state,
    recording,
    restore_snapshot,
    run_replay,
    save_snapshot,
    state_digest,
    take_snapshot,
)
from repro.snap.fork import ForkCheckpoints, fork_available


def pingpong_world(seed=0, nmsg=8, threads=2, metrics=None, tracer=None,
                   faults=None):
    """A small deterministic workload touching pt2pt + unexpected paths."""
    w = World(num_nodes=2, procs_per_node=1, threads_per_proc=threads,
              seed=seed, metrics=metrics, tracer=tracer, faults=faults)

    def sender(proc):
        for i in range(nmsg):
            yield from proc.comm_world.Send(np.full(8, float(i)), dest=1,
                                            tag=i % 3)

    def receiver(proc):
        for i in range(nmsg):
            buf = np.zeros(8)
            yield from proc.comm_world.Recv(buf, source=0, tag=i % 3)

    w.procs[0].spawn(sender(w.procs[0]))
    w.procs[1].spawn(receiver(w.procs[1]))
    return w


# ---------------------------------------------------------------- state
def test_capture_is_deterministic_across_builds():
    d1 = state_digest(capture_state(pingpong_world()))
    d2 = state_digest(capture_state(pingpong_world()))
    assert d1 == d2


def test_capture_excludes_process_global_counters():
    """Request ids / wire sequence numbers span all worlds in the
    process; a world built later must still capture identically."""
    w1 = pingpong_world()
    w1.run()  # burn through global rid/seq counters
    d_after = state_digest(capture_state(pingpong_world()))
    assert d_after == state_digest(capture_state(pingpong_world()))


def test_capture_differs_across_seeds_and_steps():
    base = state_digest(capture_state(pingpong_world(seed=0)))
    assert base != state_digest(capture_state(pingpong_world(seed=1)))
    w = pingpong_world(seed=0)
    w.sim.run_steps(5)
    assert base != state_digest(capture_state(w))


def test_diff_states_names_the_paths():
    a = capture_state(pingpong_world(seed=0))
    b = capture_state(pingpong_world(seed=1))
    paths = diff_states(a, b)
    assert any("rng" in p for p in paths)


def test_prune_state_drops_matching_paths():
    a = capture_state(pingpong_world(seed=0))
    b = capture_state(pingpong_world(seed=1))
    pa, pb = (prune_state(x, ("rng",)) for x in (a, b))
    assert state_digest(pa) == state_digest(pb)


def test_capture_covers_instruments_and_faults():
    w = pingpong_world(metrics=MetricsRegistry(), tracer=Tracer(),
                       faults=parse_plan("drop=0.05,dup=0.02"))
    w.run()
    state = capture_state(w)
    assert state["metrics"] is not None
    assert state["trace"] is not None and state["trace"]["records"] > 0
    assert state["faults"] is not None
    assert all(p["transport"] is not None
               for p in state["procs"].values())


# ------------------------------------------------------------- snapshot
def test_snapshot_save_load_roundtrip(tmp_path):
    w = pingpong_world()
    w.sim.run_steps(10)
    snap = take_snapshot(w, recipe={"seed": 0})
    path = save_snapshot(snap, tmp_path / "s.json")
    loaded = load_snapshot(path)
    assert loaded.digest == snap.digest
    assert loaded.step == snap.step and loaded.clock == snap.clock
    assert loaded.recipe == {"seed": 0}


def test_snapshot_bytes_are_deterministic(tmp_path):
    w1, w2 = pingpong_world(), pingpong_world()
    for w in (w1, w2):
        w.sim.run_steps(10)
    p1 = save_snapshot(take_snapshot(w1), tmp_path / "a.json")
    p2 = save_snapshot(take_snapshot(w2), tmp_path / "b.json")
    assert open(p1, "rb").read() == open(p2, "rb").read()


def test_snapshot_load_rejects_corruption(tmp_path):
    w = pingpong_world()
    w.sim.run_steps(10)
    path = save_snapshot(take_snapshot(w), tmp_path / "s.json")
    payload = json.load(open(path))
    payload["state"]["kernel"]["now"] += 1.0
    json.dump(payload, open(path, "w"))
    with pytest.raises(SnapshotFormatError, match="digest"):
        load_snapshot(path)


def test_snapshot_load_rejects_wrong_version(tmp_path):
    w = pingpong_world()
    path = save_snapshot(take_snapshot(w), tmp_path / "s.json")
    payload = json.load(open(path))
    payload["version"] = 999
    json.dump(payload, open(path, "w"))
    with pytest.raises(SnapshotFormatError, match="version"):
        load_snapshot(path)


# -------------------------------------------------------------- restore
def test_restore_verifies_byte_identity():
    w = pingpong_world()
    w.sim.run_steps(17)
    snap = take_snapshot(w)
    w2 = restore_snapshot(snap, pingpong_world)
    assert w2.sim.steps == 17
    assert state_digest(capture_state(w2)) == snap.digest


def test_restore_detects_wrong_recipe():
    w = pingpong_world(seed=0)
    w.sim.run_steps(17)
    snap = take_snapshot(w)
    with pytest.raises(SnapshotMismatchError) as err:
        restore_snapshot(snap, lambda: pingpong_world(seed=1))
    assert err.value.paths  # names the diverging state paths


def test_fast_forward_rejects_overshoot():
    w = pingpong_world()
    w.sim.run_steps(20)
    with pytest.raises(SnapshotMismatchError, match="past"):
        fast_forward(w, 10)


def test_run_steps_horizon_does_not_clamp_clock():
    w = pingpong_world()
    n = w.sim.run_steps(10_000, horizon=1e-7)
    assert n > 0
    assert w.sim._now <= 1e-7  # stopped *before* the horizon, not at it


# ------------------------------------------------------------- sessions
def test_sliced_run_is_byte_identical():
    w_ref = pingpong_world()
    w_ref.run()
    ref = state_digest(capture_state(w_ref))

    boundaries = []
    ctrl = SnapController(interval=7)
    ctrl.add_boundary_hook(lambda w: boundaries.append(w.sim.steps))
    with recording(ctrl):
        w = pingpong_world()
        w.run()
    assert state_digest(capture_state(w)) == ref
    assert w.sim.steps == w_ref.sim.steps
    assert boundaries and all(b % 7 == 0 for b in boundaries)


def test_sliced_run_all_returns_task_values():
    ctrl = SnapController(interval=5)
    with recording(ctrl):
        w = World(num_nodes=2, procs_per_node=1)

        def worker(proc):
            yield proc.compute(1e-6)
            return proc.rank * 10

        tasks = [p.spawn(worker(p)) for p in w.procs]
        assert w.run_all(tasks) == [0, 10]


def test_recording_restores_previous_default():
    assert default_snap_controller() is None
    with recording(SnapController()):
        assert default_snap_controller() is not None
    assert default_snap_controller() is None


# ----------------------------------------------------- fork checkpoints
@pytest.mark.skipif(not fork_available(), reason="needs os.fork")
def test_fork_checkpoint_resume_roundtrip():
    w = pingpong_world()
    forks = ForkCheckpoints(keep=4)
    try:
        w.sim.run_steps(10)

        def serve(cmd):
            w.sim.run_steps(int(cmd["target"]) - w.sim.steps)
            return {"digest": state_digest(capture_state(w)),
                    "steps": w.sim.steps}

        forks.take(w.sim.steps, serve)
        # Parent runs ahead; the parked child must reproduce its state.
        w.sim.run_steps(15)
        ref = state_digest(capture_state(w))
        cp = forks.nearest(25)
        assert cp is not None and cp.step == 10
        out = forks.resume(cp, {"target": 25})
        assert out == {"digest": ref, "steps": 25}
    finally:
        forks.discard_all()


@pytest.mark.skipif(not fork_available(), reason="needs os.fork")
def test_fork_checkpoints_evict_oldest():
    forks = ForkCheckpoints(keep=2)
    try:
        for step in (5, 10, 15):
            forks.take(step, lambda cmd: {})
        assert forks.steps == [10, 15]
        assert forks.nearest(9) is None
    finally:
        forks.discard_all()


# --------------------------------------------------------------- replay
PROGRAM = textwrap.dedent("""\
    import numpy as np
    from repro.runtime import World

    world = World(num_nodes=2, procs_per_node=1)

    def rank0(proc):
        comm = proc.comm_world
        for i in range(10):
            yield from comm.Send(np.full(2, float(i)), dest=1, tag=100 + i)

        def racer(i):
            req = yield from comm.Isend(np.full(2, float(i)), dest=1, tag=7)
            yield from req.wait()
        t1 = proc.spawn(racer(1), name="s1")
        t2 = proc.spawn(racer(2), name="s2")
        yield proc.sim.all_of([t1, t2])

    def rank1(proc):
        buf = np.zeros(2)
        for i in range(10):
            yield from proc.comm_world.Recv(buf, source=0, tag=100 + i)
        yield from proc.comm_world.Recv(buf, source=0, tag=7)
        yield from proc.comm_world.Recv(buf, source=0, tag=7)

    tasks = [world.procs[0].spawn(rank0(world.procs[0])),
             world.procs[1].spawn(rank1(world.procs[1]))]
    world.run_all(tasks)
""")


@pytest.fixture
def program(tmp_path):
    path = tmp_path / "prog.py"
    path.write_text(PROGRAM)
    return str(path)


def test_replay_until_resumes_from_checkpoint(program, tmp_path):
    snap_path = str(tmp_path / "at_target.json")
    result, status = run_replay(program, [], until=3e-6, interval=25,
                                snapshot_path=snap_path)
    assert status == 0 and result is not None
    assert result.reason == "until" and result.verified
    if fork_available():
        assert result.resumed_from_step is not None
        assert result.steps_replayed < result.step  # not from t=0
    snap = load_snapshot(snap_path)
    assert snap.step == result.step and snap.digest == result.digest


def test_replay_to_finding_reproduces_chk102(program):
    result, status = run_replay(program, [], to_finding="CHK102",
                                interval=25)
    assert status == 0 and result is not None
    assert result.reason == "finding" and result.verified
    assert result.finding["rule"] == "CHK102"
    if fork_available():
        assert result.resumed_from_step is not None
        assert result.steps_replayed < result.step


def test_replay_without_fork_still_captures(program):
    result, _ = run_replay(program, [], until=3e-6, interval=25,
                           live=False)
    assert result is not None and result.verified
    assert result.resumed_from_step is None


def test_replay_needs_exactly_one_target(program):
    with pytest.raises(ValueError):
        run_replay(program, [])
    with pytest.raises(ValueError):
        run_replay(program, [], until=1e-6, to_finding="CHK102")


def test_replay_cli(program, capsys):
    assert main(["replay", program, "--until", "3e-6",
                 "--interval", "25"]) == 0
    out = capsys.readouterr().out
    assert "reproduction verified: True" in out
    assert main(["replay", program]) == 2  # no target
    assert main(["replay", program, "--until", "1", "--to-finding",
                 "CHK101"]) == 2  # both targets


# --------------------------------------------------------------- bisect
def test_bisect_identical_configs_never_diverge():
    assert first_divergence(pingpong_world, pingpong_world) is None


def test_bisect_finds_seed_divergence():
    div = first_divergence(lambda: pingpong_world(seed=0),
                           lambda: pingpong_world(seed=1), interval=16)
    assert div is not None and div.step == 0
    assert any("rng" in p for p in div.paths)
    assert "divergence" in div.render()


def test_bisect_linear_vs_indexed_engines_agree():
    def build_linear():
        with mock.patch.object(vci_mod, "MatchingEngine",
                               LinearMatchingEngine):
            return pingpong_world()

    div = first_divergence(pingpong_world, build_linear, interval=16,
                           ignore=("engine.internals",))
    assert div is None  # logical matching state is byte-identical (PR 3)
    div = first_divergence(pingpong_world, build_linear, interval=16)
    assert div is not None  # ...but the private internals differ


def test_bisect_refines_mid_run_divergence():
    """A divergence that appears mid-run is pinned to its exact step."""
    def build_fast():
        return pingpong_world(seed=0)

    def build_slow():
        w = pingpong_world(seed=0)

        def straggler(proc):
            yield proc.compute(2e-6)
        w.procs[0].spawn(straggler(w.procs[0]))
        return w

    div = first_divergence(build_fast, build_slow, interval=8)
    assert div is not None and div.step == 0  # extra task visible at start


# ----------------------------------------------------- resumable sweeps
def _square(x):
    return {"y": x * x}


def test_run_points_checkpoints_and_resumes(tmp_path):
    ckpt = str(tmp_path / "ck")
    points = [{"x": i} for i in range(5)]
    ref = run_points(_square, points, checkpoint_dir=ckpt)
    assert sorted(os.listdir(ckpt)) == sorted(
        f"point-{point_key(p)}.json" for p in points)

    # Simulate a crash: lose two checkpoints, resume computes only those.
    for p in points[1:3]:
        os.unlink(os.path.join(ckpt, f"point-{point_key(p)}.json"))
    calls = []

    def counting(x):
        calls.append(x)
        return _square(x)

    again = run_points(counting, points, checkpoint_dir=ckpt, resume=True)
    assert again == ref
    assert sorted(calls) == [1, 2]


def test_run_points_parallel_checkpoints(tmp_path):
    ckpt = str(tmp_path / "ck")
    points = [{"x": i} for i in range(4)]
    ref = run_points(_square, points, jobs=2, checkpoint_dir=ckpt)
    assert len(os.listdir(ckpt)) == 4
    assert run_points(_square, points, jobs=2, checkpoint_dir=ckpt,
                      resume=True) == ref


def test_point_store_ignores_corrupt_checkpoint(tmp_path):
    ckpt = str(tmp_path / "ck")
    points = [{"x": 3}]
    run_points(_square, points, checkpoint_dir=ckpt)
    path = os.path.join(ckpt, f"point-{point_key(points[0])}.json")
    open(path, "w").write("{trunca")  # crash mid-write
    assert run_points(_square, points, checkpoint_dir=ckpt,
                      resume=True) == [{"y": 9}]


def test_sweep_resume_rows_byte_identical(tmp_path):
    sweep = Sweep(name="t", params={"x": [1, 2, 3]})
    ckpt = str(tmp_path / "ck")
    rows = sweep.run(_square, checkpoint_dir=ckpt)
    resumed = sweep.run(_square, checkpoint_dir=ckpt, resume=True)
    assert [r.flat() for r in resumed] == [r.flat() for r in rows]
    csv_a, csv_b = tmp_path / "a.csv", tmp_path / "b.csv"
    sweep.to_csv(rows, str(csv_a))
    sweep.to_csv(resumed, str(csv_b))
    assert csv_a.read_bytes() == csv_b.read_bytes()


def test_sweep_cli_resume_needs_checkpoint_dir(capsys):
    assert main(["sweep", "msgrate", "--modes", "everywhere", "--cores",
                 "1", "--resume"]) == 2
    assert "needs --checkpoint-dir" in capsys.readouterr().err
