"""Batched hot paths vs their scalar references: byte-identity.

The numpy-batched issue/transmit/match paths exist for host throughput
only — every batch entry point must produce the exact floats, counters
and event order of calling its scalar sibling once per item, so state
digests are engine- and batching-invariant. These tests pin that down
per layer (NIC injector, fabric, MPI library burst, matching engine) and
end-to-end (a partitioned workload with the burst path swapped out).
"""

import numpy as np
import pytest

from repro.mpi.matching import LinearMatchingEngine, MatchingEngine, PostedRecv
from repro.mpi.partitioned import PsendRequest, precv_init, psend_init
from repro.netsim.config import FabricParams, NicParams
from repro.netsim.message import MessageKind, WireMessage
from repro.netsim.nic import HardwareContext
from repro.netsim.fabric import Fabric
from repro.sim.core import Simulator
from repro.snap import capture_state, state_digest
from tests.helpers import flat_world, run_ranks

SIZES = [8, 8, 256, 33000, 8, 1024, 8, 8, 64000, 16]


def _ctx(params: NicParams) -> HardwareContext:
    return HardwareContext(Simulator(), 0, params)


def test_issue_batch_matches_scalar_issue():
    params = NicParams()
    scalar, batched = _ctx(params), _ctx(params)
    ref = [scalar.issue(b) for b in SIZES]
    got = batched.issue_batch(SIZES)
    assert got == ref  # exact float equality, element-wise
    assert batched.messages_issued == scalar.messages_issued
    assert batched.bytes_issued == scalar.bytes_issued
    assert batched.injector.free_at == scalar.injector.free_at


def test_issue_batch_jitter_falls_back_to_scalar():
    params = NicParams(issue_jitter=1e-9)
    scalar, batched = _ctx(params), _ctx(params)
    ref = [scalar.issue(b) for b in SIZES]
    assert batched.issue_batch(SIZES) == ref


def test_issue_batch_interleaves_with_scalar_traffic():
    """A batch lands on the same injector busy-chain scalar calls use."""
    params = NicParams()
    scalar, batched = _ctx(params), _ctx(params)
    for b in SIZES[:3]:
        scalar.issue(b)
        batched.issue(b)
    ref = [scalar.issue(b) for b in SIZES]
    assert batched.issue_batch(SIZES) == ref
    assert batched.injector.free_at == scalar.injector.free_at


def _msg(src: int, dst: int, tag: int, size: int) -> WireMessage:
    return WireMessage(kind=MessageKind.EAGER, src_node=src, dst_node=dst,
                       src_rank=src, dst_rank=dst, context_id=0, tag=tag,
                       size=size)


def _fabric_run(batch: bool) -> tuple[list, object]:
    sim = Simulator()
    fabric = Fabric(sim, FabricParams())
    arrivals: list[tuple[int, float]] = []
    fabric.register_node(0, lambda m: arrivals.append((m.tag, sim.now)))
    fabric.register_node(1, lambda m: arrivals.append((m.tag, sim.now)))
    items = [(_msg(0, 1, t, s), 1e-7 * t) for t, s in enumerate(SIZES)]
    if batch:
        fabric.transmit_batch(items)
    else:
        for msg, depart in items:
            fabric.transmit(msg, depart)
    sim.run()
    return arrivals, fabric


def test_transmit_batch_matches_scalar_transmit():
    ref, fab_ref = _fabric_run(batch=False)
    got, fab_got = _fabric_run(batch=True)
    assert got == ref  # same delivery order, exact same arrival clocks
    assert fab_got.messages_delivered == fab_ref.messages_delivered
    assert fab_got.bytes_delivered == fab_ref.bytes_delivered
    for node in (0, 1):
        for servers in ("_egress", "_ingress"):
            s_ref = getattr(fab_ref, servers)[node]
            s_got = getattr(fab_got, servers)[node]
            assert s_got.free_at == s_ref.free_at
            assert s_got.stats.requests == s_ref.stats.requests
            assert s_got.stats.busy_time == s_ref.stats.busy_time
            assert s_got.stats.total_queue_delay == \
                s_ref.stats.total_queue_delay


def test_transmit_batch_rejects_unknown_node():
    sim = Simulator()
    fabric = Fabric(sim, FabricParams())
    fabric.register_node(0, lambda m: None)
    with pytest.raises(KeyError):
        fabric.transmit_batch([(_msg(0, 7, 0, 8), 0.0)])


def _recv(tag: int) -> PostedRecv:
    return PostedRecv(req=None, buf=None, count=1, context_id=0, source=0,
                      tag=tag, dst_addr=1)


@pytest.mark.parametrize("engine_cls", [MatchingEngine, LinearMatchingEngine])
def test_incoming_bulk_matches_scalar_incoming(engine_cls):
    def feed(bulk: bool):
        engine = engine_cls()
        msgs = [_msg(0, 1, tag, 8) for tag in (3, 1, 4, 1, 5, 9, 2, 6)]
        if bulk:
            out = engine.incoming_bulk(msgs)
        else:
            out = [engine.incoming(m) for m in msgs]
        # Drain through posted receives afterwards: unexpected-queue
        # order and indexes must have ended up identical.
        matches = []
        for tag in (1, 9, 1, 3):
            matched, cost = engine.post_recv(_recv(tag))
            matches.append((None if matched is None else matched.tag, cost))
        return out, matches, engine.max_unexpected_depth

    assert feed(bulk=True) == feed(bulk=False)


def test_incoming_bulk_with_posted_recvs_falls_back():
    """A non-empty posted queue routes the bulk path through scalar
    ``incoming`` calls (matching may consume posted entries mid-burst)."""
    def feed(bulk: bool):
        engine = MatchingEngine()
        engine.post_recv(_recv(4))
        msgs = [_msg(0, 1, tag, 8) for tag in (3, 4, 4)]
        if bulk:
            out = engine.incoming_bulk(msgs)
        else:
            out = [engine.incoming(m) for m in msgs]
        return [(m is not None, c) for m, c in out]

    assert feed(bulk=True) == feed(bulk=False)
    assert feed(bulk=True)[1][0] is True  # tag-4 arrival found the recv


def _partitioned_world(seed: int = 0):
    return flat_world(2, threads_per_proc=2, seed=seed)


def _run_partitioned(scalar_flush: bool) -> str:
    """Digest of a partitioned run that defers partitions before the
    channel handshake lands (the burst-flush site)."""
    world = _partitioned_world()

    def sender(proc):
        buf = np.arange(16, dtype=np.float64)
        req = psend_init(proc.comm_world, buf, 8, 2, dest=1, tag=0)
        yield from req.start()
        for i in (5, 3, 0, 7, 1, 2, 6, 4):
            yield from req.pready(i)
        yield from req.wait()

    def receiver(proc):
        buf = np.zeros(16)
        req = precv_init(proc.comm_world, buf, 8, 2, source=0, tag=0)
        yield from req.start()
        yield from req.wait()
        assert np.allclose(buf, np.arange(16))

    if scalar_flush:
        original = PsendRequest._on_channel_ready

        def scalar_ready(self, remote_channel):
            self.channel_ready = True
            self.remote_channel = remote_channel
            deferred, self._deferred = self._deferred, []
            for p in deferred:
                self._issue_partition_async(p)

        PsendRequest._on_channel_ready = scalar_ready
        try:
            run_ranks(world, sender, receiver)
        finally:
            PsendRequest._on_channel_ready = original
    else:
        run_ranks(world, sender, receiver)
    return state_digest(capture_state(world))


def test_partitioned_burst_flush_matches_scalar_flush():
    """End-to-end: ``issue_async_batch`` burst flush leaves the world in
    the byte-identical state of one ``issue_async`` call per partition."""
    assert _run_partitioned(scalar_flush=False) == \
        _run_partitioned(scalar_flush=True)
