"""Scenario DSL, sampler, executor, shrinker, campaigns (repro.scenarios)."""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ScenarioError
from repro.faults import FaultPlan, TransportParams
from repro.netsim.traffic import TrafficShape
from repro.scenarios import (
    APP_REGISTRY,
    ScenarioSpec,
    app_names,
    campaign_report,
    outcome_signature,
    render_report,
    run_campaign,
    run_scenario,
    sample_scenarios,
    shrink_scenario,
    verify_artifact,
    write_artifact,
)
from repro.scenarios.shrink import load_artifact


def racer_spec(**overrides):
    """A scenario guaranteed to produce a CHK101 finding."""
    kwargs = dict(app="racer", mechanism="default", nodes=2, threads=2,
                  seed=3)
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestSpec:
    def test_yaml_roundtrip_full(self):
        spec = ScenarioSpec(
            app="stencil", mechanism="partitioned", seed=9, nodes=4,
            threads=2, topology="torus", topology_params={"dims": (2, 2)},
            app_params={"pnx": 4, "pny": 4, "iters": 1},
            faults=FaultPlan(drop=0.1, delay=0.05, delay_max=5e-6),
            transport=TransportParams(max_retries=6),
            traffic=TrafficShape(kind="bursty", flows=2),
            traffic_seed=4, name="x")
        again = ScenarioSpec.from_yaml(spec.to_yaml())
        assert again == spec
        assert again.topology_params["dims"] == (2, 2)  # tuple restored

    def test_unknown_app_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(app="hpl", mechanism="tags")

    def test_wrong_mechanism_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(app="vasp", mechanism="tags")

    def test_bad_topology_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(app="legion", mechanism="endpoints", nodes=100,
                         topology="torus", topology_params={"dims": (2, 2)})

    def test_bad_app_params_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(app="graph", mechanism="tags",
                         app_params={"churn": 1.5})
        with pytest.raises(ScenarioError):
            ScenarioSpec(app="legion", mechanism="endpoints",
                         app_params={"not_a_knob": 1})

    def test_vasp_divisibility_enforced(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(app="vasp", mechanism="existing", threads=4,
                         app_params={"elems": 6})

    def test_unknown_yaml_key_rejected(self):
        data = ScenarioSpec(app="circuit", mechanism="original").to_dict()
        data["grandfathered"] = True
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict(data)

    def test_save_load(self, tmp_path):
        spec = ScenarioSpec(app="device", mechanism="host-driven")
        path = str(tmp_path / "s.yaml")
        spec.save(path)
        assert ScenarioSpec.load(path) == spec


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_spec_yaml_roundtrip_property(data):
    """spec -> YAML -> spec is the identity across the sampled space."""
    app = data.draw(st.sampled_from(app_names(samplable_only=True)))
    adapter = APP_REGISTRY[app]
    mechanism = data.draw(st.sampled_from(list(adapter.mechanisms)))
    nodes = 2 if app == "device" else data.draw(st.sampled_from([2, 3, 4]))
    threads = data.draw(st.sampled_from([1, 2, 4]))
    faults = data.draw(st.one_of(
        st.none(),
        st.builds(FaultPlan,
                  drop=st.sampled_from([0.0, 0.05, 0.2]),
                  dup=st.sampled_from([0.0, 0.1]),
                  corrupt=st.sampled_from([0.0, 0.05]))))
    traffic = data.draw(st.one_of(
        st.none(),
        st.builds(TrafficShape,
                  kind=st.sampled_from(["mice", "elephants", "bursty",
                                        "requests"]),
                  flows=st.integers(1, 4),
                  msgs_per_flow=st.integers(1, 8))))
    app_params = {"elems": threads * 8} if app == "vasp" else {}
    try:
        spec = ScenarioSpec(app=app, mechanism=mechanism,
                            seed=data.draw(st.integers(0, 2**30)),
                            nodes=nodes, threads=threads,
                            app_params=app_params,
                            faults=faults, traffic=traffic,
                            traffic_seed=data.draw(st.integers(0, 1000)))
    except ScenarioError:
        return  # invalid corner of the cross-product: nothing to check
    assert ScenarioSpec.from_yaml(spec.to_yaml()) == spec
    assert ScenarioSpec.from_dict(
        json.loads(json.dumps(spec.to_dict()))) == spec


class TestSampler:
    def test_deterministic(self):
        assert sample_scenarios(3, 40) == sample_scenarios(3, 40)

    def test_prefix_stable(self):
        # the first k draws do not depend on n
        assert sample_scenarios(3, 40)[:10] == sample_scenarios(3, 10)

    def test_seeds_differ(self):
        assert sample_scenarios(1, 10) != sample_scenarios(2, 10)

    def test_apps_filter(self):
        specs = sample_scenarios(0, 12, apps=["stencil", "vasp"])
        assert {s.app for s in specs} <= {"stencil", "vasp"}

    def test_racer_never_sampled_by_default(self):
        assert all(s.app != "racer" for s in sample_scenarios(0, 60))

    def test_unknown_app_rejected(self):
        with pytest.raises(ScenarioError):
            sample_scenarios(0, 5, apps=["hpl"])

    def test_variety(self):
        specs = sample_scenarios(5, 60)
        assert len({s.app for s in specs}) >= 5
        assert any(s.faults is not None for s in specs)
        assert any(s.traffic is not None for s in specs)
        assert any(s.topology != "direct" for s in specs)


class TestExecutor:
    def test_ok_outcome(self):
        spec = ScenarioSpec(app="circuit", mechanism="endpoints",
                            app_params={"timesteps": 2,
                                        "wires_per_thread": 2})
        out = run_scenario(spec)
        assert out["status"] == "ok" and out["rule"] is None
        assert out["digest"] and out["wall_time"] > 0
        assert out["spec"] == spec.to_dict()

    def test_finding_outcome(self):
        out = run_scenario(racer_spec())
        assert outcome_signature(out) == ("finding", "CHK101")
        assert out["checks"].get("CHK101", 0) >= 1
        assert "poker" in out["detail"]

    def test_transport_outcome(self):
        spec = ScenarioSpec(
            app="legion", mechanism="endpoints", seed=1,
            app_params={"msgs_per_thread": 4},
            faults=FaultPlan(drop=0.9),
            transport=TransportParams(max_retries=1))
        out = run_scenario(spec)
        assert outcome_signature(out) == ("transport", "TransportError")
        assert "retries" in out["detail"]

    def test_outcomes_byte_identical(self):
        spec = racer_spec(faults=FaultPlan(drop=0.05),
                          traffic=TrafficShape(flows=2, msgs_per_flow=4))
        a, b = run_scenario(spec), run_scenario(spec)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_outcome_json_serializable(self):
        out = run_scenario(ScenarioSpec(app="device",
                                        mechanism="device-partitioned",
                                        app_params={"timesteps": 2}))
        assert json.loads(json.dumps(out)) == out


class TestShrinker:
    def test_seeded_failure_shrinks_to_minimal(self):
        spec = racer_spec(
            nodes=4, threads=4, topology="fat_tree",
            topology_params={"k": 4},
            faults=FaultPlan(drop=0.05, dup=0.02),
            traffic=TrafficShape(kind="mice", flows=4, msgs_per_flow=8))
        result = shrink_scenario(spec)
        assert result.signature == ("finding", "CHK101")
        minimal = result.minimal
        # every removable dimension was removed
        assert minimal.traffic is None
        assert minimal.faults is None
        assert minimal.topology == "direct"
        assert minimal.nodes == 2 and minimal.threads == 1
        assert result.evals <= 150 and result.steps

    def test_passing_scenario_refused(self):
        spec = ScenarioSpec(app="circuit", mechanism="original",
                            app_params={"timesteps": 2})
        with pytest.raises(ScenarioError):
            shrink_scenario(spec)

    def test_artifact_replay_byte_identical(self, tmp_path):
        result = shrink_scenario(racer_spec(
            traffic=TrafficShape(flows=2, msgs_per_flow=4)))
        path = str(tmp_path / "artifact.yaml")
        write_artifact(path, result)
        doc = load_artifact(path)
        assert doc["signature"] == {"status": "finding", "rule": "CHK101"}
        assert doc["replay"].startswith("python -m repro campaign replay")
        verdict = verify_artifact(path)
        assert verdict["ok"], verdict["problems"]
        assert verdict["outcome"]["digest"] == doc["fingerprint"]["digest"]

    def test_tampered_artifact_fails_verify(self, tmp_path):
        result = shrink_scenario(racer_spec())
        path = str(tmp_path / "artifact.yaml")
        write_artifact(path, result)
        import yaml as _yaml
        with open(path) as fh:
            doc = _yaml.safe_load(fh)
        doc["fingerprint"]["digest"] = "0" * 64
        with open(path, "w") as fh:
            _yaml.safe_dump(doc, fh)
        assert not verify_artifact(path)["ok"]


def _racer_campaign(out_dir, **kwargs):
    """A tiny campaign guaranteed to contain failures (racer app only)."""
    kwargs.setdefault("seed", 2)
    kwargs.setdefault("n", 6)
    kwargs.setdefault("apps", ["racer"])
    return run_campaign(out_dir, **kwargs)


class TestCampaign:
    def test_clean_campaign(self, tmp_path):
        summary = run_campaign(str(tmp_path / "c"), seed=11, n=8)
        assert summary["total"] == 8
        assert summary["failures"] == summary["by_status"].get(
            "transport", 0) + summary["by_status"].get(
            "finding", 0) + summary["by_status"].get(
            "deadlock", 0) + summary["by_status"].get(
            "incorrect", 0) + summary["by_status"].get("crash", 0)
        assert (tmp_path / "c" / "summary.json").exists()

    def test_deterministic_per_seed(self, tmp_path):
        s1 = run_campaign(str(tmp_path / "a"), seed=4, n=8, shrink=False)
        s2 = run_campaign(str(tmp_path / "b"), seed=4, n=8, shrink=False)
        for key in ("by_status", "by_rule", "by_app", "total", "failures"):
            assert s1[key] == s2[key]

    def test_failures_produce_verified_artifacts(self, tmp_path):
        summary = _racer_campaign(str(tmp_path / "c"))
        assert summary["failures"] == summary["total"] == 6
        assert len(summary["artifacts"]) == 6
        assert summary["all_verified"]
        for art in summary["artifacts"]:
            assert os.path.exists(art["path"])
            assert art["rule"] == "CHK101"

    def test_report_render(self, tmp_path):
        summary = _racer_campaign(str(tmp_path / "c"))
        text = render_report(summary)
        assert "finding" in text and "CHK101" in text and "verified" in text

    def test_resume_noop_after_completion(self, tmp_path):
        out = str(tmp_path / "c")
        s1 = run_campaign(out, seed=7, n=6, shrink=False)
        s2 = run_campaign(out, resume=True, shrink=False)
        assert s1["by_status"] == s2["by_status"]

    def test_seed_mismatch_rejected(self, tmp_path):
        out = str(tmp_path / "c")
        run_campaign(out, seed=1, n=4, shrink=False)
        with pytest.raises(ScenarioError):
            run_campaign(out, seed=2, n=4, shrink=False)

    def test_report_on_fresh_dir_fails_cleanly(self, tmp_path):
        with pytest.raises(ScenarioError):
            campaign_report(str(tmp_path / "nothing"))


class TestCrashResume:
    def test_kill9_then_resume_is_byte_identical(self, tmp_path):
        """A campaign killed mid-flight resumes to the exact same bytes."""
        reference = str(tmp_path / "ref")
        crashed = str(tmp_path / "crash")
        run_campaign(reference, seed=2, n=6, apps=["racer"], shrink=False)

        code = subprocess.run(
            [sys.executable, "-c",
             "from repro.scenarios import run_campaign; "
             f"run_campaign({crashed!r}, seed=2, n=6, apps=['racer'], "
             "shrink=False)"],
            env={**os.environ, "REPRO_CAMPAIGN_CRASH_AFTER": "3",
                 "PYTHONPATH": os.pathsep.join(sys.path)},
            capture_output=True).returncode
        assert code == 9  # os._exit(9): the simulated kill -9

        partial = campaign_report(crashed)
        assert 0 < partial["total"] < 6 and partial["pending"] > 0

        resumed = run_campaign(crashed, resume=True, shrink=False)
        # point files must match the uninterrupted run byte for byte
        def point_bytes(root):
            points = {}
            for name in os.listdir(os.path.join(root, "points")):
                with open(os.path.join(root, "points", name), "rb") as fh:
                    points[name] = fh.read()
            return points
        assert point_bytes(reference) == point_bytes(crashed)
        assert resumed["total"] == 6 and resumed["failures"] == 6


class TestCampaignCli:
    def test_run_report_replay(self, tmp_path, capsys):
        from repro.cli import main
        out = str(tmp_path / "c")
        code = main(["campaign", "run", out, "--seed", "2", "-n", "4",
                     "--apps", "racer"])
        assert code == 0
        text = capsys.readouterr().out
        assert "finding" in text
        artifacts = sorted(os.listdir(os.path.join(out, "artifacts")))
        assert artifacts

        assert main(["campaign", "report", out]) == 0
        assert "CHK101" in capsys.readouterr().out

        artifact = os.path.join(out, "artifacts", artifacts[0])
        assert main(["campaign", "replay", artifact]) == 0
        assert "verified" in capsys.readouterr().out

    def test_resume_via_cli(self, tmp_path, capsys):
        from repro.cli import main
        out = str(tmp_path / "c")
        assert main(["campaign", "run", out, "--seed", "3", "-n", "3"]) == 0
        capsys.readouterr()
        assert main(["campaign", "resume", out]) == 0
        assert "run: 3" in capsys.readouterr().out
