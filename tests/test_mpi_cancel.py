"""MPI_Cancel: Request.cancel() and Status.cancelled propagation."""

import numpy as np
import pytest

from repro.mpi.request import waitall
from repro.runtime import World
from tests.helpers import run_ranks, run_same


def test_cancel_unmatched_recv():
    world = World(num_nodes=2, procs_per_node=1)
    seen = {}

    def rank0(proc):
        buf = np.zeros(4)
        req = yield from proc.comm_world.Irecv(buf, source=1, tag=5)
        yield proc.sim.timeout(1e-6)
        seen["cancelled"] = req.cancel()
        status = yield from req.wait()
        seen["status"] = status

    def rank1(proc):
        yield proc.sim.timeout(1e-9)  # sends nothing

    run_ranks(world, rank0, rank1)
    assert seen["cancelled"] is True
    assert seen["status"].cancelled is True
    assert seen["status"].count == 0


def test_cancel_reports_false_after_completion():
    world = World(num_nodes=2, procs_per_node=1)
    outcomes = {}

    def rank0(proc):
        yield from proc.comm_world.Send(np.arange(2.0), dest=1, tag=0)

    def rank1(proc):
        buf = np.zeros(2)
        req = yield from proc.comm_world.Irecv(buf, source=0, tag=0)
        status = yield from req.wait()
        outcomes["cancel_after_done"] = req.cancel()
        outcomes["status"] = status

    run_ranks(world, rank0, rank1)
    assert outcomes["cancel_after_done"] is False
    assert outcomes["status"].cancelled is False
    assert outcomes["status"].count == 2


def test_cancel_send_request_is_refused():
    """Send requests cannot be cancelled (they are not in a posted
    queue); the send still completes normally."""
    world = World(num_nodes=2, procs_per_node=1)
    outcomes = {}

    def rank0(proc):
        req = yield from proc.comm_world.Isend(np.arange(2.0), dest=1,
                                               tag=0)
        outcomes["cancel_send"] = req.cancel()
        yield from req.wait()

    def rank1(proc):
        buf = np.zeros(2)
        yield from proc.comm_world.Recv(buf, source=0, tag=0)
        outcomes["data"] = buf.copy()

    run_ranks(world, rank0, rank1)
    assert outcomes["cancel_send"] is False
    assert np.array_equal(outcomes["data"], np.arange(2.0))


def test_cancel_vs_match_race():
    """A receive posted just before a matching message arrives: exactly
    one of {cancel, match} wins, decided atomically by the matching
    engine. Whoever wins, the state is consistent — a cancelled request
    never carries data, a matched one never reports cancelled."""
    for delay_ns in (1, 500, 1000, 2000, 5000):
        world = World(num_nodes=2, procs_per_node=1)
        outcomes = {}

        def rank0(proc, delay=delay_ns * 1e-9):
            buf = np.zeros(2)
            req = yield from proc.comm_world.Irecv(buf, source=1, tag=1)
            yield proc.sim.timeout(delay)
            outcomes["cancelled"] = req.cancel()
            if not outcomes["cancelled"]:
                status = yield from req.wait()
                outcomes["count"] = status.count
                outcomes["data"] = buf.copy()
            else:
                status = yield from req.wait()
                assert status.cancelled
                outcomes["count"] = status.count

        def rank1(proc):
            yield from proc.comm_world.Send(np.arange(2.0), dest=0, tag=1)

        run_ranks(world, rank0, rank1)
        if outcomes["cancelled"]:
            assert outcomes["count"] == 0
        else:
            assert outcomes["count"] == 2
            assert np.array_equal(outcomes["data"], np.arange(2.0))


def test_cancel_is_idempotent_and_visible_via_test_and_waitall():
    world = World(num_nodes=1, procs_per_node=1)
    outcomes = {}

    def rank0(proc):
        bufs = [np.zeros(1), np.zeros(1)]
        r_stuck = yield from proc.comm_world.Irecv(bufs[0], source=0,
                                                   tag=99)
        r_ok = yield from proc.comm_world.Irecv(bufs[1], source=0, tag=1)
        yield from proc.comm_world.Send(np.array([7.0]), dest=0, tag=1)
        assert r_stuck.cancel() is True
        assert r_stuck.cancel() is False          # second cancel: no-op
        outcomes["test"] = r_stuck.test()
        statuses = yield from waitall([r_stuck, r_ok])
        outcomes["statuses"] = statuses
        outcomes["data"] = bufs[1].copy()

    run_same(world, rank0)
    assert outcomes["test"].cancelled is True
    stuck, ok = outcomes["statuses"]
    assert stuck.cancelled is True and ok.cancelled is False
    assert np.array_equal(outcomes["data"], np.array([7.0]))


def test_cancel_works_on_lossy_fabric():
    """Cancelling an unmatched receive must not confuse the reliable
    transport (its in-order delivery is per-flow, not per-request)."""
    from repro.faults import FaultPlan
    world = World(num_nodes=2, procs_per_node=1,
                  faults=FaultPlan(drop=0.2, dup=0.1), seed=4)
    seen = {}

    def rank0(proc):
        doomed = np.zeros(1)
        req = yield from proc.comm_world.Irecv(doomed, source=1, tag=42)
        buf = np.zeros(4)
        yield from proc.comm_world.Recv(buf, source=1, tag=0)
        seen["data"] = buf.copy()
        seen["cancelled"] = req.cancel()
        status = yield from req.wait()
        seen["cancel_status"] = status

    def rank1(proc):
        yield from proc.comm_world.Send(np.arange(4.0), dest=0, tag=0)

    run_ranks(world, rank0, rank1)
    assert np.array_equal(seen["data"], np.arange(4.0))
    assert seen["cancelled"] is True
    assert seen["cancel_status"].cancelled is True
