"""Tests for the device-initiated communication proxy (Lesson 20)."""

import pytest

from repro.apps.device import DeviceConfig, DeviceParams, run_device
from repro.errors import MpiUsageError


@pytest.mark.parametrize("mechanism", ["host-driven", "device-partitioned",
                                       "device-mpi"])
def test_device_exchange_correct(mechanism):
    r = run_device(DeviceConfig(mechanism=mechanism, blocks=4, timesteps=4))
    assert r.correct


def test_device_config_validation():
    with pytest.raises(MpiUsageError):
        DeviceConfig(mechanism="telepathy")
    with pytest.raises(MpiUsageError):
        DeviceConfig(num_nodes=4)


def test_lesson20_partitioned_best_for_device():
    base = dict(blocks=8, timesteps=5)
    t_host = run_device(DeviceConfig(mechanism="host-driven", **base))
    t_part = run_device(DeviceConfig(mechanism="device-partitioned", **base))
    t_dmpi = run_device(DeviceConfig(mechanism="device-mpi", **base))
    assert t_part.time_per_step < t_host.time_per_step
    assert t_part.time_per_step < t_dmpi.time_per_step


def test_persistent_kernel_single_launch():
    r = run_device(DeviceConfig(mechanism="device-partitioned", blocks=4,
                                timesteps=7))
    assert r.kernel_launches == 1
    r = run_device(DeviceConfig(mechanism="host-driven", blocks=4,
                                timesteps=7))
    assert r.kernel_launches == 7


def test_launch_latency_drives_host_cost():
    """Doubling the kernel-launch latency hurts the host-driven mode far
    more than the persistent-kernel modes."""
    slow = DeviceParams(kernel_launch=32e-6)
    # enough timesteps to amortize the persistent kernel's single launch
    base = dict(blocks=4, timesteps=20)
    fast_host = run_device(DeviceConfig(mechanism="host-driven", **base))
    slow_host = run_device(DeviceConfig(mechanism="host-driven",
                                        params=slow, **base))
    fast_part = run_device(DeviceConfig(mechanism="device-partitioned",
                                        **base))
    slow_part = run_device(DeviceConfig(mechanism="device-partitioned",
                                        params=slow, **base))
    host_hit = slow_host.time_per_step / fast_host.time_per_step
    part_hit = slow_part.time_per_step / fast_part.time_per_step
    assert host_hit > 1.5
    assert part_hit < 1.2


def test_device_runs_deterministic():
    cfg = DeviceConfig(mechanism="device-partitioned", blocks=4, timesteps=3)
    assert run_device(cfg).wall_time == run_device(cfg).wall_time
