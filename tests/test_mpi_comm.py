"""Communicator management tests: dup, VCI assignment, hints, serial
collectives (repro.mpi.comm)."""

import numpy as np
import pytest

from repro.errors import MpiUsageError
from repro.mpi import Info, SingleVciMap, TagBitsVciMap
from repro.runtime import World

from tests.helpers import run_ranks, run_same


def test_comm_world_properties(world2):
    comm = world2.comm_world(0)
    assert comm.Get_rank() == 0
    assert comm.Get_size() == 2
    assert comm.context_id == 0
    assert comm.coll_context_id == 1
    assert isinstance(comm.vci_map, SingleVciMap)


def test_dup_gets_fresh_context_everywhere_consistent(world2):
    def worker(proc):
        c1 = yield from proc.comm_world.Dup()
        c2 = yield from proc.comm_world.Dup()
        return (c1.context_id, c2.context_id)

    results = run_same(world2, worker)
    assert results[0] == results[1]          # agree across ranks
    a, b = results[0]
    assert a != b and a != 0 and a % 4 == 0  # fresh, stride-4 ids


def test_dup_usable_for_pt2pt(world2):
    def worker(proc):
        dup = yield from proc.comm_world.Dup()
        if proc.rank == 0:
            yield from dup.Send(np.full(2, 8.0), dest=1, tag=0)
        else:
            buf = np.zeros(2)
            yield from dup.Recv(buf, source=0, tag=0)
            assert np.allclose(buf, 8.0)

    run_same(world2, worker)


def test_messages_do_not_cross_communicators(world2):
    """Same rank+tag on different comms must not match (the communicator
    isolation that makes comm-based parallelism legal)."""
    def sender(proc):
        dup = yield from proc.comm_world.Dup()
        yield from proc.comm_world.Send(np.full(1, 1.0), dest=1, tag=0)
        yield from dup.Send(np.full(1, 2.0), dest=1, tag=0)

    def receiver(proc):
        dup = yield from proc.comm_world.Dup()
        buf = np.zeros(1)
        yield from dup.Recv(buf, source=0, tag=0)
        assert buf[0] == 2.0
        yield from proc.comm_world.Recv(buf, source=0, tag=0)
        assert buf[0] == 1.0

    run_ranks(world2, sender, receiver)


def test_dups_spread_over_vcis():
    """With a large pool, distinct dups land on distinct VCIs (this is the
    communicator mechanism for exposing parallelism)."""
    world = World(num_nodes=2, procs_per_node=1, max_vcis_per_proc=64)

    def worker(proc):
        vcis = set()
        for _ in range(8):
            c = yield from proc.comm_world.Dup()
            vcis.add(c.vci_map.index)
        return len(vcis)

    distinct = run_same(world, worker)
    assert distinct[0] >= 6  # hash collisions possible but rare


def test_single_vci_pool_collapses_comm_parallelism():
    """With max_vcis=1 ("original" MPI_THREAD_MULTIPLE), every comm maps
    to VCI 0 no matter how many are created."""
    world = World(num_nodes=2, procs_per_node=1, max_vcis_per_proc=1)

    def worker(proc):
        ids = set()
        for _ in range(4):
            c = yield from proc.comm_world.Dup()
            ids.add(c.vci_map.index)
        return ids

    assert run_same(world, worker) == [{0}, {0}]


def test_dup_with_tag_hints_creates_tagbits_map(world2):
    def worker(proc):
        info = Info({
            "mpi_assert_no_any_tag": "true",
            "mpi_assert_no_any_source": "true",
            "mpich_num_vcis": "4",
            "mpich_num_tag_bits_vci": "2",
            "mpich_tag_vci_hash_type": "one-to-one",
        })
        comm = yield from proc.comm_world.Dup(info)
        assert isinstance(comm.vci_map, TagBitsVciMap)
        return comm.vci_map.n

    assert run_same(world2, worker) == [4, 4]


def test_concurrent_collectives_on_one_comm_rejected(world2):
    """MPI requires collectives on a communicator to be issued serially;
    two threads entering Allreduce on the same comm is an error."""
    def worker(proc):
        comm = proc.comm_world
        errors = []

        def coll_thread():
            try:
                yield from comm.Allreduce(np.zeros(1024), np.zeros(1024))
            except MpiUsageError as exc:
                errors.append(exc)

        t1 = proc.spawn(coll_thread())
        t2 = proc.spawn(coll_thread())
        yield proc.sim.all_of([t1, t2])
        return len(errors)

    # On each process exactly one of the two threads must fail...
    results = run_same(world2, worker, max_steps=None)
    assert all(n == 1 for n in results)


def test_sequential_collectives_fine(world2):
    def worker(proc):
        comm = proc.comm_world
        out = np.zeros(4)
        yield from comm.Allreduce(np.ones(4), out)
        yield from comm.Allreduce(np.ones(4), out)
        assert np.allclose(out, 2.0)

    run_same(world2, worker)


def test_collectives_on_distinct_dups_run_concurrently(world2):
    """The paper's legal route: parallel collectives need distinct comms."""
    def worker(proc):
        c1 = yield from proc.comm_world.Dup()
        c2 = yield from proc.comm_world.Dup()

        def coll(comm):
            out = np.zeros(8)
            yield from comm.Allreduce(np.full(8, 1.0), out)
            assert np.allclose(out, 2.0)

        t1 = proc.spawn(coll(c1))
        t2 = proc.spawn(coll(c2))
        yield proc.sim.all_of([t1, t2])

    run_same(world2, worker)


def test_double_free_rejected(world2):
    comm_obj = {}

    def worker(proc):
        c = yield from proc.comm_world.Dup()
        c.Free()
        with pytest.raises(MpiUsageError):
            c.Free()

    run_same(world2, worker)
