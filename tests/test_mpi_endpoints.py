"""User-visible endpoints tests (repro.mpi.endpoints)."""

import numpy as np
import pytest

from repro.errors import MpiUsageError
from repro.mpi import ANY_SOURCE, ANY_TAG, waitall
from repro.mpi.endpoints import comm_create_endpoints
from repro.mpi.vci import EndpointVciMap
from repro.runtime import World

from tests.helpers import run_same


def test_endpoint_ranks_follow_listing3_layout(world2):
    """With uniform N endpoints/process, ep j of rank p has rank p*N+j."""
    def worker(proc):
        eps = yield from comm_create_endpoints(proc.comm_world, 3)
        return [e.rank for e in eps]

    ranks = run_same(world2, worker)
    assert ranks == [[0, 1, 2], [3, 4, 5]]


def test_nonuniform_endpoint_counts(world2):
    def worker(proc):
        n = 2 if proc.rank == 0 else 4
        eps = yield from comm_create_endpoints(proc.comm_world, n)
        return [e.rank for e in eps], eps[0].size

    out = run_same(world2, worker)
    assert out[0] == ([0, 1], 6)
    assert out[1] == ([2, 3, 4, 5], 6)


def test_each_endpoint_gets_distinct_vci(world2):
    def worker(proc):
        eps = yield from comm_create_endpoints(proc.comm_world, 4)
        vcis = [e.vci_map.my_vci for e in eps]
        assert all(isinstance(e.vci_map, EndpointVciMap) for e in eps)
        return vcis

    out = run_same(world2, worker)
    assert len(set(out[0])) == 4
    assert len(set(out[1])) == 4


def test_endpoint_to_endpoint_traffic(world2):
    """Each thread drives its own endpoint; cross-process exchange."""
    N = 4

    def main(proc):
        eps = yield from comm_create_endpoints(proc.comm_world, N)

        def thread(ep):
            peer = (ep.rank + N) % (2 * N)
            out = np.zeros(8)
            rreq = yield from ep.Irecv(out, peer, tag=0)
            sreq = yield from ep.Isend(np.full(8, float(ep.rank)), peer, tag=0)
            yield from waitall([rreq, sreq])
            assert np.allclose(out, peer)
            return True

        tasks = [proc.spawn(thread(ep)) for ep in eps]
        vals = yield proc.sim.all_of(tasks)
        return vals

    assert run_same(world2, main) == [[True] * N, [True] * N]


def test_endpoints_allow_wildcards(world2):
    """Lesson 11: endpoints keep wildcards legal — a polling endpoint can
    use ANY_SOURCE/ANY_TAG while other endpoints run in parallel."""
    def main(proc):
        eps = yield from comm_create_endpoints(proc.comm_world, 2)
        if proc.rank == 1:
            def poller(ep):
                got = []
                for _ in range(2):
                    buf = np.zeros(1)
                    st = yield from ep.Recv(buf, ANY_SOURCE, ANY_TAG)
                    got.append((st.source, buf[0]))
                return got
            t = proc.spawn(poller(eps[0]))
            vals = yield proc.sim.all_of([t])
            srcs = {s for s, _ in vals[0]}
            assert srcs == {0, 1}
        else:
            def pusher(ep, target):
                yield from ep.Send(np.full(1, float(ep.rank)), target, tag=7)
            tasks = [proc.spawn(pusher(ep, 2)) for ep in eps]
            yield proc.sim.all_of(tasks)

    run_same(world2, main)


def test_endpoints_same_process_communication(world2):
    """Two endpoints of the same process can exchange messages."""
    def main(proc):
        eps = yield from comm_create_endpoints(proc.comm_world, 2)
        base = proc.rank * 2

        def a(ep):
            yield from ep.Send(np.full(1, 3.25), base + 1, tag=0)

        def b(ep):
            buf = np.zeros(1)
            st = yield from ep.Recv(buf, base, tag=0)
            assert buf[0] == 3.25 and st.source == base
            return True

        tasks = [proc.spawn(a(eps[0])), proc.spawn(b(eps[1]))]
        vals = yield proc.sim.all_of(tasks)
        return vals[1]

    assert run_same(world2, main) == [True, True]


def test_endpoint_collectives(world2):
    """All endpoints participate in one collective of the endpoints comm —
    the one-step collective of Lesson 18."""
    N = 3

    def main(proc):
        eps = yield from comm_create_endpoints(proc.comm_world, N)

        def thread(ep):
            recv = np.zeros(4)
            yield from ep.Allreduce(np.full(4, float(ep.rank + 1)), recv)
            total = sum(range(1, 2 * N + 1))
            assert np.allclose(recv, total), (ep.rank, recv)
            return True

        tasks = [proc.spawn(thread(ep)) for ep in eps]
        return (yield proc.sim.all_of(tasks))

    assert run_same(world2, main) == [[True] * N, [True] * N]


def test_endpoint_dup_rejected(world2):
    def main(proc):
        eps = yield from comm_create_endpoints(proc.comm_world, 1)
        with pytest.raises(MpiUsageError):
            yield from eps[0].Dup()

    run_same(world2, main)


def test_negative_ep_count_rejected(world2):
    def main(proc):
        with pytest.raises(MpiUsageError):
            yield from comm_create_endpoints(proc.comm_world, -1)

    # Only rank 0 raises pre-meeting; give both the same behaviour.
    run_same(world2, main)


def test_two_endpoint_sets_are_independent(world2):
    """Creating a second set of endpoints yields a different context."""
    def main(proc):
        a = yield from comm_create_endpoints(proc.comm_world, 2)
        b = yield from comm_create_endpoints(proc.comm_world, 2)
        assert a[0].context_id != b[0].context_id
        return True

    assert run_same(world2, main) == [True, True]
