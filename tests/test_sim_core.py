"""Unit tests for the discrete-event kernel (repro.sim.core)."""

import pytest

from repro.sim import AllOf, AnyOf, Event, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    done = {}

    def task():
        yield sim.timeout(1.5)
        done["t"] = sim.now

    sim.spawn(task())
    sim.run()
    assert done["t"] == pytest.approx(1.5)


def test_timeout_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_timeout_carries_value():
    sim = Simulator()
    result = {}

    def task():
        v = yield sim.timeout(1.0, value="hello")
        result["v"] = v

    sim.spawn(task())
    sim.run()
    assert result["v"] == "hello"


def test_events_process_in_time_order():
    sim = Simulator()
    order = []

    def task(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.spawn(task(3.0, "c"))
    sim.spawn(task(1.0, "a"))
    sim.spawn(task(2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo_by_schedule_order():
    sim = Simulator()
    order = []

    def task(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abcd":
        sim.spawn(task(tag))
    sim.run()
    assert order == list("abcd")


def test_process_return_value_propagates():
    sim = Simulator()

    def inner():
        yield sim.timeout(1.0)
        return 42

    def outer(results):
        value = yield sim.spawn(inner())
        results.append(value)

    results = []
    sim.spawn(outer(results))
    sim.run()
    assert results == [42]


def test_process_exception_propagates_to_joiner():
    sim = Simulator()

    def failing():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def joiner(log):
        try:
            yield sim.spawn(failing())
        except ValueError as exc:
            log.append(str(exc))

    log = []
    sim.spawn(joiner(log))
    sim.run()
    assert log == ["boom"]


def test_unhandled_process_exception_fails_process_event():
    sim = Simulator()

    def failing():
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    proc = sim.spawn(failing())
    sim.run()
    assert proc.triggered
    assert not proc.ok
    with pytest.raises(RuntimeError):
        _ = proc.value


def test_event_succeed_once_only():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_yield_non_event_raises():
    sim = Simulator()

    def bad():
        yield 3.0  # not an Event

    proc = sim.spawn(bad())
    sim.run()
    assert proc.triggered and not proc.ok
    with pytest.raises(SimulationError):
        _ = proc.value


def test_spawn_requires_generator():
    sim = Simulator()

    def not_a_gen():
        return 5

    with pytest.raises(TypeError):
        sim.spawn(not_a_gen)  # function, not generator


def test_run_until_time_stops_clock_there():
    sim = Simulator()

    def ticker(log):
        while True:
            yield sim.timeout(1.0)
            log.append(sim.now)

    log = []
    sim.spawn(ticker(log))
    sim.run(until=5.5)
    assert sim.now == pytest.approx(5.5)
    assert log == pytest.approx([1.0, 2.0, 3.0, 4.0, 5.0])


def test_run_until_event_returns_value():
    sim = Simulator()

    def task():
        yield sim.timeout(2.0)
        return "done"

    proc = sim.spawn(task())
    assert sim.run(until=proc) == "done"
    assert sim.now == pytest.approx(2.0)


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    never = sim.event()

    def waiter():
        yield never

    sim.spawn(waiter())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run(until=never)


def test_max_steps_guard():
    sim = Simulator()

    def spinner():
        while True:
            yield sim.timeout(0.0)

    sim.spawn(spinner())
    with pytest.raises(SimulationError, match="max_steps"):
        sim.run(max_steps=100)


def test_all_of_collects_values_in_order():
    sim = Simulator()

    def task(delay, value):
        yield sim.timeout(delay)
        return value

    def main(out):
        procs = [sim.spawn(task(3.0, "x")), sim.spawn(task(1.0, "y"))]
        values = yield sim.all_of(procs)
        out.append(values)

    out = []
    sim.spawn(main(out))
    sim.run()
    assert out == [["x", "y"]]
    assert sim.now == pytest.approx(3.0)


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    ev = sim.all_of([])
    sim.run()
    assert ev.processed and ev.value == []


def test_all_of_fails_on_first_child_failure():
    sim = Simulator()

    def ok():
        yield sim.timeout(5.0)

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("child failed")

    def main(log):
        try:
            yield sim.all_of([sim.spawn(ok()), sim.spawn(bad())])
        except ValueError as exc:
            log.append((sim.now, str(exc)))

    log = []
    sim.spawn(main(log))
    sim.run()
    assert log[0][1] == "child failed"
    assert log[0][0] == pytest.approx(1.0)


def test_any_of_returns_first_index_and_value():
    sim = Simulator()

    def task(delay, value):
        yield sim.timeout(delay)
        return value

    def main(out):
        result = yield sim.any_of([sim.spawn(task(3.0, "slow")),
                                   sim.spawn(task(1.0, "fast"))])
        out.append((sim.now, result))

    out = []
    sim.spawn(main(out))
    sim.run()
    assert out == [(1.0, (1, "fast"))]


def test_any_of_requires_events():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.any_of([])


def test_callback_on_already_processed_event_runs_immediately():
    sim = Simulator()
    ev = sim.timeout(1.0)
    sim.run()
    hits = []
    ev.add_callback(lambda e: hits.append(e.value))
    assert hits == [None]


def test_nested_process_tree_times():
    sim = Simulator()

    def leaf(d):
        yield sim.timeout(d)
        return d

    def mid():
        a = yield sim.spawn(leaf(1.0))
        b = yield sim.spawn(leaf(2.0))
        return a + b

    proc = sim.spawn(mid())
    assert sim.run(until=proc) == pytest.approx(3.0)
    assert sim.now == pytest.approx(3.0)


def test_deterministic_step_count():
    def build():
        sim = Simulator()

        def task(i):
            for _ in range(10):
                yield sim.timeout(0.5 + 0.1 * i)

        for i in range(5):
            sim.spawn(task(i))
        sim.run()
        return sim.steps, sim.now

    assert build() == build()


def test_completed_processes_are_pruned():
    """The process table must not grow with completed tasks (it is only
    needed for deadlock reporting, which concerns *alive* processes)."""
    sim = Simulator()

    def task():
        yield sim.timeout(1.0)

    for _ in range(100):
        sim.spawn(task())
    assert len(sim._processes) == 100
    sim.run()
    assert len(sim._processes) == 0


def test_deadlock_report_still_sees_alive_processes():
    sim = Simulator()

    def finishes():
        yield sim.timeout(1.0)

    def stuck():
        yield Event(sim)  # never triggered

    for _ in range(10):
        sim.spawn(finishes())
    target = sim.spawn(stuck())
    sim.spawn(stuck())
    with pytest.raises(SimulationError, match=r"blocked tasks \(2\)"):
        sim.run(until=target)
    assert len(sim._processes) == 2  # only the stuck ones remain


def test_timeout_pool_recycles_events():
    """Processed timeouts are recycled through the free list, and a
    recycled timeout behaves like a fresh one."""
    sim = Simulator()

    def task():
        for _ in range(50):
            yield sim.timeout(0.25)

    sim.spawn(task())
    sim.run()
    assert 0 < len(sim._timeout_pool) <= sim._POOL_MAX
    t0 = sim.now

    def again():
        yield sim.timeout(2.0)

    sim.spawn(again())
    sim.run()
    assert sim.now == pytest.approx(t0 + 2.0)


def test_timeout_pool_not_poisoned_by_held_references():
    """A timeout the user still references must not be recycled."""
    sim = Simulator()
    held = []

    def task():
        t = sim.timeout(1.0)
        held.append(t)
        yield t

    sim.spawn(task())
    sim.run()
    assert held[0].triggered
    assert all(ev is not held[0] for ev in sim._timeout_pool)
