"""Property battery: snapshot -> restore -> run is byte-identical.

The snapshot subsystem's contract is exact: for ANY workload, seed and
mechanism, interrupting a run at ANY kernel step, snapshotting,
restoring (optionally through disk), and running to completion must
produce a final state byte-identical to the uninterrupted run — final
metrics, trace digest, message bytes, and the simulated clock compare
with exact float equality, not tolerances. Hypothesis drives random
workload shapes (pt2pt, collectives, sendrecv rings, endpoints; with
and without instruments and fault injection) and random cut points.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import parse_plan
from repro.mpi.endpoints import comm_create_endpoints
from repro.obs import MetricsRegistry, Tracer
from repro.runtime import World
from repro.snap import (
    SnapController,
    capture_state,
    load_snapshot,
    recording,
    restore_snapshot,
    save_snapshot,
    state_digest,
    take_snapshot,
)

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow,
                                           HealthCheck.data_too_large])

KINDS = ("pt2pt", "allreduce", "ring", "endpoints")


@st.composite
def workload_specs(draw):
    kind = draw(st.sampled_from(KINDS))
    return {
        "kind": kind,
        "seed": draw(st.integers(0, 2**20)),
        "threads": draw(st.integers(1, 3)),
        "nmsg": draw(st.integers(2, 8)),
        # Spans the eager/rendezvous protocol switch.
        "nbytes": draw(st.sampled_from([8, 256, 4096, 32768])),
        "instruments": draw(st.booleans()),
        "faults": (draw(st.booleans())
                   if kind in ("pt2pt", "ring") else False),
    }


def make_build(spec):
    """A repeatable builder: each call returns a fresh world with the
    spec's workload spawned but nothing run."""
    elems = max(1, spec["nbytes"] // 8)

    def build():
        w = World(
            num_nodes=2, procs_per_node=1,
            threads_per_proc=spec["threads"], seed=spec["seed"],
            metrics=MetricsRegistry() if spec["instruments"] else None,
            tracer=Tracer() if spec["instruments"] else None,
            faults=(parse_plan("drop=0.03,dup=0.01")
                    if spec["faults"] else None))
        if spec["kind"] == "pt2pt":
            def sender(proc, tid):
                for i in range(spec["nmsg"]):
                    yield from proc.comm_world.Send(
                        np.full(elems, float(i)), dest=1,
                        tag=tid * 100 + i)

            def receiver(proc, tid):
                for i in range(spec["nmsg"]):
                    buf = np.zeros(elems)
                    yield from proc.comm_world.Recv(
                        buf, source=0, tag=tid * 100 + i)

            for tid in range(spec["threads"]):
                w.procs[0].spawn(sender(w.procs[0], tid))
                w.procs[1].spawn(receiver(w.procs[1], tid))
        elif spec["kind"] == "allreduce":
            def member(proc):
                data = np.arange(elems, dtype=np.float64) + proc.rank
                for _ in range(spec["nmsg"]):
                    out = np.zeros(elems)
                    yield from proc.comm_world.Allreduce(data, out)
            for proc in w.procs:
                proc.spawn(member(proc))
        elif spec["kind"] == "ring":
            def member(proc):
                comm = proc.comm_world
                n = comm.Get_size()
                for i in range(spec["nmsg"]):
                    out = np.full(elems, float(proc.rank))
                    buf = np.zeros(elems)
                    yield from comm.Sendrecv(
                        out, dest=(proc.rank + 1) % n, sendtag=i,
                        recvbuf=buf, source=(proc.rank - 1) % n,
                        recvtag=i)
                    yield from comm.Barrier()
            for proc in w.procs:
                proc.spawn(member(proc))
        else:  # endpoints
            nt = spec["threads"]

            def node(proc):
                eps = yield from comm_create_endpoints(proc.comm_world, nt)

                def thread(ep):
                    peer = (ep.rank + nt) % (2 * nt)
                    yield from ep.Send(np.full(elems, float(ep.rank)),
                                       dest=peer, tag=0)
                    buf = np.zeros(elems)
                    yield from ep.Recv(buf, source=peer, tag=0)
                for ep in eps:
                    proc.spawn(thread(ep))
            for proc in w.procs:
                proc.spawn(node(proc))
        return w

    return build


def _final_bytes(state):
    """Total message bytes issued across all NIC contexts."""
    return sum(ctx["bytes_issued"]
               for nic in state["nics"].values()
               for ctx in nic["contexts"])


@given(spec=workload_specs(), frac=st.floats(0.0, 1.0))
@SETTINGS
def test_snapshot_restore_run_is_byte_identical(spec, frac):
    build = make_build(spec)
    ref = build()
    ref.run()
    ref_state = capture_state(ref)
    ref_digest = state_digest(ref_state)
    total = ref.sim.steps
    assert total > 0

    cut = min(total - 1, int(total * frac))
    interrupted = build()
    interrupted.sim.run_steps(cut)
    snap = take_snapshot(interrupted)
    assert snap.step == cut
    # restore_snapshot itself verifies byte-identity AT the cut point;
    # then both halves must finish identically to the uninterrupted run.
    restored = restore_snapshot(snap, build)
    interrupted.run()
    restored.run()
    state_i = capture_state(interrupted)
    state_r = capture_state(restored)
    assert state_digest(state_i) == ref_digest
    assert state_digest(state_r) == ref_digest
    # The digest already covers these, but the contract is worth naming:
    # exact equality of final metrics, trace, message bytes, and clock.
    assert state_r["metrics"] == ref_state["metrics"]
    assert state_r["trace"] == ref_state["trace"]
    assert _final_bytes(state_r) == _final_bytes(ref_state)
    assert state_r["kernel"]["now"] == ref_state["kernel"]["now"]


@given(spec=workload_specs(), frac=st.floats(0.0, 1.0))
@SETTINGS
def test_disk_roundtrip_preserves_identity(spec, frac, tmp_path_factory):
    build = make_build(spec)
    ref = build()
    ref.run()
    cut = min(ref.sim.steps - 1, int(ref.sim.steps * frac))

    w = build()
    w.sim.run_steps(cut)
    path = tmp_path_factory.mktemp("snap") / "s.json"
    save_snapshot(take_snapshot(w), path)
    restored = restore_snapshot(load_snapshot(path), build)
    restored.run()
    assert state_digest(capture_state(restored)) == \
        state_digest(capture_state(ref))


@given(spec=workload_specs(), interval=st.integers(1, 64))
@SETTINGS
def test_sliced_execution_is_invisible(spec, interval):
    """Driving a world in controller slices of ANY interval produces the
    same event order, clock and final state as one uninterrupted run."""
    build = make_build(spec)
    ref = build()
    ref.run()
    with recording(SnapController(interval=interval)):
        sliced = build()
        sliced.run()
    assert sliced.sim.steps == ref.sim.steps
    assert state_digest(capture_state(sliced)) == \
        state_digest(capture_state(ref))
