"""Background-traffic injectors (repro.netsim.traffic)."""

import numpy as np
import pytest

from repro.errors import TrafficConfigError
from repro.faults import FaultPlan
from repro.netsim.traffic import TRAFFIC_KINDS, TrafficShape, install_traffic
from repro.runtime import World
from repro.snap import capture_state, state_digest


def _run_traffic(shape, seed=0, nodes=3, faults=None):
    world = World(num_nodes=nodes, procs_per_node=1, faults=faults)
    tasks = install_traffic(world, shape, seed)
    world.run_all(tasks, max_steps=None)
    world.run()  # drain in-flight deliveries past the last send
    return world


class TestTrafficShape:
    def test_roundtrip(self):
        shape = TrafficShape(kind="bursty", flows=3, msgs_per_flow=5,
                             size=128, vcis=2)
        assert TrafficShape.from_dict(shape.to_dict()) == shape

    def test_unknown_key_rejected(self):
        with pytest.raises(TrafficConfigError):
            TrafficShape.from_dict({"kind": "mice", "wat": 1})

    @pytest.mark.parametrize("kwargs", [
        {"kind": "avalanche"},
        {"flows": -1},
        {"msgs_per_flow": 0},
        {"size": 0},
        {"rate": float("nan")},
        {"alpha": 0.0},
        {"vcis": 0},
    ])
    def test_eager_validation(self, kwargs):
        with pytest.raises(TrafficConfigError):
            TrafficShape(**kwargs)


class TestInjection:
    @pytest.mark.parametrize("kind", TRAFFIC_KINDS)
    def test_all_messages_delivered(self, kind):
        shape = TrafficShape(kind=kind, flows=3, msgs_per_flow=6, size=64)
        world = _run_traffic(shape, seed=2)
        session = world.traffic
        assert session.sent == 3 * 6
        assert session.delivered == 3 * 6
        assert session.bytes_sent > 0

    def test_deterministic_per_seed(self):
        shape = TrafficShape(kind="requests", flows=4, msgs_per_flow=8)
        digests = []
        for _ in range(2):
            world = _run_traffic(shape, seed=7)
            digests.append(state_digest(capture_state(world)))
        assert digests[0] == digests[1]

    def test_different_seed_differs(self):
        shape = TrafficShape(kind="mice", flows=4, msgs_per_flow=8)
        w1 = _run_traffic(shape, seed=1)
        w2 = _run_traffic(shape, seed=2)
        assert (state_digest(capture_state(w1))
                != state_digest(capture_state(w2)))

    def test_no_traffic_leaves_state_tree_unchanged(self):
        world = World(num_nodes=2, procs_per_node=1)
        assert world.traffic is None
        world.run()
        assert "traffic" not in capture_state(world)

    def test_single_proc_world_gets_no_flows(self):
        world = World(num_nodes=1, procs_per_node=1)
        assert install_traffic(world, TrafficShape(), 0) == []

    def test_none_shape_is_noop(self):
        world = World(num_nodes=2, procs_per_node=1)
        assert install_traffic(world, None, 0) == []
        assert world.traffic is None

    def test_lossy_fabric_recovers_all(self):
        shape = TrafficShape(kind="mice", flows=3, msgs_per_flow=5)
        world = _run_traffic(shape, seed=4,
                             faults=FaultPlan(drop=0.2, dup=0.05))
        assert world.traffic.delivered == 3 * 5

    def test_flow_table_in_snapshot_state(self):
        shape = TrafficShape(kind="elephants", flows=2, msgs_per_flow=3)
        world = _run_traffic(shape, seed=5)
        state = capture_state(world)
        assert state["traffic"]["seed"] == 5
        assert len(state["traffic"]["flow_table"]) == 2
        assert state["traffic"]["delivered"] == 6
