"""Stencil application tests: data correctness for every mechanism, and
the performance-shape claims of Fig 1(b) and Lessons 1-3."""

import numpy as np
import pytest

from repro.apps.stencil import (
    DIR_TAGS,
    Patch,
    StencilConfig,
    halo_slices,
    jacobi5,
    jacobi9,
    reference_jacobi,
    run_stencil,
)
from repro.errors import MpiUsageError
from repro.mapping.communicators import STENCIL_2D_5PT, StencilGeometry
from repro.netsim import NetworkConfig


# ---------------------------------------------------------------- field

def test_halo_slices_north():
    send, recv = halo_slices(4, 3, (0, 1))
    patch = np.arange(5 * 6).reshape(5, 6)
    # send = top interior row, recv = top halo row
    assert patch[send].shape == (1, 4)
    assert patch[recv].shape == (1, 4)
    assert (patch[send] == patch[3, 1:5]).all()
    assert (patch[recv] == patch[4, 1:5]).all()


def test_halo_slices_corner():
    send, recv = halo_slices(4, 3, (1, 1))
    patch = np.arange(5 * 6).reshape(5, 6)
    assert patch[send].shape == (1, 1)
    assert patch[send][0, 0] == patch[3, 4]
    assert patch[recv][0, 0] == patch[4, 5]


def test_halo_slices_rejects_bad_direction():
    with pytest.raises(MpiUsageError):
        halo_slices(4, 4, (2, 0))


def test_jacobi5_interior_math():
    data = np.zeros((4, 4))
    data[1, 2] = 4.0  # west neighbour of (1,1)... layout: [y, x]
    patch = Patch(data=data, pnx=2, pny=2)
    out = np.zeros((2, 2))
    jacobi5(patch, out)
    # cell (y=0,x=1) has value 4 -> its neighbours each get 1.0
    assert out[0, 0] == pytest.approx(1.0)
    assert out[1, 1] == pytest.approx(1.0)


def test_jacobi9_is_eight_neighbor_average():
    data = np.ones((3, 3))
    patch = Patch(data=data, pnx=1, pny=1)
    out = np.zeros((1, 1))
    jacobi9(patch, out)
    assert out[0, 0] == pytest.approx(1.0)


def test_reference_matches_manual_iteration():
    geom = StencilGeometry((1, 1), (2, 2), STENCIL_2D_5PT)
    ref1 = reference_jacobi(geom, 3, 3, iters=1, stencil_points=5)
    ref2 = reference_jacobi(geom, 3, 3, iters=1, stencil_points=5)
    assert np.allclose(ref1, ref2)  # deterministic


# ------------------------------------------------------- end-to-end runs

@pytest.mark.parametrize("mechanism", ["original", "tags", "communicators",
                                       "endpoints", "partitioned"])
def test_all_mechanisms_produce_correct_field_5pt(mechanism):
    cfg = StencilConfig(proc_grid=(2, 2), thread_grid=(2, 3), pnx=4, pny=5,
                        stencil_points=5, iters=3, mechanism=mechanism)
    result = run_stencil(cfg)
    assert result.correct, f"max_error={result.max_error}"


@pytest.mark.parametrize("mechanism", ["original", "tags", "communicators",
                                       "endpoints"])
def test_all_mechanisms_produce_correct_field_9pt(mechanism):
    cfg = StencilConfig(proc_grid=(2, 2), thread_grid=(3, 3), pnx=4, pny=4,
                        stencil_points=9, iters=3, mechanism=mechanism)
    assert run_stencil(cfg).correct


@pytest.mark.parametrize("comm_map", ["naive", "mirrored", "corner"])
def test_communicator_map_variants_correct(comm_map):
    cfg = StencilConfig(proc_grid=(2, 2), thread_grid=(3, 3), pnx=3, pny=3,
                        stencil_points=9, iters=2, mechanism="communicators",
                        comm_map=comm_map)
    assert run_stencil(cfg).correct


def test_partitioned_rejects_9pt():
    with pytest.raises(MpiUsageError, match="Lesson 15"):
        StencilConfig(stencil_points=9, mechanism="partitioned")


def test_unknown_mechanism_rejected():
    with pytest.raises(MpiUsageError):
        StencilConfig(mechanism="telepathy")


def test_fig1b_shape_original_slower_than_parallel():
    """Fig 1(b): logically parallel communication beats the original
    MPI_THREAD_MULTIPLE approach for the stencil."""
    base = dict(proc_grid=(2, 2), thread_grid=(3, 3), pnx=4, pny=4,
                stencil_points=9, iters=3)
    t_orig = run_stencil(StencilConfig(mechanism="original", **base))
    t_ep = run_stencil(StencilConfig(mechanism="endpoints", **base))
    t_tags = run_stencil(StencilConfig(mechanism="tags", **base))
    assert t_orig.halo_time > 1.2 * t_ep.halo_time
    assert t_orig.halo_time > 1.2 * t_tags.halo_time


def test_tags_and_endpoints_equivalent_performance():
    """The paper's quantitative companion result: existing mechanisms
    (with hints) perform as well as endpoints."""
    base = dict(proc_grid=(2, 2), thread_grid=(3, 3), pnx=4, pny=4,
                stencil_points=9, iters=3)
    t_ep = run_stencil(StencilConfig(mechanism="endpoints", **base))
    t_tags = run_stencil(StencilConfig(mechanism="tags", **base))
    assert abs(t_tags.halo_time - t_ep.halo_time) / t_ep.halo_time < 0.25


def test_lesson3_endpoints_fewer_resources_than_communicators():
    base = dict(proc_grid=(2, 2), thread_grid=(3, 3), pnx=3, pny=3,
                stencil_points=9, iters=2)
    r_comm = run_stencil(StencilConfig(mechanism="communicators",
                                       comm_map="mirrored", **base))
    r_ep = run_stencil(StencilConfig(mechanism="endpoints", **base))
    assert r_comm.resources_created > 2 * r_ep.resources_created


def test_scarce_contexts_penalize_communicators():
    """Lesson 3's Omni-Path effect: with few NIC hardware contexts, the
    communicator mechanism's many VCIs share contexts and slow down,
    while endpoints (fewer channels) stay unshared."""
    base = dict(proc_grid=(2, 2), thread_grid=(3, 3), pnx=4, pny=4,
                stencil_points=9, iters=3)
    # 12 contexts: enough for the 9+ endpoint channels, not for the ~24
    # communicators the mirrored map commits (cf. 56 vs 808 on Omni-Path).
    net = NetworkConfig.scarce(12)
    r_comm = run_stencil(StencilConfig(mechanism="communicators",
                                       comm_map="mirrored", **base),
                         net=net, max_vcis_per_proc=64)
    r_ep = run_stencil(StencilConfig(mechanism="endpoints", **base),
                       net=net, max_vcis_per_proc=64)
    assert r_comm.nic_oversubscription > r_ep.nic_oversubscription
    assert r_comm.halo_time > r_ep.halo_time


def test_runs_are_deterministic():
    cfg = StencilConfig(proc_grid=(2, 1), thread_grid=(2, 2), pnx=3, pny=3,
                        stencil_points=5, iters=2, mechanism="endpoints")
    a = run_stencil(cfg)
    b = run_stencil(cfg)
    assert a.wall_time == b.wall_time
    assert a.halo_time == b.halo_time


def test_single_process_grid_all_shm():
    """A 1x1 process grid has no inter-process exchanges at all."""
    cfg = StencilConfig(proc_grid=(1, 1), thread_grid=(3, 3), pnx=3, pny=3,
                        stencil_points=9, iters=2, mechanism="endpoints")
    r = run_stencil(cfg)
    assert r.correct


# ------------------------------------------------------- 3D stencils

@pytest.mark.parametrize("mechanism", ["original", "tags", "communicators",
                                       "endpoints"])
def test_3d_27pt_correct(mechanism):
    cfg = StencilConfig(proc_grid=(2, 2, 2), thread_grid=(2, 2, 2),
                        pnx=3, pny=3, pnz=3, stencil_points=27, iters=2,
                        mechanism=mechanism)
    r = run_stencil(cfg)
    assert r.correct, f"max_error={r.max_error}"


def test_3d_7pt_partitioned_correct():
    cfg = StencilConfig(proc_grid=(2, 2, 2), thread_grid=(2, 2, 2),
                        pnx=3, pny=3, pnz=3, stencil_points=7, iters=3,
                        mechanism="partitioned")
    assert run_stencil(cfg).correct


def test_3d_grid_dimension_validation():
    with pytest.raises(MpiUsageError, match="3-dimensional"):
        StencilConfig(proc_grid=(2, 2), thread_grid=(2, 2),
                      stencil_points=27)
    with pytest.raises(MpiUsageError, match="2-dimensional"):
        StencilConfig(proc_grid=(2, 2, 2), thread_grid=(2, 2, 2),
                      stencil_points=9)


def test_3d_hypre_scenario_communicator_penalty():
    """The Lesson 3 headline, simulated end to end: the 3D 27-pt stencil
    with the mirrored communicator map oversubscribes Omni-Path-like
    hardware contexts; endpoints do not."""
    base = dict(proc_grid=(2, 2, 2), thread_grid=(3, 3, 3), pnx=3, pny=3,
                pnz=3, stencil_points=27, iters=2)
    net = NetworkConfig.scarce(40)  # between 27 endpoints and ~300 comms
    r_comm = run_stencil(StencilConfig(mechanism="communicators", **base),
                         net=net, max_vcis_per_proc=512)
    r_ep = run_stencil(StencilConfig(mechanism="endpoints", **base),
                       net=net, max_vcis_per_proc=512)
    assert r_comm.correct and r_ep.correct
    assert r_comm.resources_created > 8 * r_ep.resources_created
    assert r_comm.nic_oversubscription > 1.5 * r_ep.nic_oversubscription
    assert r_comm.halo_time > 1.3 * r_ep.halo_time
