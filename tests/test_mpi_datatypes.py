"""Unit tests for repro.mpi.datatypes."""

import numpy as np
import pytest

from repro.errors import MpiUsageError
from repro.mpi import datatypes as dt


def test_basic_datatype_sizes():
    assert dt.BYTE.size == 1
    assert dt.INT.size == 4
    assert dt.LONG.size == 8
    assert dt.FLOAT.size == 4
    assert dt.DOUBLE.size == 8
    assert dt.COMPLEX.size == 16


def test_datatype_empty_and_zeros():
    a = dt.DOUBLE.empty(5)
    assert a.shape == (5,) and a.dtype == np.float64
    z = dt.INT.zeros(3)
    assert (z == 0).all() and z.dtype == np.int32


def test_from_numpy_roundtrip():
    assert dt.from_numpy(np.float64) is dt.DOUBLE
    assert dt.from_numpy(np.dtype("int32")) is dt.INT


def test_from_numpy_unknown_rejected():
    with pytest.raises(MpiUsageError):
        dt.from_numpy(np.dtype("float16"))


def test_check_buffer_accepts_contiguous():
    buf = np.zeros((3, 4))
    flat = dt.check_buffer(buf)
    assert flat.shape == (12,)
    assert flat.base is buf or flat.base is buf.base


def test_check_buffer_rejects_noncontiguous():
    buf = np.zeros((4, 4))[:, ::2]
    with pytest.raises(MpiUsageError):
        dt.check_buffer(buf)


def test_check_buffer_rejects_lists():
    with pytest.raises(MpiUsageError):
        dt.check_buffer([1.0, 2.0])


def test_check_buffer_count_bounds():
    buf = np.zeros(4)
    dt.check_buffer(buf, 4)
    with pytest.raises(MpiUsageError):
        dt.check_buffer(buf, 5)
    with pytest.raises(MpiUsageError):
        dt.check_buffer(buf, -1)


def test_nbytes():
    assert dt.nbytes(np.zeros(10)) == 80
    assert dt.nbytes(np.zeros(10), count=3) == 24
    assert dt.nbytes(np.zeros(10, dtype=np.int32), count=3) == 12
