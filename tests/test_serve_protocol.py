"""Worker protocol and orchestrator scheduling semantics.

Framing first (tier 1, pure unit): length-prefixed JSON frames must
round-trip under any chunking, and truncated, corrupt or oversized
frames must raise :class:`ProtocolError` — a damaged stream drops the
peer, it never silently drops a job. Then the orchestrator contract
(tier 2, real sockets on one event loop): a worker that stops
heartbeating or drops its connection has its in-flight point requeued
and finished by another worker; a point that *raises* fails the job
immediately; duplicate in-flight points are deduped to one execution.
"""

import asyncio
import socket
import threading
from collections import deque

import pytest

from repro.errors import ProtocolError
from repro.serve.orchestrator import Orchestrator
from repro.serve.points import execute_point
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
    error_frame,
    heartbeat_frame,
    hello_frame,
    job_frame,
    read_frame,
    result_frame,
    write_frame,
)

FRAMES = [
    hello_frame("w0", 4242),
    job_frame("k" * 24, "selftest", {"i": 3}),
    result_frame("k" * 24, {"i": 3, "value": 9}),
    error_frame("k" * 24, "ValueError: boom"),
    heartbeat_frame("w0", busy="k" * 24),
    {"type": "custom", "payload": {"nested": [1, 2.5, "x", None, True]}},
]


# -- framing (tier 1) ------------------------------------------------------
def test_roundtrip_single_feed():
    decoder = FrameDecoder()
    blob = b"".join(encode_frame(f) for f in FRAMES)
    assert decoder.feed(blob) == FRAMES
    assert decoder.pending_bytes == 0
    decoder.close()  # clean boundary: no error


def test_roundtrip_byte_by_byte():
    decoder = FrameDecoder()
    out = []
    for frame in FRAMES:
        for i in range(0, len(blob := encode_frame(frame))):
            out.extend(decoder.feed(blob[i:i + 1]))
    assert out == FRAMES


def test_encoding_is_canonical():
    # Key order must not matter: the wire bytes are sort_keys JSON.
    assert encode_frame({"type": "x", "a": 1, "b": 2}) == \
        encode_frame({"b": 2, "a": 1, "type": "x"})


def test_truncated_frame_raises_on_close():
    decoder = FrameDecoder()
    blob = encode_frame(FRAMES[0])
    decoder.feed(blob[:len(blob) - 3])
    assert decoder.pending_bytes == len(blob) - 3
    with pytest.raises(ProtocolError, match="truncated"):
        decoder.close()


def test_corrupt_payload_raises():
    bad = b'{"type": "x", not json'
    blob = len(bad).to_bytes(4, "big") + bad
    with pytest.raises(ProtocolError, match="corrupt frame payload"):
        FrameDecoder().feed(blob)


def test_payload_without_type_field_raises():
    for payload in (b"[1,2,3]", b'"hi"', b'{"no_type": 1}'):
        blob = len(payload).to_bytes(4, "big") + payload
        with pytest.raises(ProtocolError, match="'type' field"):
            FrameDecoder().feed(blob)


def test_oversize_length_prefix_raises():
    blob = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"x"
    with pytest.raises(ProtocolError, match="exceeds"):
        FrameDecoder().feed(blob)


def test_oversize_frame_refused_at_encode(monkeypatch):
    monkeypatch.setattr("repro.serve.protocol.MAX_FRAME_BYTES", 64)
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_frame({"type": "big", "blob": "x" * 200})


def test_blocking_read_frame_roundtrip_and_clean_eof():
    a, b = socket.socketpair()
    with a, b:
        writer = threading.Thread(target=lambda: (
            [write_frame(a, f) for f in FRAMES], a.close()))
        writer.start()
        got = [read_frame(b) for _ in FRAMES]
        assert got == FRAMES
        assert read_frame(b) is None  # EOF at a frame boundary is clean
        writer.join()


def test_blocking_read_frame_mid_frame_eof_raises():
    a, b = socket.socketpair()
    with b:
        blob = encode_frame(FRAMES[1])
        a.sendall(blob[:len(blob) - 1])
        a.close()
        with pytest.raises(ProtocolError, match="truncated"):
            read_frame(b)


def test_frame_constructors_vocabulary():
    assert hello_frame("w", 1)["protocol"] == PROTOCOL_VERSION
    assert job_frame("t", "selftest", {"i": 0})["type"] == "job"
    assert result_frame("t", {})["ok"] is True
    assert error_frame("t", "boom")["ok"] is False
    assert error_frame("t", "boom")["type"] == "result"


# -- orchestrator scheduling (tier 2) --------------------------------------
class _TestWorker:
    """A scriptable in-loop worker: claim frames, answer (or don't)."""

    def __init__(self, port: int):
        self.port = port
        self.decoder = FrameDecoder()
        self.frames = deque()
        self.jobs_seen = []

    async def connect(self, name="tw", protocol=PROTOCOL_VERSION):
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port)
        await self.send({"type": "hello", "worker": name, "pid": 999,
                         "protocol": protocol})
        return self

    async def send(self, frame):
        self.writer.write(encode_frame(frame))
        await self.writer.drain()

    async def next_frame(self, timeout=5.0):
        while not self.frames:
            data = await asyncio.wait_for(self.reader.read(65536), timeout)
            if not data:
                return None
            self.frames.extend(self.decoder.feed(data))
        return self.frames.popleft()

    async def work_one(self):
        """Claim one job frame and answer it correctly."""
        frame = await self.next_frame()
        assert frame["type"] == "job"
        self.jobs_seen.append(frame)
        result = execute_point(frame["kind"], frame["point"])
        await self.send(result_frame(frame["id"], result))
        return frame

    def close(self):
        self.writer.close()


async def _wait_status(orch, job_id, timeout=10.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while True:
        status = orch.job_status(job_id)
        if status["status"] != "running":
            return status
        assert asyncio.get_event_loop().time() < deadline, status
        await asyncio.sleep(0.02)


@pytest.mark.tier2
def test_heartbeat_timeout_requeues_job(tmp_path):
    async def scenario():
        orch = Orchestrator(str(tmp_path / "s"), heartbeat_timeout=0.3)
        port = await orch.start()
        silent = await _TestWorker(port).connect(name="silent")
        job_id = orch.submit("selftest", {"n": 1})
        claimed = await silent.next_frame()
        assert claimed["type"] == "job"  # silent worker holds the point...
        good = await _TestWorker(port).connect(name="good")
        await good.work_one()            # ...requeued after the timeout
        status = await _wait_status(orch, job_id)
        assert status["status"] == "done"
        assert orch.metrics.value("serve.point.requeued") == 1
        assert orch.job_result(job_id)["results"] == [{"i": 0, "value": 0}]
        assert "silent" not in orch.workers  # declared dead and dropped
        silent.close()
        good.close()
        await orch.stop()

    asyncio.run(scenario())


@pytest.mark.tier2
def test_worker_death_mid_job_requeues(tmp_path):
    async def scenario():
        orch = Orchestrator(str(tmp_path / "s"), heartbeat_timeout=5.0)
        port = await orch.start()
        doomed = await _TestWorker(port).connect(name="doomed")
        job_id = orch.submit("selftest", {"n": 1})
        await doomed.next_frame()  # claim...
        doomed.close()             # ...and die (socket EOF, no result)
        good = await _TestWorker(port).connect(name="good")
        await good.work_one()
        status = await _wait_status(orch, job_id)
        assert status["status"] == "done"
        assert orch.metrics.value("serve.point.requeued") == 1
        good.close()
        await orch.stop()

    asyncio.run(scenario())


@pytest.mark.tier2
def test_requeue_gives_up_after_max_attempts(tmp_path):
    async def scenario():
        orch = Orchestrator(str(tmp_path / "s"), heartbeat_timeout=5.0,
                            max_attempts=2)
        port = await orch.start()
        job_id = orch.submit("selftest", {"n": 1})
        for _attempt in range(2):
            w = await _TestWorker(port).connect(name="flaky")
            await w.next_frame()
            w.close()
        status = await _wait_status(orch, job_id)
        assert status["status"] == "failed"
        assert "gave up after 2 attempts" in status["error"]
        await orch.stop()

    asyncio.run(scenario())


@pytest.mark.tier2
def test_point_exception_fails_job_immediately(tmp_path):
    async def scenario():
        orch = Orchestrator(str(tmp_path / "s"))
        port = await orch.start()
        job_id = orch.submit("selftest", {"n": 2, "fail_at": 1})
        w = await _TestWorker(port).connect()
        frame = await w.next_frame()
        await w.send(error_frame(frame["id"], "ValueError: asked to fail"))
        status = await _wait_status(orch, job_id)
        assert status["status"] == "failed"
        assert "asked to fail" in status["error"]
        assert orch.metrics.value("serve.point.requeued") == 0  # no retry
        w.close()
        await orch.stop()

    asyncio.run(scenario())


@pytest.mark.tier2
def test_inflight_dedupe_one_execution_many_waiters(tmp_path):
    async def scenario():
        orch = Orchestrator(str(tmp_path / "s"))
        port = await orch.start()
        job_a = orch.submit("selftest", {"n": 2})
        job_b = orch.submit("selftest", {"n": 2})  # identical points
        w = await _TestWorker(port).connect()
        await w.work_one()
        await w.work_one()
        for job_id in (job_a, job_b):
            status = await _wait_status(orch, job_id)
            assert status["status"] == "done"
        # Two points existed; two (not four) executions happened.
        assert len(w.jobs_seen) == 2
        assert orch.metrics.value("serve.point.done") == 2
        assert orch.job_result(job_a)["results"] == \
            orch.job_result(job_b)["results"]
        w.close()
        await orch.stop()

    asyncio.run(scenario())


@pytest.mark.tier2
def test_wrong_protocol_version_rejected(tmp_path):
    async def scenario():
        orch = Orchestrator(str(tmp_path / "s"))
        port = await orch.start()
        w = await _TestWorker(port).connect(name="old", protocol=0)
        # The orchestrator hangs up instead of dispatching to it.
        assert await w.next_frame() is None
        assert "old" not in orch.workers
        await orch.stop()

    asyncio.run(scenario())
