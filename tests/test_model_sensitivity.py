"""Model-sensitivity tests: the paper's qualitative conclusions must not
hinge on the exact calibration of any single cost parameter.

Each test perturbs one family of model constants by 2x in both directions
and asserts that the *ordering* claims survive — the reproduction's
conclusions are structural, not artifacts of a lucky parameter choice
(see docs/model.md, "Philosophy").
"""

from dataclasses import replace

import pytest

from repro.apps.stencil import StencilConfig, run_stencil
from repro.bench import MsgRateConfig, run_msgrate
from repro.netsim import CpuCosts, FabricParams, NetworkConfig, NicParams


def perturbed(scale: float, what: str) -> NetworkConfig:
    """A NetworkConfig with one parameter family scaled by ``scale``."""
    base = NetworkConfig()
    if what == "software":
        cpu = replace(base.cpu,
                      send_post=base.cpu.send_post * scale,
                      recv_post=base.cpu.recv_post * scale,
                      match_base=base.cpu.match_base * scale,
                      match_per_element=base.cpu.match_per_element * scale,
                      lock_acquire=base.cpu.lock_acquire * scale,
                      lock_handoff=base.cpu.lock_handoff * scale)
        return replace(base, cpu=cpu)
    if what == "nic":
        nic = replace(base.nic,
                      issue_gap=base.nic.issue_gap * scale,
                      doorbell=base.nic.doorbell * scale)
        return replace(base, nic=nic)
    if what == "fabric":
        fabric = replace(base.fabric,
                         latency=base.fabric.latency * scale,
                         bandwidth=base.fabric.bandwidth / scale)
        return replace(base, fabric=fabric)
    raise ValueError(what)


FAMILIES = ("software", "nic", "fabric")
SCALES = (0.5, 2.0)


@pytest.mark.parametrize("what", FAMILIES)
@pytest.mark.parametrize("scale", SCALES)
def test_fig1a_ordering_survives_perturbation(what, scale):
    """Original stays far below endpoints regardless of cost scaling."""
    net = perturbed(scale, what)
    r_orig = run_msgrate(MsgRateConfig(mode="threads-original", cores=8,
                                       msgs_per_core=32), net=net)
    r_ep = run_msgrate(MsgRateConfig(mode="threads-endpoints", cores=8,
                                     msgs_per_core=32), net=net)
    r_every = run_msgrate(MsgRateConfig(mode="everywhere", cores=8,
                                        msgs_per_core=32), net=net)
    assert r_ep.rate > 3 * r_orig.rate
    assert abs(r_ep.rate / r_every.rate - 1) < 0.15


@pytest.mark.parametrize("what", FAMILIES)
@pytest.mark.parametrize("scale", SCALES)
def test_fig1b_ordering_survives_perturbation(what, scale):
    """The stencil keeps original > endpoints and stays data-correct."""
    net = perturbed(scale, what)
    base = dict(proc_grid=(2, 2), thread_grid=(3, 3), pnx=4, pny=4,
                stencil_points=9, iters=3)
    r_orig = run_stencil(StencilConfig(mechanism="original", **base),
                         net=net)
    r_ep = run_stencil(StencilConfig(mechanism="endpoints", **base),
                       net=net)
    assert r_orig.correct and r_ep.correct
    assert r_orig.halo_time > 1.1 * r_ep.halo_time


@pytest.mark.parametrize("scale", (0.25, 4.0))
def test_lesson3_squeeze_survives_penalty_scaling(scale):
    """Context oversubscription hurts communicators more than endpoints
    whether the shared-post penalty is 100 ns or 1.6 us — only the factor
    moves."""
    base_net = NetworkConfig.scarce(12)
    net = replace(base_net,
                  nic=replace(base_net.nic,
                              shared_post_penalty=400e-9 * scale))
    base = dict(proc_grid=(2, 2), thread_grid=(3, 3), pnx=4, pny=4,
                stencil_points=9, iters=3)
    r_comm = run_stencil(StencilConfig(mechanism="communicators",
                                       comm_map="mirrored", **base),
                         net=net, max_vcis_per_proc=64)
    r_ep = run_stencil(StencilConfig(mechanism="endpoints", **base),
                       net=net, max_vcis_per_proc=64)
    assert r_comm.correct and r_ep.correct
    assert r_comm.halo_time > r_ep.halo_time
    assert r_comm.nic_oversubscription > r_ep.nic_oversubscription
