"""Property-based tests for the extended collectives, endpoint
collectives, and RMA atomicity under randomized shapes."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpi.coll import SUM
from repro.mpi.endpoints import comm_create_endpoints
from repro.mpi.rma import win_create
from tests.helpers import flat_world, run_ranks, run_same

SETTINGS = settings(max_examples=12, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow,
                                           HealthCheck.data_too_large])


@SETTINGS
@given(st.integers(min_value=1, max_value=5),
       st.integers(min_value=0, max_value=4),
       st.integers(min_value=1, max_value=24),
       st.integers(min_value=0, max_value=99))
def test_gather_scatter_roundtrip(nprocs, root_pick, count, seed):
    """Scatter then gather through different roots is the identity."""
    root_a = root_pick % nprocs
    root_b = (root_pick + 1) % nprocs
    rng = np.random.default_rng(seed)
    data = rng.normal(size=nprocs * count)
    world = flat_world(nprocs)
    result = {}

    def worker(proc):
        comm = proc.comm_world
        mine = np.zeros(count)
        sb = data.copy() if proc.rank == root_a else None
        yield from comm.Scatter(sb, mine, root=root_a)
        rb = np.zeros(nprocs * count) if proc.rank == root_b else None
        yield from comm.Gather(mine, rb, root=root_b)
        if proc.rank == root_b:
            result["gathered"] = rb

    run_same(world, worker, max_steps=None)
    assert np.allclose(result["gathered"], data)


@SETTINGS
@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=16),
       st.integers(min_value=0, max_value=99))
def test_scan_matches_cumsum(nprocs, count, seed):
    rng = np.random.default_rng(seed)
    contribs = rng.normal(size=(nprocs, count))
    world = flat_world(nprocs)
    outs = {}

    def worker(proc):
        out = np.zeros(count)
        yield from proc.comm_world.Scan(contribs[proc.rank].copy(), out)
        outs[proc.rank] = out

    run_same(world, worker, max_steps=None)
    running = np.zeros(count)
    for r in range(nprocs):
        running = running + contribs[r]
        assert np.allclose(outs[r], running)


@SETTINGS
@given(st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=64),
       st.integers(min_value=0, max_value=99))
def test_endpoint_allreduce_matches_numpy(nprocs, eps_per_proc, count, seed):
    """The hierarchical endpoint allreduce equals the flat numpy sum for
    any (process count, endpoints/process, size)."""
    rng = np.random.default_rng(seed)
    contribs = rng.normal(size=(nprocs * eps_per_proc, count))
    expected = contribs.sum(axis=0)
    world = flat_world(nprocs, threads_per_proc=eps_per_proc)
    outs = {}

    def main(proc):
        eps = yield from comm_create_endpoints(proc.comm_world,
                                               eps_per_proc)

        def thread(ep):
            out = np.zeros(count)
            yield from ep.Allreduce(contribs[ep.rank].copy(), out, op=SUM)
            outs[ep.rank] = out

        yield proc.sim.all_of([proc.spawn(thread(ep)) for ep in eps])

    run_same(world, main, max_steps=None)
    for r in range(nprocs * eps_per_proc):
        assert np.allclose(outs[r], expected), r


@SETTINGS
@given(st.integers(min_value=1, max_value=10),
       st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                max_size=25),
       st.integers(min_value=0, max_value=99))
def test_concurrent_accumulates_linearize(nthreads_pick, targets, seed):
    """Any interleaving of concurrent accumulates from many threads sums
    exactly (atomicity + SUM commutativity)."""
    rng = np.random.default_rng(seed)
    values = rng.integers(1, 10, size=len(targets)).astype(np.float64)
    world = flat_world(2)
    mem_holder = {}

    def origin(proc):
        win = yield from win_create(proc.comm_world, np.zeros(1))

        def one(disp, val):
            yield from win.Accumulate(np.full(1, val), target=1, disp=disp)

        tasks = [proc.spawn(one(t, v)) for t, v in zip(targets, values)]
        yield proc.sim.all_of(tasks)
        yield from win.Flush(1)
        yield from win.Fence()

    def target(proc):
        mem = np.zeros(8)
        mem_holder["mem"] = mem
        win = yield from win_create(proc.comm_world, mem)
        yield from win.Fence()

    run_ranks(world, origin, target, max_steps=None)
    expected = np.zeros(8)
    for t, v in zip(targets, values):
        expected[t] += v
    assert np.allclose(mem_holder["mem"], expected)
