"""Warm-prefix memoization: simulate each prefix once, cache forever.

The contract has three parts: (1) memoized results equal the unmemoized
reference, cold or warm; (2) one warm-up simulation per unique prefix
within a run (every further point of the prefix is a fork); (3) a
repeated sweep against a warm cache directory re-simulates ZERO warm-ups
— the ISSUE's headline acceptance criterion — and the cache
self-invalidates when the memo format version changes.
"""

import json
import os

import pytest

from repro.bench.memo import (MEMO_VERSION, MemoStats, WarmPrefixExecutor,
                              fig1a_executor)
from repro.bench.msgrate import warm_msgrate
from repro.scenarios.executor import run_scenario, run_scenarios
from repro.scenarios.sample import sample_scenarios
from repro.snap import SNAP_VERSION, STATE_FORMAT_VERSION

POINTS = [{"mode": mode, "cores": 2, "msgs_per_core": mpc}
          for mode in ("everywhere", "threads-tags")
          for mpc in (8, 16, 24)]


def test_memo_version_tracks_snapshot_formats():
    assert f"snap{SNAP_VERSION}" in MEMO_VERSION
    assert f"state{STATE_FORMAT_VERSION}" in MEMO_VERSION


def test_fig1a_memo_matches_unmemoized_reference():
    results = fig1a_executor().run(POINTS)
    for point, result in zip(POINTS, results):
        warm = warm_msgrate(mode=point["mode"], cores=point["cores"])
        ref = warm.measure(point["msgs_per_core"])
        assert result["rate"] == ref.rate
        assert result["span"] == ref.span
        assert result["messages"] == ref.messages


def test_one_warmup_per_unique_prefix():
    stats = MemoStats()
    fig1a_executor().run(POINTS, stats=stats)
    assert stats.warmups_simulated == 2  # two (mode, cores) prefixes
    assert stats.warmup_reuses == 4     # remaining points forked off them
    assert stats.points_run == len(POINTS)
    assert len(stats.prefix_digests) == 2


def test_repeated_sweep_resimulates_zero_warmups(tmp_path):
    cache = str(tmp_path / "memo")
    cold = MemoStats()
    first = fig1a_executor(cache_dir=cache).run(POINTS, stats=cold)
    assert cold.warmups_simulated == 2 and cold.result_hits == 0

    warm = MemoStats()
    second = fig1a_executor(cache_dir=cache).run(POINTS, stats=warm)
    assert warm.warmups_simulated == 0          # THE acceptance criterion
    assert warm.forks == 0 and warm.points_run == 0
    assert warm.result_hits == len(POINTS)
    assert second == first
    assert warm.prefix_digests == cold.prefix_digests


def test_new_points_reuse_cached_prefix_digests(tmp_path):
    cache = str(tmp_path / "memo")
    fig1a_executor(cache_dir=cache).run(POINTS)
    extended = POINTS + [{"mode": "everywhere", "cores": 2,
                          "msgs_per_core": 32}]
    stats = MemoStats()
    results = fig1a_executor(cache_dir=cache).run(extended, stats=stats)
    # The new point shares a cached prefix: exactly one re-warm-up (to
    # rebuild the live world the cache cannot hold), six result hits.
    assert stats.result_hits == len(POINTS)
    assert stats.warmups_simulated == 1
    assert results[-1]["messages"] == 2 * 32


def test_version_bump_invalidates_cache(tmp_path, monkeypatch):
    cache = str(tmp_path / "memo")
    fig1a_executor(cache_dir=cache).run(POINTS[:2])
    monkeypatch.setattr("repro.bench.memo.MEMO_VERSION", "memo0-other")
    stats = MemoStats()
    fig1a_executor(cache_dir=cache).run(POINTS[:2], stats=stats)
    assert stats.result_hits == 0
    assert stats.warmups_simulated == 1


def test_results_keyed_by_digest_not_prefix_params(tmp_path):
    """The cache key is the warm state's digest: a digest index that no
    longer describes the code's behaviour is distrusted wholesale."""
    cache = str(tmp_path / "memo")
    ex = fig1a_executor(cache_dir=cache)
    ex.run(POINTS[:3])
    # Corrupt the digest index: every prefix record now lies.
    for name in os.listdir(cache):
        path = os.path.join(cache, name)
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload["point"].get("kind") == "warm-prefix":
            payload["result"] = "0" * 24
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
    stats = MemoStats()
    results = fig1a_executor(cache_dir=cache).run(POINTS[:3], stats=stats)
    assert stats.warmups_simulated == 1   # re-warmed, digest mismatch seen
    assert stats.result_hits == 0         # nothing served off the bad index
    assert results == ex.run(POINTS[:3])


def test_executor_without_fork_support(monkeypatch):
    monkeypatch.setattr("repro.bench.memo.fork_available", lambda: False)
    stats = MemoStats()
    results = fig1a_executor().run(POINTS[:3], stats=stats)
    assert stats.forks == 0
    assert results == fig1a_executor().run(POINTS[:3])


def test_forked_tail_error_propagates():
    def prefix(x):
        return x

    def tail(state, y):
        if y == 1:
            raise ValueError("boom in child")
        return state + y

    ex = WarmPrefixExecutor(prefix, tail, prefix_keys=("x",),
                            digest_fn=lambda s: f"d{s}")
    with pytest.raises(RuntimeError, match="boom in child"):
        ex.run([{"x": 0, "y": 1}, {"x": 0, "y": 2}])


def test_scenarios_memoized_executor(tmp_path):
    specs = sample_scenarios(5, 4)
    cache = str(tmp_path / "scen")
    cold, warm = MemoStats(), MemoStats()
    first = run_scenarios(specs, cache_dir=cache, stats=cold)
    second = run_scenarios(specs, cache_dir=cache, stats=warm)
    plain = [json.loads(json.dumps(run_scenario(s), default=str))
             for s in specs]
    assert first == second == plain
    assert cold.warmups_simulated == len(specs)
    assert warm.warmups_simulated == 0
    assert warm.result_hits == len(specs)


def test_scenarios_memo_results_in_spec_order():
    specs = sample_scenarios(5, 3)
    outcomes = run_scenarios(specs)
    assert [o["spec"]["seed"] for o in outcomes] == \
        [s.seed for s in specs]
