"""RMA window tests (repro.mpi.rma)."""

import numpy as np
import pytest

from repro.errors import MpiUsageError, RmaSemanticsError
from repro.mpi import Info
from repro.mpi.coll.ops import MAX, SUM
from repro.mpi.endpoints import comm_create_endpoints
from repro.mpi.rma import win_create
from tests.helpers import flat_world, run_ranks, run_same


def test_put_and_flush(world2):
    def origin(proc):
        win = yield from win_create(proc.comm_world, np.zeros(8))
        yield from win.Put(np.arange(4, dtype=np.float64), target=1, disp=1)
        yield from win.Flush(1)
        yield from win.Fence()

    def target(proc):
        mem = np.zeros(8)
        win = yield from win_create(proc.comm_world, mem)
        yield from win.Fence()
        assert np.allclose(mem[1:5], np.arange(4))
        assert mem[0] == 0 and np.allclose(mem[5:], 0)

    run_ranks(world2, origin, target)


def test_get_roundtrip(world2):
    def origin(proc):
        win = yield from win_create(proc.comm_world, np.zeros(8))
        got = np.zeros(3)
        req = yield from win.Get(got, target=1, disp=2)
        yield from req.wait()
        assert np.allclose(got, [20.0, 30.0, 40.0])
        yield from win.Fence()

    def target(proc):
        mem = np.arange(8, dtype=np.float64) * 10
        win = yield from win_create(proc.comm_world, mem)
        yield from win.Fence()

    run_ranks(world2, origin, target)


def test_accumulate_sums_atomically(world2):
    """Concurrent accumulates from many threads to the same location must
    all land (atomicity)."""
    nthreads = 8

    def origin(proc):
        win = yield from win_create(proc.comm_world, np.zeros(4))

        def thread(i):
            yield from win.Accumulate(np.full(2, 1.0), target=1, disp=0,
                                      op=SUM)

        tasks = [proc.spawn(thread(i)) for i in range(nthreads)]
        yield proc.sim.all_of(tasks)
        yield from win.Flush(1)
        yield from win.Fence()

    def target(proc):
        mem = np.zeros(4)
        win = yield from win_create(proc.comm_world, mem)
        yield from win.Fence()
        assert np.allclose(mem[:2], nthreads)

    run_ranks(world2, origin, target)


def test_accumulate_with_max(world2):
    def origin(proc):
        win = yield from win_create(proc.comm_world, np.zeros(2))
        yield from win.Accumulate(np.array([5.0, 1.0]), target=1, disp=0,
                                  op=MAX)
        yield from win.Accumulate(np.array([2.0, 9.0]), target=1, disp=0,
                                  op=MAX)
        yield from win.Fence()

    def target(proc):
        mem = np.zeros(2)
        win = yield from win_create(proc.comm_world, mem)
        yield from win.Fence()
        assert np.allclose(mem, [5.0, 9.0])

    run_ranks(world2, origin, target)


def test_fetch_and_op_returns_old_value(world2):
    def origin(proc):
        win = yield from win_create(proc.comm_world, np.zeros(2))
        res = np.zeros(1)
        req = yield from win.Fetch_and_op(np.full(1, 4.0), res, target=1,
                                          disp=0, op=SUM)
        yield from req.wait()
        assert res[0] == 100.0
        req = yield from win.Fetch_and_op(np.full(1, 4.0), res, target=1,
                                          disp=0, op=SUM)
        yield from req.wait()
        assert res[0] == 104.0
        yield from win.Fence()

    def target(proc):
        mem = np.array([100.0, 0.0])
        win = yield from win_create(proc.comm_world, mem)
        yield from win.Fence()
        assert mem[0] == 108.0

    run_ranks(world2, origin, target)


def test_lock_unlock_epoch(world2):
    def origin(proc):
        win = yield from win_create(proc.comm_world, np.zeros(4))
        yield from win.Lock(1)
        yield from win.Put(np.full(2, 6.0), target=1, disp=0)
        yield from win.Unlock(1)  # flushes
        yield from win.Fence()

    def target(proc):
        mem = np.zeros(4)
        win = yield from win_create(proc.comm_world, mem)
        yield from win.Fence()
        assert np.allclose(mem[:2], 6.0)

    run_ranks(world2, origin, target)


def test_bounds_checked_against_target_size(world2):
    """Windows may expose different sizes per rank; bounds use the
    target's size."""
    def origin(proc):
        win = yield from win_create(proc.comm_world, np.zeros(2))
        assert win.sizes == [2, 10]
        yield from win.Put(np.zeros(10), target=1, disp=0)  # fits
        with pytest.raises(RmaSemanticsError):
            yield from win.Put(np.zeros(11), target=1, disp=0)
        with pytest.raises(RmaSemanticsError):
            yield from win.Put(np.zeros(2), target=1, disp=9)
        yield from win.Fence()

    def target(proc):
        win = yield from win_create(proc.comm_world, np.zeros(10))
        yield from win.Fence()

    run_ranks(world2, origin, target)


def test_invalid_target_rejected(world2):
    def origin(proc):
        win = yield from win_create(proc.comm_world, np.zeros(4))
        with pytest.raises(MpiUsageError):
            yield from win.Put(np.zeros(1), target=7, disp=0)
        yield from win.Fence()

    def target(proc):
        win = yield from win_create(proc.comm_world, np.zeros(4))
        yield from win.Fence()

    run_ranks(world2, origin, target)


def test_flush_all_covers_multiple_targets():
    world = flat_world(3)

    def worker(proc):
        mem = np.zeros(4)
        win = yield from win_create(proc.comm_world, mem)
        if proc.rank == 0:
            yield from win.Put(np.full(1, 1.0), target=1, disp=0)
            yield from win.Put(np.full(1, 2.0), target=2, disp=0)
            yield from win.Flush_all()
        yield from win.Fence()
        if proc.rank == 1:
            assert mem[0] == 1.0
        if proc.rank == 2:
            assert mem[0] == 2.0

    run_same(world, worker)


def test_default_ordering_atomics_use_single_vci(world2):
    def origin(proc):
        info = Info({"mpich_rma_num_vcis": "8"})
        win = yield from win_create(proc.comm_world, np.zeros(1024), info)
        atomic_vcis = {win._vci_index(1, d, atomic=True)
                       for d in range(0, 1024, 64)}
        nonatomic_vcis = {win._vci_index(1, d, atomic=False)
                          for d in range(0, 1024, 64)}
        assert len(atomic_vcis) == 1           # pinned to the base VCI
        assert len(nonatomic_vcis) > 2          # puts/gets spread
        yield from win.Fence()

    def target(proc):
        win = yield from win_create(proc.comm_world, np.zeros(1024))
        yield from win.Fence()

    run_ranks(world2, origin, target)


def test_ordering_none_spreads_atomics_by_hash(world2):
    def origin(proc):
        info = Info({"accumulate_ordering": "none",
                     "mpich_rma_num_vcis": "8"})
        win = yield from win_create(proc.comm_world, np.zeros(8192), info)
        vcis = [win._vci_index(1, d, atomic=True) for d in range(0, 8192, 256)]
        assert len(set(vcis)) > 2               # spread...
        counts = {v: vcis.count(v) for v in set(vcis)}
        assert max(counts.values()) >= 2 or len(set(vcis)) < len(vcis) or True
        yield from win.Fence()

    def target(proc):
        win = yield from win_create(proc.comm_world, np.zeros(8192), None)
        yield from win.Fence()

    run_ranks(world2, origin, target)


def test_endpoint_window_ops_use_endpoint_vcis(world2):
    """Lesson 16: endpoints within one window — parallel AND atomic."""
    N = 3

    def main(proc):
        eps = yield from comm_create_endpoints(proc.comm_world, N)
        mem = np.zeros(16)  # one region shared by this process's endpoints

        # win_create is collective over *all* endpoints: drive each
        # endpoint's call from its own thread.
        def create(ep):
            win = yield from win_create(ep, mem)
            return win

        wins = yield proc.sim.all_of([proc.spawn(create(ep)) for ep in eps])
        used = {w._vci_index(target=0, disp=0, atomic=True) for w in wins}
        assert used == {ep.vci_map.my_vci for ep in eps}
        assert len(used) == N

        if proc.rank == 0:
            def thread(win, ep):
                # every endpoint accumulates into remote ep-rank N..2N-1
                yield from win.Accumulate(np.full(2, 1.0),
                                          target=N + ep.local_index, disp=0,
                                          op=SUM)
                yield from win.Flush(N + ep.local_index)
            tasks = [proc.spawn(thread(w, e)) for w, e in zip(wins, eps)]
            yield proc.sim.all_of(tasks)
        # Synchronize across processes on the parent communicator (the
        # endpoint-comm Fence would need every endpoint to participate).
        yield from proc.comm_world.Barrier()
        if proc.rank == 1:
            assert np.allclose(mem[:2], N)  # all three accumulated once
        return True

    assert run_same(world2, main) == [True, True]
