"""Tests for the cluster runtime (repro.runtime.world)."""

import numpy as np
import pytest

from repro.errors import MpiUsageError
from repro.runtime import World
from repro.sim import SimulationError
from tests.helpers import flat_world, run_same


def test_world_dimensions_and_ranks():
    world = World(num_nodes=3, procs_per_node=2, threads_per_proc=4)
    assert world.num_procs == 6
    assert [p.rank for p in world.procs] == list(range(6))
    # ranks 0,1 on node 0; 2,3 on node 1; 4,5 on node 2
    assert [p.node.node_id for p in world.procs] == [0, 0, 1, 1, 2, 2]
    for node in world.nodes:
        assert len(node.procs) == 2


def test_world_rejects_bad_dimensions():
    with pytest.raises(MpiUsageError):
        World(num_nodes=0)
    with pytest.raises(MpiUsageError):
        World(procs_per_node=0)
    with pytest.raises(MpiUsageError):
        World(threads_per_proc=0)


def test_comm_world_per_rank():
    world = World(num_nodes=2, procs_per_node=2)
    for r in range(4):
        comm = world.comm_world(r)
        assert comm.rank == r
        assert comm.size == 4
        assert comm.context_id == 0


def test_context_id_allocation_strides():
    world = flat_world(1)
    a = world.alloc_context_id()
    b = world.alloc_context_id()
    assert a == 4 and b == 8  # COMM_WORLD owns 0..3


def test_launch_spawns_per_thread():
    world = flat_world(2, threads_per_proc=3)
    seen = []

    def fn(proc, tid):
        yield proc.compute(1e-6 * (tid + 1))
        seen.append((proc.rank, tid))

    tasks = world.launch(fn)
    assert len(tasks) == 6
    world.run_all(tasks)
    assert sorted(seen) == [(r, t) for r in range(2) for t in range(3)]


def test_shm_exchange_charges_time():
    world = flat_world(1)
    proc = world.procs[0]

    def t():
        yield proc.shm_exchange(20_000_000)  # ~1 ms at 20 GB/s

    task = proc.spawn(t())
    world.run_all([task])
    assert 0.9e-3 < world.now < 1.2e-3


def test_meet_size_mismatch_rejected():
    world = flat_world(2)

    def a(proc):
        yield from world.meet("k", nmembers=2, rank=0)

    def b(proc):
        with pytest.raises(MpiUsageError, match="size mismatch"):
            yield from world.meet("k", nmembers=3, rank=1)

    world.procs[0].spawn(a(world.procs[0]))
    t = world.procs[1].spawn(b(world.procs[1]))
    world.run(max_steps=1000)
    assert t.triggered


def test_meet_double_join_rejected():
    world = flat_world(2)

    def a(proc):
        world_gen = world.meet("k", nmembers=3, rank=0)
        yield from ()
        # join once (non-blocking arm): drive manually
        try:
            next(world_gen)
        except StopIteration:
            pass
        with pytest.raises(MpiUsageError, match="twice"):
            gen2 = world.meet("k", nmembers=3, rank=0)
            next(gen2)

    t = world.procs[0].spawn(a(world.procs[0]))
    world.run(max_steps=1000)
    assert t.triggered and t.ok


def test_meet_finalize_runs_once_by_last_arriver():
    world = flat_world(3)
    calls = []

    def finalize(meeting):
        calls.append(dict(meeting.contributions))
        meeting.shared["total"] = sum(meeting.contributions.values())

    def worker(proc):
        m = yield from world.meet("fin", nmembers=3, rank=proc.rank,
                                  contribution=proc.rank + 1,
                                  finalize=finalize)
        return m.shared["total"]

    assert run_same(world, worker) == [6, 6, 6]
    assert len(calls) == 1
    assert calls[0] == {0: 1, 1: 2, 2: 3}


def test_deadlock_detection_via_run_all():
    world = flat_world(2)

    def stuck(proc):
        buf = np.zeros(1)
        # both ranks receive, nobody sends
        yield from proc.comm_world.Recv(buf, source=1 - proc.rank, tag=0)

    with pytest.raises(SimulationError, match="deadlock"):
        run_same(world, stuck)


def test_world_now_tracks_simulated_time():
    world = flat_world(1)
    proc = world.procs[0]
    world.run_all([proc.spawn((proc.compute(2.5e-6) for _ in range(1)))])
    # generator expression yields one timeout
    assert world.now == pytest.approx(2.5e-6)
