"""Tests for the tracer and deterministic random streams."""

import numpy as np
import pytest

from repro.sim import NullTracer, RandomStreams, Simulator, TraceCategory, Tracer

START = TraceCategory.custom("test.start")
STOP = TraceCategory.custom("test.stop")
X = TraceCategory.custom("test.x")
Y = TraceCategory.custom("test.y")
PHASE_BEGIN, PHASE_END = TraceCategory.span("test.phase")


# ---------------------------------------------------------------- tracer

def test_tracer_records_with_timestamps():
    sim = Simulator()
    tr = Tracer(sim)

    def task():
        tr.emit(START, "a")
        yield sim.timeout(1.0)
        tr.emit(STOP, "b")

    sim.spawn(task())
    sim.run()
    assert len(tr) == 2
    assert tr.records[0].time == 0.0 and tr.records[0].payload == "a"
    assert tr.records[1].time == 1.0 and tr.records[1].category is STOP


def test_tracer_select_and_count():
    sim = Simulator()
    tr = Tracer(sim)
    tr.emit(X, 1)
    tr.emit(Y, 2)
    tr.emit(X, 3)
    assert tr.count(X) == 2
    assert [r.payload for r in tr.select(Y)] == [2]
    # string lookups still resolve to the same interned category
    assert tr.count("test.x") == 2


def test_tracer_spans_pair_fifo():
    sim = Simulator()
    tr = Tracer(sim)

    def task():
        tr.emit(PHASE_BEGIN)
        yield sim.timeout(2.0)
        tr.emit(PHASE_END)
        yield sim.timeout(1.0)
        tr.emit(PHASE_BEGIN)
        yield sim.timeout(3.0)
        tr.emit(PHASE_END)

    sim.spawn(task())
    sim.run()
    spans = tr.spans(PHASE_BEGIN, PHASE_END)
    assert spans == [(0.0, 2.0), (3.0, 6.0)]


def test_tracer_disabled_and_clear():
    sim = Simulator()
    tr = Tracer(sim, enabled=False)
    tr.emit(X)
    assert len(tr) == 0
    tr.enabled = True
    tr.emit(X)
    tr.clear()
    assert len(tr) == 0


def test_null_tracer_is_deprecated_alias():
    with pytest.deprecated_call():
        tr = NullTracer()
    tr.emit(X)
    assert len(tr) == 0 and not tr.enabled


def test_tracer_iterable():
    sim = Simulator()
    tr = Tracer(sim)
    tr.emit(X)
    tr.emit(Y)
    assert [r.category for r in tr] == [X, Y]


# ---------------------------------------------------------------- streams

def test_streams_deterministic_per_name():
    a = RandomStreams(seed=7)
    b = RandomStreams(seed=7)
    assert np.allclose(a.stream("x").random(5), b.stream("x").random(5))


def test_streams_independent_across_names():
    s = RandomStreams(seed=7)
    x = s.stream("x").random(5)
    y = s.stream("y").random(5)
    assert not np.allclose(x, y)


def test_streams_insensitive_to_creation_order():
    a = RandomStreams(seed=3)
    _ = a.stream("first").random(2)
    va = a.stream("second").random(3)
    b = RandomStreams(seed=3)
    vb = b.stream("second").random(3)
    assert np.allclose(va, vb)


def test_streams_cached_instance():
    s = RandomStreams()
    assert s.stream("x") is s["x"]


def test_different_seeds_differ():
    assert not np.allclose(RandomStreams(1)["x"].random(4),
                           RandomStreams(2)["x"].random(4))
