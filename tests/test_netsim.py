"""Unit tests for the network substrate (repro.netsim)."""

import pytest

from repro.netsim import (
    HEADER_BYTES,
    Fabric,
    FabricParams,
    MessageKind,
    NetworkConfig,
    Nic,
    NicParams,
    WireMessage,
)
from repro.sim import Simulator


def make_msg(src=0, dst=1, size=0, tag=7, **meta):
    return WireMessage(kind=MessageKind.EAGER, src_node=src, dst_node=dst,
                       src_rank=src, dst_rank=dst, context_id=0, tag=tag,
                       size=size, meta=meta)


# ---------------------------------------------------------------- config

def test_omnipath_preset_has_160_contexts():
    cfg = NetworkConfig.omnipath()
    assert cfg.nic.num_hardware_contexts == 160


def test_with_contexts_overrides_only_context_count():
    cfg = NetworkConfig.omnipath().with_contexts(8)
    assert cfg.nic.num_hardware_contexts == 8
    assert cfg.nic.issue_gap == NetworkConfig.omnipath().nic.issue_gap
    assert "ctx=8" in cfg.name


def test_presets_distinct():
    assert NetworkConfig.scarce(4).nic.num_hardware_contexts == 4
    assert NetworkConfig.abundant().nic.num_hardware_contexts == 4096


# ---------------------------------------------------------------- nic

def test_nic_requires_contexts():
    sim = Simulator()
    with pytest.raises(ValueError):
        Nic(sim, NicParams(num_hardware_contexts=0))


def test_context_allocation_round_robin_before_sharing():
    sim = Simulator()
    nic = Nic(sim, NicParams(num_hardware_contexts=3))
    got = [nic.allocate_context() for _ in range(5)]
    assert [c.index for c in got] == [0, 1, 2, 0, 1]
    assert got[0] is got[3]
    assert got[0].sharers == 2
    assert got[2].sharers == 1
    assert got[0].is_shared and not got[2].is_shared


def test_oversubscription_metric():
    sim = Simulator()
    nic = Nic(sim, NicParams(num_hardware_contexts=2))
    for _ in range(4):
        nic.allocate_context()
    assert nic.oversubscription == pytest.approx(2.0)


def test_context_issue_is_rate_limited():
    sim = Simulator()
    params = NicParams(issue_gap=100e-9, issue_per_byte=0.0)
    nic = Nic(sim, params)
    ctx = nic.allocate_context()
    departs = [ctx.issue(0) for _ in range(3)]
    assert departs == pytest.approx([100e-9, 200e-9, 300e-9])
    assert ctx.messages_issued == 3


def test_context_issue_charges_bytes():
    sim = Simulator()
    params = NicParams(issue_gap=0.0, issue_per_byte=1e-9)
    nic = Nic(sim, params)
    ctx = nic.allocate_context()
    assert ctx.issue(1000) == pytest.approx(1e-6)
    assert ctx.bytes_issued == 1000


def test_load_imbalance_perfectly_balanced_is_one():
    sim = Simulator()
    nic = Nic(sim, NicParams(num_hardware_contexts=4, issue_gap=1e-9))
    for ctx in nic.contexts:
        ctx.issue(0)
        ctx.issue(0)
    assert nic.load_imbalance() == pytest.approx(1.0)
    assert nic.total_messages() == 8


def test_load_imbalance_detects_skew():
    sim = Simulator()
    nic = Nic(sim, NicParams(num_hardware_contexts=4, issue_gap=1e-9))
    for _ in range(6):
        nic.contexts[0].issue(0)
    nic.contexts[1].issue(0)
    nic.contexts[2].issue(0)
    # counts 6,1,1 -> mean 8/3, max 6 -> 2.25
    assert nic.load_imbalance() == pytest.approx(2.25)


# ---------------------------------------------------------------- fabric

def test_fabric_delivers_after_latency_and_wire_time():
    sim = Simulator()
    params = FabricParams(latency=1e-6, bandwidth=1e9, model_ingress=False)
    fabric = Fabric(sim, params)
    arrivals = []
    fabric.register_node(1, lambda m: arrivals.append((sim.now, m)))
    msg = make_msg(size=1000)
    fabric.transmit(msg, depart_time=0.0)
    sim.run()
    expected = 1e-6 + (1000 + HEADER_BYTES) / 1e9
    assert arrivals[0][0] == pytest.approx(expected)
    assert arrivals[0][1] is msg


def test_fabric_duplicate_node_registration_rejected():
    sim = Simulator()
    fabric = Fabric(sim, FabricParams())
    fabric.register_node(0, lambda m: None)
    with pytest.raises(ValueError):
        fabric.register_node(0, lambda m: None)


def test_fabric_unknown_destination_rejected():
    sim = Simulator()
    fabric = Fabric(sim, FabricParams())
    with pytest.raises(KeyError):
        fabric.transmit(make_msg(dst=99), depart_time=0.0)


def test_fabric_preserves_order_same_path():
    sim = Simulator()
    fabric = Fabric(sim, FabricParams(model_ingress=False))
    order = []
    fabric.register_node(1, lambda m: order.append(m.meta["n"]))
    for n in range(5):
        fabric.transmit(make_msg(size=0, n=n), depart_time=n * 1e-9)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_fabric_ingress_serializes_concurrent_big_messages():
    """Two large messages from different sources queue on the receiver link."""
    sim = Simulator()
    params = FabricParams(latency=0.0, bandwidth=1e9, model_ingress=True)
    fabric = Fabric(sim, params)
    times = []
    fabric.register_node(2, lambda m: times.append(sim.now))
    big = 10_000_000  # 10 ms of wire time at 1 GB/s
    fabric.transmit(make_msg(src=0, dst=2, size=big), depart_time=0.0)
    fabric.transmit(make_msg(src=1, dst=2, size=big), depart_time=0.0)
    sim.run()
    wire = (big + HEADER_BYTES) / 1e9
    assert times[0] == pytest.approx(wire, rel=1e-6)
    assert times[1] == pytest.approx(2 * wire, rel=1e-6)


def test_fabric_counts_traffic():
    sim = Simulator()
    fabric = Fabric(sim, FabricParams(model_ingress=False))
    fabric.register_node(1, lambda m: None)
    fabric.transmit(make_msg(size=100), depart_time=0.0)
    fabric.transmit(make_msg(size=200), depart_time=0.0)
    sim.run()
    assert fabric.messages_delivered == 2
    assert fabric.bytes_delivered == 300 + 2 * HEADER_BYTES


def test_fabric_latency_for():
    sim = Simulator()
    fabric = Fabric(sim, FabricParams(latency=2e-6, bandwidth=1e9))
    assert fabric.latency_for(1000) == pytest.approx(2e-6 + 1000 / 1e9)


def test_wire_message_seq_monotonic():
    a = make_msg()
    b = make_msg()
    assert b.seq > a.seq
    assert a.wire_bytes == HEADER_BYTES


# ------------------------------------------------- saturation & penalties

def test_shared_context_costs_more():
    """The Lesson 3 penalty: posting through a shared hardware context
    charges shared_post_penalty on top of the doorbell."""
    import numpy as np

    from tests.helpers import flat_world

    def run(contexts):
        cfg = NetworkConfig().with_contexts(contexts)
        world = flat_world(2, threads_per_proc=4, network=cfg,
                           max_vcis_per_proc=8)

        def node(proc):
            if proc.rank == 0:
                def t(tid):
                    comm = yield from proc.comm_world.Dup()
                    for _ in range(16):
                        req = yield from comm.Isend(np.zeros(1), 1, tag=tid)
                        yield from req.wait()
                tasks = [proc.spawn(t(tid)) for tid in range(4)]
                yield proc.sim.all_of(tasks)
            else:
                def r(tid):
                    comm = yield from proc.comm_world.Dup()
                    buf = np.zeros(1)
                    for _ in range(16):
                        yield from comm.Recv(buf, 0, tag=tid)
                tasks = [proc.spawn(r(tid)) for tid in range(4)]
                yield proc.sim.all_of(tasks)
            return proc.sim.now

        tasks = [world.procs[i].spawn(node(world.procs[i]))
                 for i in range(2)]
        return max(world.run_all(tasks, max_steps=None))

    # 1 context: all dup'd comms share it -> penalty; 64: dedicated.
    assert run(1) > 1.5 * run(64)


def test_node_egress_message_gap_caps_aggregate_rate():
    """All contexts feed one link: the node_msg_gap bounds aggregate
    injection no matter how many contexts inject."""
    sim = Simulator()
    params = FabricParams(latency=0.0, model_ingress=False,
                          model_egress=True, node_msg_gap=100e-9)
    fabric = Fabric(sim, params)
    arrivals = []
    fabric.register_node(0, lambda m: None)   # source must be registered
    fabric.register_node(1, lambda m: arrivals.append(sim.now))
    # 50 messages depart different contexts all at t=0
    for _ in range(50):
        fabric.transmit(make_msg(src=0, dst=1, size=0), depart_time=0.0)
    sim.run()
    assert len(arrivals) == 50
    # last arrival cannot beat 50 * gap
    assert arrivals[-1] >= 50 * 100e-9 * 0.999


def test_egress_skipped_for_unregistered_source():
    sim = Simulator()
    params = FabricParams(latency=1e-6, model_ingress=False,
                          model_egress=True, node_msg_gap=1.0)
    fabric = Fabric(sim, params)
    got = []
    fabric.register_node(1, lambda m: got.append(sim.now))
    fabric.transmit(make_msg(src=99, dst=1, size=0), depart_time=0.0)
    sim.run()
    assert got[0] == pytest.approx(1e-6, rel=1e-2)


def test_issue_jitter_monotonic_per_context():
    """Jitter must preserve per-context departure ordering."""
    sim = Simulator()
    params = NicParams(issue_gap=10e-9, issue_per_byte=0.0,
                       issue_jitter=500e-9)
    nic = Nic(sim, params)
    ctx = nic.allocate_context()
    departs = [ctx.issue(0) for _ in range(64)]
    assert all(b > a for a, b in zip(departs, departs[1:]))


def test_issue_jitter_deterministic_and_bounded():
    def run():
        sim = Simulator()
        params = NicParams(issue_gap=10e-9, issue_per_byte=0.0,
                           issue_jitter=200e-9)
        ctx = Nic(sim, params).allocate_context()
        return [ctx.issue(0) for _ in range(32)]

    a, b = run(), run()
    assert a == b
    # each service time within [gap, gap + jitter]
    gaps = [t2 - t1 for t1, t2 in zip([0.0] + a, a)]
    assert all(10e-9 <= g <= 210e-9 + 1e-15 for g in gaps)
