"""Lint-pass tests: each L2xx rule fires on a crafted source file,
suppressions work (and bare ones are themselves findings), and the
repository's own tree is clean."""

import json
import pathlib
import subprocess
import sys

from repro.check.lint import (
    Finding,
    lint_file,
    render_json,
    render_text,
    run_lint,
)

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: A rel path that puts the fixture on the simulated timeline for L201.
SIM_REL = "src/repro/sim/fixture.py"


def lint_source(tmp_path, source, rel=SIM_REL, select=None):
    path = tmp_path / "fixture.py"
    path.write_text(source)
    return lint_file(path, rel, select={s.upper() for s in select}
                     if select else None)


def rules(findings):
    return [f.rule for f in findings]


# ------------------------------------------------------------------ L201

def test_l201_host_clock_call(tmp_path):
    src = '"""Doc."""\nimport time\nt = time.perf_counter()\n'
    assert "L201" in rules(lint_source(tmp_path, src))


def test_l201_global_numpy_random(tmp_path):
    src = '"""Doc."""\nimport numpy as np\nx = np.random.rand(4)\n'
    assert "L201" in rules(lint_source(tmp_path, src))


def test_l201_seeded_generator_is_sanctioned(tmp_path):
    src = ('"""Doc."""\nimport numpy as np\n'
           'rng = np.random.default_rng(42)\nx = rng.random(4)\n')
    assert "L201" not in rules(lint_source(tmp_path, src))


def test_l201_stdlib_random_import(tmp_path):
    src = '"""Doc."""\nimport random\n'
    assert "L201" in rules(lint_source(tmp_path, src))


def test_l201_from_import(tmp_path):
    src = '"""Doc."""\nfrom time import perf_counter\n'
    assert "L201" in rules(lint_source(tmp_path, src))


def test_l201_only_in_simulated_paths(tmp_path):
    src = '"""Doc."""\nimport time\nt = time.perf_counter()\n'
    out = lint_source(tmp_path, src, rel="src/repro/cli.py")
    assert "L201" not in rules(out)


# ------------------------------------------------------------------ L202

def test_l202_raw_emit_category(tmp_path):
    src = '"""Doc."""\ntracer.emit("p2p.send", x=1)\n'
    assert "L202" in rules(lint_source(tmp_path, src))


def test_l202_member_category_is_clean(tmp_path):
    src = '"""Doc."""\ntracer.emit(TC.P2P_SEND, x=1)\n'
    assert "L202" not in rules(lint_source(tmp_path, src))


def test_l202_exempt_in_trace_module(tmp_path):
    src = '"""Doc."""\ntracer.emit("p2p.send", x=1)\n'
    out = lint_source(tmp_path, src, rel="src/repro/sim/trace.py")
    assert "L202" not in rules(out)


# ------------------------------------------------------------------ L203

def test_l203_bare_except(tmp_path):
    src = '"""Doc."""\ntry:\n    x = 1\nexcept:\n    pass\n'
    assert "L203" in rules(lint_source(tmp_path, src))


def test_l203_typed_except_is_clean(tmp_path):
    src = '"""Doc."""\ntry:\n    x = 1\nexcept ValueError:\n    pass\n'
    assert "L203" not in rules(lint_source(tmp_path, src))


# ----------------------------------------------------------- L204 / L205

def test_l204_missing_module_docstring(tmp_path):
    assert "L204" in rules(lint_source(tmp_path, "x = 1\n"))


def test_l204_missing_function_docstring(tmp_path):
    src = ('"""Doc."""\ndef work(a: int) -> int:\n'
           '    b = a + 1\n    c = b * 2\n    d = c - 3\n    return d\n')
    assert "L204" in rules(lint_source(tmp_path, src))


def test_l204_trivial_accessor_exempt(tmp_path):
    src = '"""Doc."""\ndef get(a: int) -> int:\n    return a\n'
    assert "L204" not in rules(lint_source(tmp_path, src))


def test_l204_property_exempt(tmp_path):
    src = ('"""Doc."""\nclass C:\n    """Doc."""\n\n    @property\n'
           '    def value(self) -> int:\n        x = self._x\n'
           '        y = x + 1\n        z = y * 2\n        w = z\n'
           '        return w\n')
    assert "L204" not in rules(lint_source(tmp_path, src))


def test_l204_private_names_exempt(tmp_path):
    src = ('"""Doc."""\ndef _helper(a: int) -> int:\n'
           '    b = a + 1\n    c = b * 2\n    d = c - 3\n    return d\n')
    assert "L204" not in rules(lint_source(tmp_path, src))


def test_l205_unannotated_public_function(tmp_path):
    src = '"""Doc."""\ndef work(a, b):\n    """Doc."""\n    return a + b\n'
    assert "L205" in rules(lint_source(tmp_path, src))


def test_l205_self_only_signature_exempt(tmp_path):
    src = ('"""Doc."""\nclass C:\n    """Doc."""\n\n'
           '    def close(self):\n        """Doc."""\n        self.x = 0\n')
    assert "L205" not in rules(lint_source(tmp_path, src))


# ----------------------------------------------------- suppression / L200

def test_suppression_with_reason(tmp_path):
    src = ('"""Doc."""\nimport time\n'
           't = time.perf_counter()  # lint: ignore[L201] -- host profiling\n')
    assert rules(lint_source(tmp_path, src)) == []


def test_bare_suppression_is_l200_and_does_not_suppress(tmp_path):
    """Without a ``-- reason`` the directive has no effect: the named
    rule still fires, plus L200 for the unjustified suppression."""
    src = ('"""Doc."""\nimport time\n'
           't = time.perf_counter()  # lint: ignore[L201]\n')
    out = rules(lint_source(tmp_path, src))
    assert "L200" in out and "L201" in out


def test_suppression_only_covers_named_rule(tmp_path):
    src = ('"""Doc."""\nimport time\n'
           't = time.perf_counter()  # lint: ignore[L202] -- wrong rule\n')
    assert "L201" in rules(lint_source(tmp_path, src))


# ------------------------------------------------------------- machinery

def test_syntax_error_becomes_e999(tmp_path):
    assert rules(lint_source(tmp_path, "def broken(:\n")) == ["E999"]


def test_select_filters_rules(tmp_path):
    src = 'import time\nt = time.perf_counter()\n'  # L201 + L204
    out = rules(lint_source(tmp_path, src, select=["L201"]))
    assert out == ["L201"]


def test_render_text_and_json(tmp_path):
    findings = lint_source(tmp_path, "x = 1\n")
    text = render_text(findings)
    assert SIM_REL in text and "finding(s)" in text
    data = json.loads(render_json(findings))
    assert data["schema"] == 1 and not data["clean"]
    assert data["findings"][0]["rule"] == "L204"
    assert render_text([]) == "lint: clean"
    assert json.loads(render_json([]))["clean"]


def test_finding_describe():
    f = Finding("src/x.py", 3, 7, "L203", "bare `except:`")
    assert f.describe() == "src/x.py:3:7: L203 bare `except:`"


# ----------------------------------------------------------- integration

def test_repository_tree_is_clean():
    """The codebase passes its own lint (satellite of the rule catalog)."""
    findings = run_lint()
    assert not findings, render_text(findings)


def test_benchmarks_and_examples_are_linted_and_clean():
    """The default roots cover the driver trees, and they lint clean."""
    import pathlib

    repo = pathlib.Path(__file__).resolve().parents[1]
    for tree in ("benchmarks", "examples"):
        root = repo / tree
        assert root.is_dir()
        findings = run_lint([root])
        assert not findings, f"{tree}: " + render_text(findings)


def test_lint_cli_clean_and_json(tmp_path):
    env_root = str(ROOT / "src")
    out = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--json"],
        capture_output=True, text=True, cwd=ROOT,
        env={"PYTHONPATH": env_root, "PATH": "/usr/bin:/bin"})
    assert out.returncode == 0, out.stdout + out.stderr
    assert json.loads(out.stdout)["clean"]


def test_lint_cli_reports_findings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("try:\n    x = 1\nexcept:\n    pass\n")
    out = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(bad),
         "--select", "L203"],
        capture_output=True, text=True, cwd=ROOT,
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"})
    assert out.returncode == 1
    assert "L203" in out.stdout
