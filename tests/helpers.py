"""Shared test helpers (importable as tests.helpers)."""

from typing import Optional

import numpy as np
import pytest

from repro.netsim import ClusterSpec, NetworkConfig
from repro.runtime import World


def flat_world(nprocs: int, threads_per_proc: int = 1,
               network: Optional[NetworkConfig] = None, **kwargs) -> World:
    """One single-process node per rank — the dominant test topology.

    Remaining keyword arguments pass straight through to :class:`World`
    (``seed``, ``max_vcis_per_proc``, instruments, ...); the cluster
    shape and network pricing go through a direct :class:`ClusterSpec`.
    """
    return World(cluster=ClusterSpec(nodes=nprocs,
                                     threads_per_proc=threads_per_proc,
                                     network=network), **kwargs)


def run_ranks(world: World, *fns, max_steps=2_000_000):
    """Spawn ``fns[i]`` (a generator function taking the process) on rank
    ``i``, run to completion, and return their return values."""
    tasks = [world.procs[i].spawn(fn(world.procs[i]))
             for i, fn in enumerate(fns)]
    return world.run_all(tasks, max_steps=max_steps)


def run_same(world: World, fn, max_steps=2_000_000):
    """Run the same generator function on every rank."""
    return run_ranks(world, *([fn] * world.num_procs), max_steps=max_steps)
