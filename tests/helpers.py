"""Shared test helpers (importable as tests.helpers)."""

import numpy as np
import pytest

from repro.netsim import NetworkConfig
from repro.runtime import World


def flat_world(nprocs: int, **kwargs) -> World:
    """One single-process node per rank — the dominant test topology.

    Keyword arguments pass straight through to :class:`World`
    (``threads_per_proc``, ``cfg``, ``seed``, instruments, ...).
    """
    return World(num_nodes=nprocs, procs_per_node=1, **kwargs)


def run_ranks(world: World, *fns, max_steps=2_000_000):
    """Spawn ``fns[i]`` (a generator function taking the process) on rank
    ``i``, run to completion, and return their return values."""
    tasks = [world.procs[i].spawn(fn(world.procs[i]))
             for i, fn in enumerate(fns)]
    return world.run_all(tasks, max_steps=max_steps)


def run_same(world: World, fn, max_steps=2_000_000):
    """Run the same generator function on every rank."""
    return run_ranks(world, *([fn] * world.num_procs), max_steps=max_steps)
