"""Golden-table regression: EXPERIMENTS.md vs the live benchmarks.

EXPERIMENTS.md records the measured numbers for every figure at the
default seeds; the runs are fully deterministic, so those tables are
exact expectations, not approximations. These tests parse the Fig 1(a)
and Fig 1(b) tables out of the document and assert the current code
still produces every cell — any intentional performance-model change
must update EXPERIMENTS.md in the same commit.
"""

import pathlib
import re

import pytest

from repro.apps.stencil import StencilConfig, run_stencil
from repro.bench import MsgRateConfig, run_msgrate
from repro.netsim import NetworkConfig

EXPERIMENTS = pathlib.Path(__file__).resolve().parents[1] / "EXPERIMENTS.md"

#: EXPERIMENTS.md column header -> MsgRateConfig mode.
FIG1A_MODES = {
    "everywhere": "everywhere",
    "original": "threads-original",
    "tags (Listing 2)": "threads-tags",
    "comms": "threads-comms",
    "endpoints": "threads-endpoints",
}


def _section(text: str, heading: str) -> str:
    """The body of the markdown section starting with ``heading``."""
    start = text.index(heading)
    nxt = text.find("\n## ", start + 1)
    return text[start:nxt if nxt != -1 else len(text)]


def parse_fig1a() -> dict[tuple[str, int], float]:
    """(mode, cores) -> M msg/s from the Fig 1(a) table."""
    section = _section(EXPERIMENTS.read_text(), "## Fig 1(a)")
    rows = [[c.strip() for c in line.strip().strip("|").split("|")]
            for line in section.splitlines()
            if line.lstrip().startswith("|")]
    header, cells = rows[0], rows[2:]  # rows[1] is the |---:| rule
    assert header[0] == "cores" and len(header) == len(FIG1A_MODES) + 1
    golden = {}
    for row in cells:
        cores = int(row[0])
        for name, value in zip(header[1:], row[1:]):
            golden[(FIG1A_MODES[name], cores)] = float(value)
    return golden


def parse_fig1b() -> dict[int, float]:
    """threads -> original/endpoints halo ratio from the Fig 1(b) prose."""
    section = _section(EXPERIMENTS.read_text(), "## Fig 1(b)")
    pairs = re.findall(r"(\d+\.\d+)x[*\s]*\((\d+)(?:\s+threads)?\)",
                       section)
    return {int(threads): float(ratio) for ratio, threads in pairs}


def test_fig1a_golden_table():
    golden = parse_fig1a()
    assert len(golden) == 20, "Fig 1(a) table shape changed"
    mismatches = []
    for (mode, cores), expected in sorted(golden.items()):
        r = run_msgrate(MsgRateConfig(mode=mode, cores=cores,
                                      msgs_per_core=64),
                        net=NetworkConfig.omnipath())
        got = round(r.rate / 1e6, 1)
        if got != expected:
            mismatches.append(f"{mode}/{cores}: EXPERIMENTS.md says "
                              f"{expected}, measured {got}")
    assert not mismatches, (
        "Fig 1(a) drifted from EXPERIMENTS.md (update the table if the "
        "change is intentional):\n  " + "\n  ".join(mismatches))


def test_fig1b_golden_ratios():
    golden = parse_fig1b()
    assert set(golden) == {4, 9, 16}, "Fig 1(b) prose shape changed"
    grids = {4: (2, 2), 9: (3, 3), 16: (4, 4)}
    mismatches = []
    for threads, expected in sorted(golden.items()):
        halo = {}
        for mech in ("original", "endpoints"):
            cfg = StencilConfig(proc_grid=(2, 2),
                                thread_grid=grids[threads],
                                pnx=6, pny=6, stencil_points=9, iters=4,
                                mechanism=mech)
            r = run_stencil(cfg, net=NetworkConfig.omnipath())
            assert r.correct
            halo[mech] = r.halo_time
        got = round(halo["original"] / halo["endpoints"], 2)
        if got != expected:
            mismatches.append(f"{threads} threads: EXPERIMENTS.md says "
                              f"{expected}x, measured {got}x")
    assert not mismatches, (
        "Fig 1(b) drifted from EXPERIMENTS.md (update the prose if the "
        "change is intentional):\n  " + "\n  ".join(mismatches))


@pytest.mark.parametrize("parser,n", [(parse_fig1a, 20), (parse_fig1b, 3)])
def test_parsers_find_the_tables(parser, n):
    """The parsers themselves must fail loudly if the doc is reshaped."""
    assert len(parser()) == n
