"""Unit tests for Info objects and hint parsing (repro.mpi.info)."""

import pytest

from repro.errors import InvalidHintError
from repro.mpi.info import (
    CommHints,
    Info,
    parse_comm_hints,
    parse_window_hints,
)


# ---------------------------------------------------------------- Info

def test_info_set_get_delete():
    info = Info()
    info.set("k", "v")
    assert info.get("k") == "v"
    assert "k" in info
    info.delete("k")
    assert info.get("k") is None
    info.delete("k")  # idempotent


def test_info_stringifies_values():
    info = Info()
    info.set("mpich_num_vcis", 8)
    assert info.get("mpich_num_vcis") == "8"


def test_info_copy_is_independent():
    a = Info({"x": "1"})
    b = a.copy()
    b.set("x", "2")
    assert a.get("x") == "1"


def test_info_rejects_bad_keys():
    with pytest.raises(InvalidHintError):
        Info().set("", "v")
    with pytest.raises(InvalidHintError):
        Info().set(7, "v")


def test_unknown_hints_ignored():
    hints = parse_comm_hints(Info({"some_vendor_hint": "whatever"}))
    assert hints == CommHints()


# ------------------------------------------------------------ comm hints

def test_default_hints():
    h = parse_comm_hints(None)
    assert not h.allow_overtaking and not h.no_any_tag and not h.no_any_source
    assert h.num_vcis == 1
    assert not h.send_side_spreading and not h.recv_side_spreading


def test_assertion_parsing():
    info = Info({
        "mpi_assert_allow_overtaking": "true",
        "mpi_assert_no_any_tag": "TRUE",
        "mpi_assert_no_any_source": "1",
    })
    h = parse_comm_hints(info)
    assert h.allow_overtaking and h.no_any_tag and h.no_any_source
    assert h.wildcards_forbidden


def test_bad_boolean_rejected():
    with pytest.raises(InvalidHintError):
        parse_comm_hints(Info({"mpi_assert_no_any_tag": "maybe"}))


def test_bad_int_rejected():
    with pytest.raises(InvalidHintError):
        parse_comm_hints(Info({"mpich_num_vcis": "four"}))
    with pytest.raises(InvalidHintError):
        parse_comm_hints(Info({"mpich_num_vcis": "0"}))


def test_listing2_hint_bundle():
    """The full Listing 2 hint set from the paper parses and validates."""
    info = Info({
        "mpi_assert_no_any_tag": "true",
        "mpi_assert_no_any_source": "true",
        "mpich_num_vcis": "8",
        "mpich_num_tag_bits_vci": "3",
        "mpich_place_tag_bits_local_vci": "MSB",
        "mpich_tag_vci_hash_type": "one-to-one",
    })
    h = parse_comm_hints(info)
    assert h.num_vcis == 8
    assert h.num_tag_bits_vci == 3
    assert h.tag_vci_hash_type == "one-to-one"
    assert h.recv_side_spreading and h.send_side_spreading


def test_one_to_one_requires_no_wildcards():
    info = Info({
        "mpich_num_vcis": "8",
        "mpich_num_tag_bits_vci": "3",
        "mpich_tag_vci_hash_type": "one-to-one",
    })
    with pytest.raises(InvalidHintError, match="no_any_tag"):
        parse_comm_hints(info)


def test_one_to_one_requires_tag_bits():
    info = Info({
        "mpi_assert_no_any_tag": "true",
        "mpi_assert_no_any_source": "true",
        "mpich_num_vcis": "8",
        "mpich_tag_vci_hash_type": "one-to-one",
    })
    with pytest.raises(InvalidHintError, match="tag_bits"):
        parse_comm_hints(info)


def test_bad_placement_rejected():
    with pytest.raises(InvalidHintError):
        parse_comm_hints(Info({"mpich_place_tag_bits_local_vci": "MIDDLE"}))


def test_bad_hash_type_rejected():
    with pytest.raises(InvalidHintError):
        parse_comm_hints(Info({"mpich_tag_vci_hash_type": "two-to-one"}))


def test_overtaking_alone_gives_send_side_spreading_only():
    """Paper, Section II-A: allow_overtaking makes *sends* with different
    tags logically parallel, but receives (wildcards possible) are not."""
    info = Info({
        "mpi_assert_allow_overtaking": "true",
        "mpich_num_vcis": "4",
    })
    h = parse_comm_hints(info)
    assert h.send_side_spreading
    assert not h.recv_side_spreading


def test_no_wildcards_gives_both_side_spreading():
    info = Info({
        "mpi_assert_no_any_tag": "true",
        "mpi_assert_no_any_source": "true",
        "mpich_num_vcis": "4",
    })
    h = parse_comm_hints(info)
    assert h.send_side_spreading and h.recv_side_spreading


def test_spreading_requires_multiple_vcis():
    info = Info({
        "mpi_assert_no_any_tag": "true",
        "mpi_assert_no_any_source": "true",
    })
    h = parse_comm_hints(info)
    assert not h.send_side_spreading and not h.recv_side_spreading


# ------------------------------------------------------------ window hints

def test_window_hints_default():
    h = parse_window_hints(None)
    assert h.accumulate_ordering == "default"
    assert h.num_vcis == 1
    assert not h.atomics_may_spread


def test_window_hints_none_ordering_with_vcis():
    h = parse_window_hints(Info({"accumulate_ordering": "none",
                                 "mpich_rma_num_vcis": "8"}))
    assert h.atomics_may_spread


def test_window_hints_ordering_alone_does_not_spread():
    h = parse_window_hints(Info({"accumulate_ordering": "none"}))
    assert not h.atomics_may_spread


def test_window_hints_bad_ordering():
    with pytest.raises(InvalidHintError):
        parse_window_hints(Info({"accumulate_ordering": "sometimes"}))
