"""Partitioned communication tests (repro.mpi.partitioned)."""

import numpy as np
import pytest

from repro.errors import MpiUsageError
from repro.mpi import ANY_SOURCE, ANY_TAG, Info
from repro.mpi.partitioned import (
    precv_init,
    psend_init,
    startall,
    waitall_partitioned,
)
from repro.runtime import World

from tests.helpers import run_ranks, run_same


def test_basic_partitioned_transfer(world2):
    def sender(proc):
        buf = np.arange(20, dtype=np.float64)
        req = psend_init(proc.comm_world, buf, partitions=5, count=4,
                         dest=1, tag=3)
        yield from req.start()
        for i in range(5):
            yield from req.pready(i)
        yield from req.wait()

    def receiver(proc):
        buf = np.zeros(20)
        req = precv_init(proc.comm_world, buf, partitions=5, count=4,
                         source=0, tag=3)
        yield from req.start()
        yield from req.wait()
        assert np.allclose(buf, np.arange(20))

    run_ranks(world2, sender, receiver)


def test_out_of_order_pready(world2):
    def sender(proc):
        buf = np.arange(8, dtype=np.float64)
        req = psend_init(proc.comm_world, buf, 4, 2, dest=1, tag=0)
        yield from req.start()
        for i in (3, 1, 0, 2):
            yield from req.pready(i)
        yield from req.wait()

    def receiver(proc):
        buf = np.zeros(8)
        req = precv_init(proc.comm_world, buf, 4, 2, source=0, tag=0)
        yield from req.start()
        yield from req.wait()
        assert np.allclose(buf, np.arange(8))

    run_ranks(world2, sender, receiver)


def test_persistence_across_cycles(world2):
    """Start/pready/wait can be repeated; matching happens only once."""
    cycles = 4

    def sender(proc):
        buf = np.zeros(6)
        req = psend_init(proc.comm_world, buf, 3, 2, dest=1, tag=0)
        for it in range(cycles):
            buf[:] = it
            yield from req.start()
            for i in range(3):
                yield from req.pready(i)
            yield from req.wait()

    def receiver(proc):
        buf = np.zeros(6)
        req = precv_init(proc.comm_world, buf, 3, 2, source=0, tag=0)
        engine_scans = []
        for it in range(cycles):
            yield from req.start()
            yield from req.wait()
            assert np.allclose(buf, it), (it, buf)
        return True

    assert run_ranks(world2, sender, receiver)[1] is True


def test_parrived_flags(world2):
    def sender(proc):
        buf = np.arange(4, dtype=np.float64)
        req = psend_init(proc.comm_world, buf, 2, 2, dest=1, tag=0)
        yield from req.start()
        yield from req.pready(0)
        yield proc.compute(1e-3)
        yield from req.pready(1)
        yield from req.wait()

    def receiver(proc):
        buf = np.zeros(4)
        req = precv_init(proc.comm_world, buf, 2, 2, source=0, tag=0)
        yield from req.start()
        # Poll partition 0 until it lands; partition 1 must still be absent
        # (sender delays it by 1 ms).
        while not (yield from req.parrived(0)):
            yield proc.compute(5e-6)
        arrived1 = yield from req.parrived(1)
        assert not arrived1
        yield from req.wait()
        assert np.allclose(buf, np.arange(4))

    run_ranks(world2, sender, receiver)


def test_multiple_threads_drive_partitions(world2):
    nthreads = 4

    def sender(proc):
        buf = np.arange(16, dtype=np.float64)
        req = psend_init(proc.comm_world, buf, nthreads, 4, dest=1, tag=0)
        yield from req.start()

        def thread(i):
            yield from req.pready(i)

        tasks = [proc.spawn(thread(i)) for i in range(nthreads)]
        yield proc.sim.all_of(tasks)
        yield from req.wait()
        # The shared-request lock saw every thread (Lesson 14).
        assert req.shared_lock.stats.acquisitions == nthreads

    def receiver(proc):
        buf = np.zeros(16)
        req = precv_init(proc.comm_world, buf, nthreads, 4, source=0, tag=0)
        yield from req.start()
        yield from req.wait()
        assert np.allclose(buf, np.arange(16))

    run_ranks(world2, sender, receiver)


def test_partition_vci_spreading(world2):
    """mpich_part_num_vcis spreads partitions over several VCIs."""
    def sender(proc):
        info = Info({"mpich_part_num_vcis": "4"})
        buf = np.zeros(16)
        req = psend_init(proc.comm_world, buf, 8, 2, dest=1, tag=0,
                         info=info)
        yield from req.start()
        for i in range(8):
            yield from req.pready(i)
        yield from req.wait()
        used = {req.vci_index_for_partition(i) for i in range(8)}
        assert len(used) == 4

    def receiver(proc):
        buf = np.zeros(16)
        req = precv_init(proc.comm_world, buf, 8, 2, source=0, tag=0)
        yield from req.start()
        yield from req.wait()

    run_ranks(world2, sender, receiver)


# ---------------------------------------------------------------- errors

def test_precv_rejects_wildcards(world2):
    comm = world2.comm_world(0)
    with pytest.raises(MpiUsageError, match="ANY_SOURCE"):
        precv_init(comm, np.zeros(4), 2, 2, source=ANY_SOURCE, tag=0)
    with pytest.raises(MpiUsageError, match="ANY_TAG"):
        precv_init(comm, np.zeros(4), 2, 2, source=0, tag=ANY_TAG)


def test_bad_partition_counts_rejected(world2):
    comm = world2.comm_world(0)
    with pytest.raises(MpiUsageError):
        psend_init(comm, np.zeros(4), 0, 2, dest=1, tag=0)
    with pytest.raises(MpiUsageError):
        psend_init(comm, np.zeros(4), 2, -1, dest=1, tag=0)
    with pytest.raises(MpiUsageError):
        psend_init(comm, np.zeros(4), 4, 2, dest=1, tag=0)  # buf too small


def test_pready_requires_active(world2):
    comm = world2.comm_world(0)
    req = psend_init(comm, np.zeros(4), 2, 2, dest=1, tag=0)

    def t(proc):
        with pytest.raises(MpiUsageError, match="inactive"):
            yield from req.pready(0)

    world2.run_all([world2.procs[0].spawn(t(world2.procs[0]))])


def test_double_pready_rejected(world2):
    def sender(proc):
        req = psend_init(proc.comm_world, np.zeros(4), 2, 2, dest=1, tag=0)
        yield from req.start()
        yield from req.pready(0)
        with pytest.raises(MpiUsageError, match="twice"):
            yield from req.pready(0)
        yield from req.pready(1)
        yield from req.wait()

    def receiver(proc):
        req = precv_init(proc.comm_world, np.zeros(4), 2, 2, source=0, tag=0)
        yield from req.start()
        yield from req.wait()

    run_ranks(world2, sender, receiver)


def test_double_start_rejected(world2):
    def sender(proc):
        req = psend_init(proc.comm_world, np.zeros(4), 2, 2, dest=1, tag=0)
        yield from req.start()
        with pytest.raises(MpiUsageError):
            yield from req.start()
        for i in range(2):
            yield from req.pready(i)
        yield from req.wait()

    def receiver(proc):
        req = precv_init(proc.comm_world, np.zeros(4), 2, 2, source=0, tag=0)
        yield from req.start()
        yield from req.wait()

    run_ranks(world2, sender, receiver)


def test_startall_waitall_helpers(world2):
    def sender(proc):
        bufs = [np.full(4, float(k)) for k in range(3)]
        reqs = [psend_init(proc.comm_world, bufs[k], 2, 2, dest=1, tag=k)
                for k in range(3)]
        yield from startall(reqs)
        for r in reqs:
            for i in range(2):
                yield from r.pready(i)
        yield from waitall_partitioned(reqs)

    def receiver(proc):
        bufs = [np.zeros(4) for _ in range(3)]
        reqs = [precv_init(proc.comm_world, bufs[k], 2, 2, source=0, tag=k)
                for k in range(3)]
        yield from startall(reqs)
        yield from waitall_partitioned(reqs)
        for k in range(3):
            assert np.allclose(bufs[k], k)

    run_ranks(world2, sender, receiver)
