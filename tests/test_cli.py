"""Tests for the command-line experiment runner (repro.cli)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_resources_command(capsys):
    assert main(["resources", "--grid", "4", "4", "4"]) == 0
    out = capsys.readouterr().out
    assert "808" in out and "56" in out and "14.4x" in out


def test_scope_command(capsys):
    assert main(["scope"]) == 0
    out = capsys.readouterr().out
    assert "TBD" in out
    assert "partitioned" in out
    assert "mirroring" in out  # usability table


def test_msgrate_command(capsys):
    assert main(["msgrate", "--modes", "threads-original",
                 "threads-endpoints", "--cores", "1", "4",
                 "--messages", "24"]) == 0
    out = capsys.readouterr().out
    assert "threads-original" in out and "threads-endpoints" in out


def test_msgrate_rejects_bad_mode():
    with pytest.raises(SystemExit):
        main(["msgrate", "--modes", "bogus"])


def test_stencil_command(capsys):
    assert main(["stencil", "--mechanisms", "endpoints", "--threads",
                 "2", "2", "--patch", "4", "--iters", "2"]) == 0
    out = capsys.readouterr().out
    assert "endpoints" in out and "True" in out


def test_legion_command(capsys):
    assert main(["legion", "--threads", "4", "--messages", "6"]) == 0
    out = capsys.readouterr().out
    assert "communicators" in out


def test_vasp_command(capsys):
    assert main(["vasp", "--nodes", "2", "--threads", "4", "--elems",
                 "1024", "--repeats", "1"]) == 0
    out = capsys.readouterr().out
    assert "funneled" in out and "KiB" in out


def test_device_command(capsys):
    assert main(["device", "--blocks", "4", "--steps", "3"]) == 0
    out = capsys.readouterr().out
    assert "device-partitioned" in out


def test_graph_command(capsys):
    assert main(["graph", "--vertices", "60", "--iters", "2"]) == 0
    out = capsys.readouterr().out
    assert "conflicts" in out


def test_nwchem_command(capsys):
    assert main(["nwchem", "--threads", "4", "--tasks", "3"]) == 0
    out = capsys.readouterr().out
    assert "window-relaxed" in out


def test_circuit_command(capsys):
    assert main(["circuit", "--threads", "4", "--steps", "2",
                 "--wires", "4"]) == 0
    out = capsys.readouterr().out
    assert "time/step" in out


def test_stencil_3d_command(capsys):
    assert main(["stencil", "--points", "27", "--procs", "2", "2", "2",
                 "--threads", "2", "2", "2", "--patch", "3", "--iters",
                 "2", "--mechanisms", "endpoints"]) == 0
    out = capsys.readouterr().out
    assert "True" in out


def test_stencil_dimension_mismatch_errors(capsys):
    assert main(["stencil", "--points", "27", "--procs", "2", "2",
                 "--threads", "2", "2"]) == 2
    assert "3-D" in capsys.readouterr().err
