"""Engine equivalence: the calendar scheduler vs the reference heap.

The calendar-queue engine (``repro.sim.calendar``) is a pure host-side
optimisation: for ANY workload, mechanism and seed it must dispatch the
exact same events in the exact same order as the legacy binary-heap
engine, so the two produce byte-identical state digests at EVERY kernel
step — mid-run cut points included, since observers (checker, snapshot
controller) read state between arbitrary events. Hypothesis drives the
workload shapes; the Fig 1(a) golden table pins the calendar engine to
the published numbers.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import MsgRateConfig, run_msgrate
from repro.sim.calendar import (ENGINES, CalendarSimulator, default_engine,
                                make_simulator)
from repro.sim.core import Simulator
from repro.snap import capture_state, state_digest
from repro.snap.bisect import first_divergence
from tests.test_golden_tables import parse_fig1a
from tests.test_snap_property import make_build, workload_specs

SETTINGS = settings(max_examples=20, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow,
                                           HealthCheck.data_too_large])


def _with_engine(build, engine: str):
    """``build`` pinned to one engine via the selection knob."""
    def pinned():
        old = os.environ.get("REPRO_SIM_ENGINE")
        os.environ["REPRO_SIM_ENGINE"] = engine
        try:
            return build()
        finally:
            if old is None:
                os.environ.pop("REPRO_SIM_ENGINE", None)
            else:
                os.environ["REPRO_SIM_ENGINE"] = old
    return pinned


def _digest(world) -> str:
    return state_digest(capture_state(world))


def test_engine_registry_and_knob(monkeypatch):
    assert set(ENGINES) == {"calendar", "heap"}
    assert isinstance(make_simulator("calendar"), CalendarSimulator)
    heap = make_simulator("heap")
    assert isinstance(heap, Simulator)
    assert not isinstance(heap, CalendarSimulator)
    with pytest.raises(ValueError):
        make_simulator("btree")
    monkeypatch.setenv("REPRO_SIM_ENGINE", "heap")
    assert default_engine() == "heap"
    monkeypatch.delenv("REPRO_SIM_ENGINE")
    assert default_engine() == "calendar"


@given(spec=workload_specs(), frac=st.floats(0.0, 1.0))
@SETTINGS
def test_engines_digest_identical_at_any_cut(spec, frac):
    """Random workloads x mechanisms x seeds: equal digests at a random
    cut point AND at completion, with equal step counts."""
    build = make_build(spec)
    heap_ref = _with_engine(build, "heap")()
    heap_ref.run()
    total = heap_ref.sim.steps
    assert total > 0
    cut = min(total - 1, int(total * frac))

    heap = _with_engine(build, "heap")()
    cal = _with_engine(build, "calendar")()
    assert type(cal.sim) is CalendarSimulator
    assert type(heap.sim) is Simulator
    heap.sim.run_steps(cut)
    cal.sim.run_steps(cut)
    assert _digest(heap) == _digest(cal)
    heap.run()
    cal.run()
    assert cal.sim.steps == heap.sim.steps == total
    assert _digest(cal) == _digest(heap) == _digest(heap_ref)


def test_first_divergence_finds_none_between_engines():
    """The bisect machinery itself vouches for the engines: no step at
    which heap and calendar states differ."""
    spec = {"kind": "ring", "seed": 11, "threads": 2, "nmsg": 3,
            "nbytes": 4096, "instruments": True, "faults": True}
    build = make_build(spec)
    assert first_divergence(_with_engine(build, "heap"),
                            _with_engine(build, "calendar")) is None


@pytest.mark.parametrize("mode", ["everywhere", "threads-tags",
                                  "threads-original"])
def test_fig1a_heap_calendar_byte_identical(mode):
    cfg = MsgRateConfig(mode=mode, cores=2, msgs_per_core=8)
    results = {}
    for engine in ENGINES:
        old = os.environ.get("REPRO_SIM_ENGINE")
        os.environ["REPRO_SIM_ENGINE"] = engine
        try:
            r = run_msgrate(cfg)
        finally:
            if old is None:
                os.environ.pop("REPRO_SIM_ENGINE", None)
            else:
                os.environ["REPRO_SIM_ENGINE"] = old
        results[engine] = (r.rate, r.span, r.messages)
    # Exact float equality: same events, same order, same arithmetic.
    assert results["calendar"] == results["heap"]


def test_fig1a_golden_under_calendar():
    """The calendar engine reproduces the EXPERIMENTS.md Fig 1(a) cells
    (the golden table is exact, not a tolerance band)."""
    from repro.netsim import NetworkConfig
    golden = parse_fig1a()
    old = os.environ.get("REPRO_SIM_ENGINE")
    os.environ["REPRO_SIM_ENGINE"] = "calendar"
    try:
        for mode, cores in [("everywhere", 8), ("threads-original", 8),
                            ("threads-tags", 8)]:
            r = run_msgrate(MsgRateConfig(mode=mode, cores=cores,
                                          msgs_per_core=64),
                            net=NetworkConfig.omnipath())
            assert round(r.rate / 1e6, 1) == golden[(mode, cores)]
    finally:
        if old is None:
            os.environ.pop("REPRO_SIM_ENGINE", None)
        else:
            os.environ["REPRO_SIM_ENGINE"] = old
