"""End-to-end service battery (tier 2): byte-identity under chaos.

THE acceptance criterion: a 200-point mixed sweep+campaign served over
HTTP across 2 workers returns results byte-identical to the in-process
reference (:func:`run_points` / :func:`run_scenarios`) — while
surviving a ``kill -9`` of one worker *and* a ``kill -9`` + restart of
the orchestrator mid-run, with zero lost and zero duplicated points —
and a resubmission of the same jobs is answered 100% from the warm
result cache without executing anything.

These tests fork real service processes (no event loop in the test),
so they exercise the same discovery file, supervision and crash paths
an operator would hit.
"""

import json
import os
import signal
import time

import pytest

from repro.bench.memo import json_roundtrip
from repro.bench.parallel import run_points
from repro.scenarios.executor import run_scenarios
from repro.scenarios.sample import sample_scenarios
from repro.serve.points import expand_job, msgrate_point
from repro.serve.service import spawn_service

pytestmark = pytest.mark.tier2

# The 200-point battery: a 40-point Fig 1(a)-style sweep plus a
# 160-scenario chaos campaign, mixed in one service run.
SWEEP_SPEC = {"params": {"mode": ["everywhere", "threads-original",
                                  "threads-tags", "threads-comms",
                                  "threads-endpoints"],
                         "cores": [1, 2],
                         "msgs_per_core": [8, 16, 24, 32],
                         "window": [4]}}
CAMPAIGN_SPEC = {"seed": 11, "n": 160}


def _canon(doc):
    """Canonical bytes of a JSON document (byte-identity comparisons)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      default=str).encode("utf-8")


def _total_done(client, job_ids):
    return sum(client.job(j)["done"] for j in job_ids)


def _wait_until(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {what}"
        time.sleep(0.02)


def test_200_point_battery_survives_kills_and_is_byte_identical(tmp_path):
    state = str(tmp_path / "serve")
    handle = spawn_service(state, workers=2, oversubscribe=True,
                           heartbeat=0.2, heartbeat_timeout=3.0)
    try:
        client = handle.client()
        sweep = client.submit("sweep", SWEEP_SPEC)
        campaign = client.submit("campaign", CAMPAIGN_SPEC)
        job_ids = [sweep["job_id"], campaign["job_id"]]
        assert sweep["total"] + campaign["total"] == 200

        # Chaos 1: kill -9 one worker once points are flowing. Its
        # in-flight point must be requeued; the supervisor respawns
        # capacity.
        _wait_until(lambda: _total_done(client, job_ids) >= 5, 60,
                    "first points")
        victim = handle.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        _wait_until(lambda: victim not in handle.worker_pids(), 30,
                    "dead worker detection")
        _wait_until(lambda: len(handle.worker_pids()) == 2, 30,
                    "worker respawn")

        # Chaos 2: kill -9 the orchestrator itself mid-run, then restart
        # on the same state dir. Manifests + result cache must rebuild
        # the queue with exactly the unfinished points.
        _wait_until(lambda: _total_done(client, job_ids) >= 60, 120,
                    "mid-run progress")
        done_before_crash = _total_done(client, job_ids)
        handle.kill()
        assert not handle.alive()
        handle = spawn_service(state, workers=2, oversubscribe=True,
                               heartbeat=0.2, heartbeat_timeout=3.0)
        client = handle.client()
        resumed = {j["job_id"]: j for j in client.jobs()}
        assert set(resumed) == set(job_ids)  # same ids, from manifests
        # Completed points were served from the cache, not re-run.
        assert sum(j["cache_hits"] for j in resumed.values()) >= \
            done_before_crash - 2  # minus at most the in-flight points

        for job_id in job_ids:
            client.wait(job_id, timeout=300)

        # Byte-identity against the in-process references.
        sweep_doc = client.result(sweep["job_id"])
        _, sweep_points = expand_job("sweep", SWEEP_SPEC)
        assert sweep_doc["points"] == sweep_points
        reference = [json_roundtrip(r) for r in
                     run_points(msgrate_point, sweep_points, jobs=1)]
        assert _canon(sweep_doc["results"]) == _canon(reference)

        campaign_doc = client.result(campaign["job_id"])
        specs = sample_scenarios(CAMPAIGN_SPEC["seed"], CAMPAIGN_SPEC["n"])
        assert _canon(campaign_doc["results"]) == \
            _canon(run_scenarios(specs))
        # Zero lost, zero duplicated: every point slot filled exactly
        # once, in expansion order.
        assert len(campaign_doc["results"]) == 160
        assert len(sweep_doc["results"]) == 40

        # Resubmission: 100% warm cache hits, nothing executes.
        for kind, spec, total in (("sweep", SWEEP_SPEC, 40),
                                  ("campaign", CAMPAIGN_SPEC, 160)):
            again = client.submit(kind, spec)
            assert again["status"] == "done", again
            assert again["cache_hits"] == total == again["done"]
        metrics = client.metrics()
        assert metrics["cache"]["hits"] >= 200
    finally:
        handle.stop()


def test_campaign_result_carries_local_summary_shape(tmp_path):
    spec = {"seed": 3, "n": 6}
    handle = spawn_service(str(tmp_path / "s"), workers=1)
    try:
        client = handle.client()
        job = client.submit("campaign", spec)
        client.wait(job["job_id"], timeout=120)
        summary = client.result(job["job_id"])["summary"]
    finally:
        handle.stop()
    from repro.scenarios.campaign import summarize_outcomes
    from repro.scenarios.sample import SAMPLER_VERSION
    outcomes = run_scenarios(sample_scenarios(3, 6))
    manifest = {"seed": 3, "n": 6, "apps": None,
                "sampler_version": SAMPLER_VERSION}
    assert _canon(summary) == \
        _canon(summarize_outcomes(manifest, outcomes, []))


def test_http_api_status_codes(tmp_path):
    handle = spawn_service(str(tmp_path / "s"), workers=1)
    try:
        client = handle.client()
        # In-flight job: /result answers 409, not a broken document.
        job = client.submit("selftest", {"n": 4, "ms": 200})
        status, doc = client.request(
            "GET", f"/jobs/{job['job_id']}/result")
        assert status == 409 and "running" in doc["error"]
        # Unknown job: 404. Bad documents and kinds: 400.
        assert client.request("GET", "/jobs/job-99999")[0] == 404
        assert client.request("POST", "/jobs", {"kind": "nope"})[0] == 400
        assert client.request("POST", "/jobs", {"no": "kind"})[0] == 400
        # A failing point turns into a 500 on /result with the blame.
        failing = client.submit("selftest", {"n": 1, "fail_at": 0})
        _wait_until(lambda: client.job(failing["job_id"])["status"] ==
                    "failed", 60, "failing job")
        status, doc = client.request(
            "GET", f"/jobs/{failing['job_id']}/result")
        assert status == 500 and "asked to fail" in doc["error"]
        # The sleepy job still completes cleanly afterwards.
        client.wait(job["job_id"], timeout=120)
        trace = client.trace(job["job_id"])
        assert len(trace["traceEvents"]) == 4  # one slice per executed point
    finally:
        handle.stop()


def test_service_auto_sizes_workers_to_host(tmp_path):
    """The sizing bugfix end to end: asking for 64 workers on this host
    must start cpu_count workers, not 64 — unless oversubscribe."""
    handle = spawn_service(str(tmp_path / "s"), workers=64)
    try:
        expected = os.cpu_count() or 1
        assert len(handle.worker_pids()) == expected
    finally:
        handle.stop()


def test_yaml_job_document_over_http(tmp_path):
    handle = spawn_service(str(tmp_path / "s"), workers=1)
    try:
        client = handle.client()
        body = "kind: selftest\nspec:\n  n: 3\n"
        import http.client as hc
        import urllib.parse
        parsed = urllib.parse.urlsplit(handle.url)
        conn = hc.HTTPConnection(parsed.hostname, parsed.port, timeout=30)
        conn.request("POST", "/jobs", body=body.encode())
        response = conn.getresponse()
        doc = json.loads(response.read())
        conn.close()
        assert response.status == 201 and doc["total"] == 3
        client.wait(doc["job_id"], timeout=60)
        assert client.result(doc["job_id"])["results"] == \
            [{"i": 0, "value": 0}, {"i": 1, "value": 1},
             {"i": 2, "value": 4}]
    finally:
        handle.stop()
