"""The parallel sweep executor: identical results serial vs fanned out.

Sweep points are independent simulations, so the executor may only change
host wall-clock — never results or their order (see docs/performance.md).
"""

import pytest

from repro.bench import (MsgRateConfig, Sweep, auto_jobs, chunk_size,
                        default_jobs, run_points, run_msgrate, scaling_run)


def _square(x, offset=0):
    return x * x + offset


def _square_row(x, offset=0):
    return {"y": x * x + offset}


def _rate(mode, cores):
    r = run_msgrate(MsgRateConfig(mode=mode, cores=cores, msgs_per_core=8))
    return r.rate


POINTS = [{"x": i, "offset": i % 3} for i in range(17)]


def test_run_points_serial_order():
    assert run_points(_square, POINTS, jobs=1) == \
        [p["x"] ** 2 + p["offset"] for p in POINTS]


def test_run_points_parallel_matches_serial():
    serial = run_points(_square, POINTS, jobs=1)
    for jobs in (2, 4):
        assert run_points(_square, POINTS, jobs=jobs) == serial


def test_parallel_simulation_results_identical():
    """Full simulator runs fanned across workers return bit-identical
    rates in point order."""
    points = [{"mode": m, "cores": c}
              for m in ("everywhere", "threads-original")
              for c in (1, 4)]
    serial = run_points(_rate, points, jobs=1)
    fanned = run_points(_rate, points, jobs=2)
    assert [repr(r) for r in fanned] == [repr(r) for r in serial]


def test_sweep_run_jobs_matches_serial():
    sweep = Sweep(name="t", params={"x": [1, 2, 3], "offset": [0, 1]})
    rows_a = sweep.run(_square_row)
    rows_b = sweep.run(_square_row, jobs=2)
    assert [(r.params, r.outputs) for r in rows_a] == \
        [(r.params, r.outputs) for r in rows_b]
    assert rows_a[0].outputs == {"y": 1}


def test_default_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_BENCH_JOBS", "4")
    assert default_jobs() == 4
    monkeypatch.setenv("REPRO_BENCH_JOBS", "0")
    assert default_jobs() == 1  # clamped
    monkeypatch.setenv("REPRO_BENCH_JOBS", "banana")
    assert default_jobs() == 1  # malformed -> serial


def test_progress_called_serially():
    seen = []
    run_points(_square, POINTS[:4], jobs=1, progress=seen.append)
    assert seen == POINTS[:4]


def test_scaling_run_times_each_worker_count():
    walls = scaling_run(_square, POINTS[:4], jobs_list=(1, 2))
    assert set(walls) == {1, 2}
    assert all(rec["wall_sec"] >= 0 for rec in walls.values())
    # every jobs point carries the host's CPU count so sub-unity
    # "speedups" on oversubscribed hosts are attributable, not noise
    assert all(rec["cpu_count"] >= 1 for rec in walls.values())


def test_scaling_run_records_rss_and_dispatch_overhead():
    """Every jobs record must explain itself from the JSON alone: the
    pool's fixed dispatch cost, the chunking used, and the parent/worker
    memory high-water marks."""
    walls = scaling_run(_square, POINTS[:6], jobs_list=(1, 2))
    for jobs, rec in walls.items():
        assert rec["dispatch_sec"] >= 0
        assert rec["chunk_size"] == chunk_size(6, jobs)
        assert rec["rss_self_kb"] > 0
        assert rec["rss_children_kb"] >= 0


def test_chunk_size_floor_and_scaling():
    assert chunk_size(35, 4) == max(1, 35 // 16) == 2
    assert chunk_size(3, 4) == 1     # never zero
    assert chunk_size(0, 1) == 1
    assert chunk_size(400, 2) == 50  # ~4 chunks per worker


def test_chunked_dispatch_keeps_per_point_checkpoints(tmp_path):
    """Chunked pool tasks still checkpoint one file per point, and a
    resume returns byte-identical rows in the original order."""
    ckpt = str(tmp_path / "ckpt")
    fanned = run_points(_square, POINTS, jobs=3, checkpoint_dir=ckpt)
    files = [f for f in sorted((tmp_path / "ckpt").iterdir())
             if f.name.startswith("point-")]
    assert len(files) == len(POINTS)  # one checkpoint per point, not chunk
    resumed = run_points(_square, POINTS, jobs=3, checkpoint_dir=ckpt,
                         resume=True)
    assert resumed == fanned == run_points(_square, POINTS, jobs=1)


def test_chunked_dispatch_csv_byte_identical(tmp_path):
    sweep = Sweep(name="t", params={"x": [1, 2, 3, 4], "offset": [0, 1]})
    serial = tmp_path / "serial.csv"
    fanned = tmp_path / "fanned.csv"
    sweep.to_csv(sweep.run(_square_row), str(serial))
    sweep.to_csv(sweep.run(_square_row, jobs=3), str(fanned))
    assert fanned.read_bytes() == serial.read_bytes()


def test_worker_exception_propagates():
    with pytest.raises(TypeError):
        run_points(_square, [{"x": "nope"}, {"x": 1}], jobs=2)


def test_auto_jobs_defaults_to_cpu_count():
    # The serve orchestrator's sizing bugfix: never oversubscribe the
    # host by default (jobs > cpus is pure dispatch overhead — see the
    # scaling_run records in BENCH_kernel.json).
    assert auto_jobs(cpu_count=4) == 4
    assert auto_jobs(cpu_count=1) == 1


def test_auto_jobs_caps_explicit_requests_at_cpu_count():
    assert auto_jobs(requested=8, cpu_count=2) == 2
    assert auto_jobs(requested=8, cpu_count=2, oversubscribe=True) == 8
    assert auto_jobs(requested=2, cpu_count=8) == 2  # honor smaller asks


def test_auto_jobs_never_exceeds_point_count():
    assert auto_jobs(cpu_count=16, n_points=3) == 3
    assert auto_jobs(requested=8, cpu_count=16, n_points=1) == 1


def test_auto_jobs_is_always_at_least_one():
    assert auto_jobs(requested=0, cpu_count=4) == 1
    assert auto_jobs(requested=-3, cpu_count=4) == 1
    assert auto_jobs(cpu_count=0) == 1
    assert auto_jobs(n_points=0, cpu_count=4) == 1
