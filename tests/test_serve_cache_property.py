"""Property battery: the serve result cache never lies.

The cache's contract (mirroring ``test_bench_memo.py`` for the warm-
prefix memo): (1) a hit returns the byte-identical JSON document that
was saved — for ANY point shape Hypothesis can draw; (2) distinct
(kind, point) pairs never collide — loading one never returns the
other's result, even across hash-adjacent parameter dicts; (3) bumping
:data:`SERVE_CACHE_VERSION` invalidates every stored result at once
(stale keys simply never match again).
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve.cache import PENDING, ResultCache, cache_key

SETTINGS = settings(max_examples=50, deadline=None,
                    suppress_health_check=[
                        HealthCheck.too_slow,
                        # tmp_path_factory/monkeypatch reset per test, not
                        # per example — safe here: every example makes its
                        # own directory and sets the same attribute.
                        HealthCheck.function_scoped_fixture])

# Parameter values a job document can carry: anything JSON, including
# the awkward cases (unicode keys, nested lists, null, bool-vs-int).
scalars = st.one_of(st.none(), st.booleans(), st.integers(-2**31, 2**31),
                    st.floats(allow_nan=False, allow_infinity=False),
                    st.text(max_size=12))
values = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=3),
        st.dictionaries(st.text(max_size=8), inner, max_size=3)),
    max_leaves=8)
points = st.dictionaries(st.text(min_size=1, max_size=8), values,
                         max_size=4)
kinds = st.sampled_from(["msgrate", "scenario", "selftest"])
results = st.one_of(values, st.lists(values, max_size=4),
                    st.dictionaries(st.text(max_size=8), values,
                                    max_size=4))


def _canon(doc):
    return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      default=str)


@SETTINGS
@given(kind=kinds, point=points, result=results)
def test_hit_returns_byte_identical_result(tmp_path_factory, kind, point,
                                           result):
    cache = ResultCache(str(tmp_path_factory.mktemp("cache")))
    assert cache.load(kind, point) is PENDING  # cold
    cache.save(kind, point, result)
    loaded = cache.load(kind, point)
    assert _canon(loaded) == _canon(json.loads(_canon(result)))
    assert cache.hits == 1 and cache.misses == 1


@SETTINGS
@given(kind_a=kinds, point_a=points, kind_b=kinds, point_b=points,
       result_a=results, result_b=results)
def test_distinct_points_never_collide(tmp_path_factory, kind_a, point_a,
                                       kind_b, point_b, result_a, result_b):
    # Identity is the canonical JSON of (version, kind, point): only
    # byte-identical parameter documents share a key.
    same = cache_key(kind_a, point_a) == cache_key(kind_b, point_b)
    assert same == ((kind_a, _canon(point_a)) == (kind_b, _canon(point_b)))

    cache = ResultCache(str(tmp_path_factory.mktemp("cache")))
    cache.save(kind_a, point_a, result_a)
    cache.save(kind_b, point_b, result_b)
    loaded_b = cache.load(kind_b, point_b)
    assert _canon(loaded_b) == _canon(json.loads(_canon(result_b)))
    if not same:
        loaded_a = cache.load(kind_a, point_a)
        assert _canon(loaded_a) == _canon(json.loads(_canon(result_a)))
        assert len(cache) == 2  # one file per point, neither clobbered


@SETTINGS
@given(kind=kinds, point=points, result=results)
def test_version_bump_invalidates_everything(tmp_path_factory, kind, point,
                                             result):
    from unittest import mock

    import repro.serve.cache as cache_mod

    cache_dir = str(tmp_path_factory.mktemp("cache"))
    ResultCache(cache_dir).save(kind, point, result)
    # Patch inside the example (a monkeypatch fixture would stay applied
    # across Hypothesis examples, poisoning later saves too).
    with mock.patch.object(cache_mod, "SERVE_CACHE_VERSION", "serve0-other"):
        stale = ResultCache(cache_dir)
        assert stale.load(kind, point) is PENDING
        assert stale.hits == 0 and stale.misses == 1
    warm = ResultCache(cache_dir)
    assert warm.load(kind, point) is not PENDING  # original version still hits


def test_disabled_cache_always_misses():
    cache = ResultCache(None)
    cache.save("selftest", {"i": 1}, {"v": 1})
    assert cache.load("selftest", {"i": 1}) is PENDING
    assert len(cache) == 0
