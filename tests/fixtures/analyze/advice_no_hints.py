"""advice: a multi-threaded communicator without hints (S314/S315).

Correct MPI (the constant tags are distinct, so there is no channel
collision), but both thread regions drive one communicator with
overlapping constant tag space and no mpi_assert_* hints — the library
must assume wildcards and serialize (paper Lessons 5/6).
"""

import numpy as np

from repro.runtime import World


def rank0(proc):
    comm = proc.comm_world

    def left():
        req = yield from comm.Isend(np.full(2, 1.0), dest=1, tag=1)
        yield from req.wait()

    def right():
        req = yield from comm.Isend(np.full(2, 2.0), dest=1, tag=2)
        yield from req.wait()

    t1 = proc.spawn(left(), name="left")
    t2 = proc.spawn(right(), name="right")
    yield proc.sim.all_of([t1, t2])


def rank1(proc):
    buf = np.zeros(2)
    yield from proc.comm_world.Recv(buf, source=0, tag=1)
    yield from proc.comm_world.Recv(buf, source=0, tag=2)


def main():
    world = World(num_nodes=2, procs_per_node=1)
    world.run_all([world.procs[0].spawn(rank0(world.procs[0])),
                   world.procs[1].spawn(rank1(world.procs[1]))])


if __name__ == "__main__":
    main()
