"""bad (static-only): cancel on a request a wait already finished (S312).

The cancel is a silent no-op at run time, so only the static pass can
flag it; the cross-validation harness analyzes but does not execute it.
"""

import numpy as np

from repro.runtime import World


def rank0(proc):
    req = yield from proc.comm_world.Isend(np.zeros(4), dest=1, tag=0)
    yield from req.wait()
    req.cancel()


def rank1(proc):
    buf = np.zeros(4)
    yield from proc.comm_world.Recv(buf, source=0, tag=0)


def main():
    world = World(num_nodes=2, procs_per_node=1)
    world.run_all([world.procs[0].spawn(rank0(world.procs[0])),
                   world.procs[1].spawn(rank1(world.procs[1]))])


if __name__ == "__main__":
    main()
