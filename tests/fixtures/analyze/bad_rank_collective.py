"""bad (static-only): collectives diverge across rank branches (S310).

Executing this would deadlock (rank 0 enters a Barrier the other rank
never posts), so the cross-validation harness analyzes but does not
execute it.
"""

import numpy as np

from repro.runtime import World


def worker(proc):
    rank = proc.comm_world.rank
    if rank == 0:
        yield from proc.comm_world.Barrier()
        yield from proc.comm_world.Allreduce(np.ones(2), np.zeros(2))
    else:
        yield from proc.comm_world.Allreduce(np.ones(2), np.zeros(2))


def main():
    world = World(num_nodes=2, procs_per_node=1)
    world.run_all([world.procs[0].spawn(worker(world.procs[0])),
                   world.procs[1].spawn(worker(world.procs[1]))])


if __name__ == "__main__":
    main()
