"""bad: two threads send on one (comm, peer, tag) channel (CHK102/S302)."""

import numpy as np

from repro.runtime import World


def rank0(proc):
    comm = proc.comm_world

    def sender():
        req = yield from comm.Isend(np.full(2, 1.0), dest=1, tag=7)
        yield from req.wait()

    t1 = proc.spawn(sender(), name="s1")
    t2 = proc.spawn(sender(), name="s2")
    yield proc.sim.all_of([t1, t2])


def rank1(proc):
    buf = np.zeros(2)
    yield from proc.comm_world.Recv(buf, source=0, tag=7)
    yield from proc.comm_world.Recv(buf, source=0, tag=7)


def main():
    world = World(num_nodes=2, procs_per_node=1)
    world.run_all([world.procs[0].spawn(rank0(world.procs[0])),
                   world.procs[1].spawn(rank1(world.procs[1]))])


if __name__ == "__main__":
    main()
