"""bad: Put traffic with no flush before the program ends (CHK110/S309)."""

import numpy as np

from repro.mpi.rma import win_create
from repro.runtime import World


def rank0(proc):
    win = yield from win_create(proc.comm_world, np.zeros(8))
    yield from win.Put(np.arange(4, dtype=np.float64), target=1, disp=0)


def rank1(proc):
    yield from win_create(proc.comm_world, np.zeros(8))


def main():
    world = World(num_nodes=2, procs_per_node=1)
    world.run_all([world.procs[0].spawn(rank0(world.procs[0])),
                   world.procs[1].spawn(rank1(world.procs[1]))])


if __name__ == "__main__":
    main()
