"""ok: the partitioned protocol followed to the letter (no CHK105/106, S305)."""

import numpy as np

from repro.mpi.partitioned import precv_init, psend_init
from repro.runtime import World


def rank0(proc):
    buf = np.arange(4, dtype=np.float64)
    req = psend_init(proc.comm_world, buf, partitions=2, count=2,
                     dest=1, tag=0)
    yield from req.start()
    yield from req.pready(0)
    yield from req.pready(1)
    yield from req.wait()


def rank1(proc):
    buf = np.zeros(4)
    req = precv_init(proc.comm_world, buf, partitions=2, count=2,
                     source=0, tag=0)
    yield from req.start()
    yield from req.wait()


def main():
    world = World(num_nodes=2, procs_per_node=1)
    world.run_all([world.procs[0].spawn(rank0(world.procs[0])),
                   world.procs[1].spawn(rank1(world.procs[1]))])


if __name__ == "__main__":
    main()
