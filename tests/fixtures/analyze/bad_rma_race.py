"""bad: concurrent nonatomic Puts to one target range (CHK108/S307)."""

import numpy as np

from repro.mpi.rma import win_create
from repro.runtime import World


def rank0(proc):
    win = yield from win_create(proc.comm_world, np.zeros(8))

    def writer(value):
        yield from win.Put(np.full(4, value), target=1, disp=0)
        yield from win.Flush(1)

    t1 = proc.spawn(writer(1.0), name="w1")
    t2 = proc.spawn(writer(2.0), name="w2")
    yield proc.sim.all_of([t1, t2])


def rank1(proc):
    yield from win_create(proc.comm_world, np.zeros(8))


def main():
    world = World(num_nodes=2, procs_per_node=1)
    world.run_all([world.procs[0].spawn(rank0(world.procs[0])),
                   world.procs[1].spawn(rank1(world.procs[1]))])


if __name__ == "__main__":
    main()
