"""bad: two threads poll one shared request concurrently (CHK101/S301)."""

import numpy as np

from repro.runtime import World


def rank0(proc):
    req = yield from proc.comm_world.Isend(np.zeros(4), dest=1, tag=0)

    def poker():
        req.test()
        yield proc.sim.timeout(0)

    t1 = proc.spawn(poker(), name="poker1")
    t2 = proc.spawn(poker(), name="poker2")
    yield proc.sim.all_of([t1, t2])
    yield from req.wait()


def rank1(proc):
    buf = np.zeros(4)
    yield from proc.comm_world.Recv(buf, source=0, tag=0)


def main():
    world = World(num_nodes=2, procs_per_node=1)
    world.run_all([world.procs[0].spawn(rank0(world.procs[0])),
                   world.procs[1].spawn(rank1(world.procs[1]))])


if __name__ == "__main__":
    main()
