"""advice: wildcard receives block the tags-with-hints fast path (S313).

Correct MPI — the program runs clean under the dynamic checker — but
the ANY_SOURCE receive forces serialized matching, so the advisor
flags the communicator (advice severity: never fails a run).
"""

import numpy as np

from repro.mpi import ANY_SOURCE
from repro.runtime import World


def rank0(proc):
    buf = np.zeros(2)
    yield from proc.comm_world.Recv(buf, source=ANY_SOURCE, tag=0)


def rank1(proc):
    yield from proc.comm_world.Send(np.full(2, 3.0), dest=0, tag=0)


def main():
    world = World(num_nodes=2, procs_per_node=1)
    world.run_all([world.procs[0].spawn(rank0(world.procs[0])),
                   world.procs[1].spawn(rank1(world.procs[1]))])


if __name__ == "__main__":
    main()
