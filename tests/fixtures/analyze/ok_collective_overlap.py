"""ok: the two collectives are joined into sequence (no CHK111/S310)."""

import numpy as np

from repro.runtime import World


def rank0(proc):
    comm = proc.comm_world

    def reducer():
        yield from comm.Allreduce(np.ones(2), np.zeros(2))

    t1 = proc.spawn(reducer(), name="c1")
    yield proc.sim.all_of([t1])
    t2 = proc.spawn(reducer(), name="c2")
    yield proc.sim.all_of([t2])


def rank1(proc):
    yield from proc.comm_world.Allreduce(np.ones(2), np.zeros(2))
    yield from proc.comm_world.Allreduce(np.ones(2), np.zeros(2))


def main():
    world = World(num_nodes=2, procs_per_node=1)
    world.run_all([world.procs[0].spawn(rank0(world.procs[0])),
                   world.procs[1].spawn(rank1(world.procs[1]))])


if __name__ == "__main__":
    main()
