"""ok: the receive is matched and awaited (no CHK109/S308)."""

import numpy as np

from repro.runtime import World


def rank0(proc):
    buf = np.zeros(2)
    req = yield from proc.comm_world.Irecv(buf, source=1, tag=99)
    yield from req.wait()


def rank1(proc):
    yield from proc.comm_world.Send(np.full(2, 5.0), dest=0, tag=99)


def main():
    world = World(num_nodes=2, procs_per_node=1)
    world.run_all([world.procs[0].spawn(rank0(world.procs[0])),
                   world.procs[1].spawn(rank1(world.procs[1]))])


if __name__ == "__main__":
    main()
