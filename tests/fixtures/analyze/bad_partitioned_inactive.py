"""bad: Pready on a partitioned request that was never started (CHK105/S305)."""

import numpy as np

from repro.mpi.partitioned import psend_init
from repro.runtime import World


def rank0(proc):
    buf = np.arange(4, dtype=np.float64)
    req = psend_init(proc.comm_world, buf, partitions=2, count=2,
                     dest=1, tag=0)
    yield from req.pready(0)


def rank1(proc):
    yield proc.sim.timeout(0)


def main():
    world = World(num_nodes=2, procs_per_node=1)
    world.run_all([world.procs[0].spawn(rank0(world.procs[0])),
                   world.procs[1].spawn(rank1(world.procs[1]))])


if __name__ == "__main__":
    main()
