"""bad: locks taken in both orders can deadlock (CHK103/S303)."""

from repro.runtime import World
from repro.sim.sync import Lock


def rank0(proc):
    lock_a = Lock(proc.sim, "A")
    lock_b = Lock(proc.sim, "B")
    yield from lock_a.acquire()
    yield from lock_b.acquire()
    lock_b.release()
    lock_a.release()
    yield from lock_b.acquire()
    yield from lock_a.acquire()
    lock_a.release()
    lock_b.release()


def main():
    world = World(num_nodes=1, procs_per_node=1)
    world.run_all([world.procs[0].spawn(rank0(world.procs[0]))])


if __name__ == "__main__":
    main()
