"""bad: wildcard receive on a no_any_source communicator (CHK104/S304)."""

import numpy as np

from repro.mpi import ANY_SOURCE, Info
from repro.runtime import World

info = Info({"mpi_assert_no_any_source": "1"})


def rank0(proc):
    comm = yield from proc.comm_world.Dup(info)
    buf = np.zeros(2)
    yield from comm.Recv(buf, source=ANY_SOURCE, tag=0)


def rank1(proc):
    comm = yield from proc.comm_world.Dup(info)
    yield from comm.Send(np.full(2, 3.0), dest=0, tag=0)


def main():
    world = World(num_nodes=2, procs_per_node=1)
    world.run_all([world.procs[0].spawn(rank0(world.procs[0])),
                   world.procs[1].spawn(rank1(world.procs[1]))])


if __name__ == "__main__":
    main()
