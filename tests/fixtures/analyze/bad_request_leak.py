"""bad: an Irecv whose completion is never awaited (CHK109/S308)."""

import numpy as np

from repro.runtime import World


def rank0(proc):
    yield from proc.comm_world.Irecv(np.zeros(2), source=1, tag=99)


def rank1(proc):
    yield proc.sim.timeout(0)


def main():
    world = World(num_nodes=2, procs_per_node=1)
    world.run_all([world.procs[0].spawn(rank0(world.procs[0])),
                   world.procs[1].spawn(rank1(world.procs[1]))])


if __name__ == "__main__":
    main()
