"""bad (static-only): a second wait after a completing wait (S311).

At run time the first wait usually masks the defect — the dynamic
checker has no CHK twin for this — so the fixture is analyzed but not
executed by the cross-validation harness.
"""

import numpy as np

from repro.runtime import World


def rank0(proc):
    req = yield from proc.comm_world.Isend(np.zeros(4), dest=1, tag=0)
    yield from req.wait()
    yield from req.wait()


def rank1(proc):
    buf = np.zeros(4)
    yield from proc.comm_world.Recv(buf, source=0, tag=0)


def main():
    world = World(num_nodes=2, procs_per_node=1)
    world.run_all([world.procs[0].spawn(rank0(world.procs[0])),
                   world.procs[1].spawn(rank1(world.procs[1]))])


if __name__ == "__main__":
    main()
