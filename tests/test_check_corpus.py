"""The clean corpus: every example program and every app driver runs
under the dynamic checker with zero violations.

This is the analyzer's false-positive regression net — new hooks or rules
that misfire on correct MPI+threads code fail here first.
"""

import os
import subprocess
import sys

import pytest

from repro.apps.device.offload import DeviceConfig, run_device
from repro.apps.graph.vite import GraphConfig, run_graph
from repro.apps.legion.circuit import CircuitConfig, run_circuit
from repro.apps.legion.runtime import (
    MECHANISMS as LEGION_MECHANISMS,
    LegionConfig,
    run_legion,
)
from repro.apps.nwchem.blocksparse import NwchemConfig, run_nwchem
from repro.apps.stencil.drivers import (
    MECHANISMS as STENCIL_MECHANISMS,
    StencilConfig,
)
from repro.apps.stencil.runner import run_stencil
from repro.apps.vasp.allreduce import VaspConfig, run_vasp
from repro.check import CheckConfig, checking

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

EXAMPLES = [
    "quickstart.py",
    "stencil_halo_exchange.py",
    "legion_event_runtime.py",
    "nwchem_rma.py",
    "vasp_collectives.py",
    "device_offload.py",
    "fat_tree_collectives.py",
]

QUIET = CheckConfig(emit_warnings=False)


def run_checked(fn):
    """Run ``fn`` with the session-default checker on; return the report."""
    with checking(QUIET) as session:
        fn()
    return session.report()


def assert_clean(report):
    assert report.clean, report.render()
    # at least one World must actually have been checked
    assert report.finalized


# ------------------------------------------------------------- examples

@pytest.mark.parametrize("script", EXAMPLES)
def test_example_is_violation_free(script):
    """``python -m repro check examples/<script>`` exits 0 (clean)."""
    path = os.path.join(ROOT, "examples", script)
    env = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "check", path],
        capture_output=True, text=True, timeout=600, cwd=ROOT, env=env)
    assert proc.returncode == 0, (proc.stdout[-2000:], proc.stderr[-2000:])
    assert "no violations detected" in proc.stdout


# ---------------------------------------------------------- app drivers

@pytest.mark.parametrize("mechanism", STENCIL_MECHANISMS)
def test_stencil_driver_clean(mechanism):
    cfg = StencilConfig(proc_grid=(2, 1), thread_grid=(2, 2),
                        pnx=4, pny=4, iters=2, mechanism=mechanism)
    report = run_checked(lambda: run_stencil(cfg))
    assert_clean(report)


def test_msgrate_driver_clean():
    from repro.bench.msgrate import MsgRateConfig, run_msgrate
    cfg = MsgRateConfig(mode="everywhere", cores=2, msgs_per_core=4)
    report = run_checked(lambda: run_msgrate(cfg))
    assert_clean(report)


def test_nwchem_driver_clean():
    cfg = NwchemConfig(num_nodes=2, threads_per_proc=2, tiles_per_proc=2,
                       tile_dim=4, tasks_per_thread=2)
    report = run_checked(lambda: run_nwchem(cfg))
    assert_clean(report)


def test_vasp_driver_clean():
    cfg = VaspConfig(num_nodes=2, threads_per_proc=2, elems=64)
    report = run_checked(lambda: run_vasp(cfg))
    assert_clean(report)


@pytest.mark.parametrize("mechanism", LEGION_MECHANISMS)
def test_legion_driver_clean(mechanism):
    cfg = LegionConfig(num_nodes=2, task_threads=2, msgs_per_thread=2,
                       mechanism=mechanism)
    report = run_checked(lambda: run_legion(cfg))
    assert_clean(report)


@pytest.mark.parametrize("mechanism", LEGION_MECHANISMS)
def test_circuit_driver_clean(mechanism):
    cfg = CircuitConfig(num_nodes=2, task_threads=2, wires_per_thread=2,
                        timesteps=2, mechanism=mechanism)
    report = run_checked(lambda: run_circuit(cfg))
    assert_clean(report)


def test_graph_driver_clean():
    cfg = GraphConfig(num_nodes=2, threads_per_proc=2, graph_vertices=32,
                      iters=2)
    report = run_checked(lambda: run_graph(cfg))
    assert_clean(report)


def test_device_driver_clean():
    cfg = DeviceConfig(blocks=2, count=8, timesteps=2)
    report = run_checked(lambda: run_device(cfg))
    assert_clean(report)


def test_explicit_world_check_matches_session_default():
    """A driver checked via World(check=...) agrees with the session path."""
    from repro.runtime import World

    import numpy as np

    world = World(num_nodes=2, procs_per_node=1, check=QUIET)

    def rank0(proc):
        yield from proc.comm_world.Send(np.ones(4), dest=1, tag=0)

    def rank1(proc):
        yield from proc.comm_world.Recv(np.zeros(4), source=0, tag=0)

    from tests.helpers import run_ranks
    run_ranks(world, rank0, rank1)
    assert world.check_report().clean
