"""Dynamic checker tests: every CHK rule fires on a minimal violating
program, warn/raise modes behave as documented, reports serialize, and
the checker is observer-only (simulated timings are byte-identical)."""

import json
import warnings

import numpy as np
import pytest

from repro.check import CheckConfig, CheckWarning, checking
from repro.errors import CheckError, MpiUsageError
from repro.mpi import ANY_SOURCE, Info
from repro.mpi.partitioned import precv_init, psend_init
from repro.mpi.rma import win_create
from repro.runtime import World
from repro.sim.sync import Lock

from tests.helpers import run_ranks

QUIET = CheckConfig(emit_warnings=False)


def checked_world(num_nodes=2, config=QUIET, **kw):
    return World(num_nodes=num_nodes, procs_per_node=1, check=config, **kw)


def rules_fired(world):
    return set(world.check_report().counts())


# ---------------------------------------------------------------- CHK101

def test_chk101_request_race_fires():
    world = checked_world()

    def rank0(proc):
        req = yield from proc.comm_world.Isend(np.zeros(4), dest=1, tag=0)

        def poker():
            req.test()
            yield proc.sim.timeout(0)

        t1 = proc.spawn(poker(), name="poker1")
        t2 = proc.spawn(poker(), name="poker2")
        yield proc.sim.all_of([t1, t2])
        yield from req.wait()

    def rank1(proc):
        buf = np.zeros(4)
        yield from proc.comm_world.Recv(buf, source=0, tag=0)

    run_ranks(world, rank0, rank1)
    assert "CHK101" in rules_fired(world)


def test_chk101_not_fired_when_joined():
    """Sequential wait-after-test in one task is ordered: no race."""
    world = checked_world()

    def rank0(proc):
        req = yield from proc.comm_world.Isend(np.zeros(4), dest=1, tag=0)
        req.test()
        yield from req.wait()

    def rank1(proc):
        buf = np.zeros(4)
        yield from proc.comm_world.Recv(buf, source=0, tag=0)

    run_ranks(world, rank0, rank1)
    assert world.check_report().clean


# ---------------------------------------------------------------- CHK102

def test_chk102_channel_collision_fires():
    world = checked_world()

    def rank0(proc):
        comm = proc.comm_world

        def sender(i):
            req = yield from comm.Isend(np.full(2, float(i)), dest=1, tag=7)
            yield from req.wait()

        t1 = proc.spawn(sender(1), name="s1")
        t2 = proc.spawn(sender(2), name="s2")
        yield proc.sim.all_of([t1, t2])

    def rank1(proc):
        buf = np.zeros(2)
        yield from proc.comm_world.Recv(buf, source=0, tag=7)
        yield from proc.comm_world.Recv(buf, source=0, tag=7)

    run_ranks(world, rank0, rank1)
    assert "CHK102" in rules_fired(world)


def test_chk102_distinct_tags_are_clean():
    world = checked_world()

    def rank0(proc):
        comm = proc.comm_world

        def sender(i):
            req = yield from comm.Isend(np.full(2, float(i)), dest=1, tag=i)
            yield from req.wait()

        t1 = proc.spawn(sender(1), name="s1")
        t2 = proc.spawn(sender(2), name="s2")
        yield proc.sim.all_of([t1, t2])

    def rank1(proc):
        buf = np.zeros(2)
        yield from proc.comm_world.Recv(buf, source=0, tag=1)
        yield from proc.comm_world.Recv(buf, source=0, tag=2)

    run_ranks(world, rank0, rank1)
    assert world.check_report().clean


# ---------------------------------------------------------------- CHK103

def test_chk103_lock_order_cycle_detected_at_finalize():
    world = checked_world(num_nodes=1)

    def rank0(proc):
        a = Lock(proc.sim, "A")
        b = Lock(proc.sim, "B")
        yield from a.acquire()
        yield from b.acquire()
        b.release()
        a.release()
        yield from b.acquire()
        yield from a.acquire()
        a.release()
        b.release()

    run_ranks(world, rank0)
    report = world.check_report()
    assert "CHK103" in report.counts()
    assert "deadlock" in report.render()


# ---------------------------------------------------------------- CHK104

def test_chk104_hint_violation_warn_mode_allows_wildcard():
    world = checked_world()
    info = Info({"mpi_assert_no_any_source": "1"})

    def rank0(proc):
        comm = yield from proc.comm_world.Dup(info)
        buf = np.zeros(2)
        yield from comm.Recv(buf, source=ANY_SOURCE, tag=0)
        assert buf[0] == 3.0

    def rank1(proc):
        comm = yield from proc.comm_world.Dup(info)
        yield from comm.Send(np.full(2, 3.0), dest=0, tag=0)

    run_ranks(world, rank0, rank1)
    assert "CHK104" in rules_fired(world)


def test_chk104_raise_mode_raises_check_error():
    world = checked_world(config=CheckConfig(mode="raise",
                                             emit_warnings=False))
    info = Info({"mpi_assert_no_any_source": "1"})

    def rank0(proc):
        comm = yield from proc.comm_world.Dup(info)
        yield from comm.Recv(np.zeros(2), source=ANY_SOURCE, tag=0)

    def rank1(proc):
        comm = yield from proc.comm_world.Dup(info)
        yield from comm.Send(np.zeros(2), dest=0, tag=0)

    with pytest.raises(CheckError):
        run_ranks(world, rank0, rank1)


def test_without_checker_hint_violation_raises_library_error():
    from repro.errors import HintViolationError
    world = World(num_nodes=2, procs_per_node=1)
    info = Info({"mpi_assert_no_any_source": "1"})

    def rank0(proc):
        comm = yield from proc.comm_world.Dup(info)
        yield from comm.Recv(np.zeros(2), source=ANY_SOURCE, tag=0)

    def rank1(proc):
        yield from proc.comm_world.Dup(info)

    with pytest.raises(HintViolationError):
        run_ranks(world, rank0, rank1)


# ------------------------------------------------------- CHK105 / CHK106

def test_chk105_partitioned_op_before_start():
    world = checked_world()

    def rank0(proc):
        buf = np.arange(4, dtype=np.float64)
        req = psend_init(proc.comm_world, buf, partitions=2, count=2,
                         dest=1, tag=0)
        yield from req.pready(0)  # never started: no-op under the checker

    def rank1(proc):
        yield proc.sim.timeout(0)

    run_ranks(world, rank0, rank1)
    assert "CHK105" in rules_fired(world)


def test_chk106_double_pready_is_noop_in_warn_mode():
    world = checked_world()

    def rank0(proc):
        buf = np.arange(4, dtype=np.float64)
        req = psend_init(proc.comm_world, buf, partitions=2, count=2,
                         dest=1, tag=0)
        yield from req.start()
        yield from req.pready(0)
        yield from req.pready(0)  # duplicate: recorded, then ignored
        yield from req.pready(1)
        yield from req.wait()

    def rank1(proc):
        buf = np.zeros(4)
        req = precv_init(proc.comm_world, buf, partitions=2, count=2,
                         source=0, tag=0)
        yield from req.start()
        yield from req.wait()
        assert np.allclose(buf, np.arange(4))

    run_ranks(world, rank0, rank1)
    assert "CHK106" in rules_fired(world)


# ------------------------------------------------------- CHK107 / CHK108

def test_chk107_double_lock_and_stray_unlock():
    world = checked_world()

    def rank0(proc):
        win = yield from win_create(proc.comm_world, np.zeros(8))
        yield from win.Lock(1)
        yield from win.Lock(1)     # double lock
        yield from win.Unlock(1)
        yield from win.Unlock(1)   # unlock without a matching lock

    def rank1(proc):
        yield from win_create(proc.comm_world, np.zeros(8))

    run_ranks(world, rank0, rank1)
    report = world.check_report()
    assert report.counts().get("CHK107") == 2
    assert len(report.by_rule("CHK107")) == 2


def test_chk108_overlapping_nonatomic_rma():
    world = checked_world()

    def rank0(proc):
        win = yield from win_create(proc.comm_world, np.zeros(8))

        def writer(value):
            yield from win.Put(np.full(4, value), target=1, disp=0)
            yield from win.Flush(1)

        t1 = proc.spawn(writer(1.0), name="w1")
        t2 = proc.spawn(writer(2.0), name="w2")
        yield proc.sim.all_of([t1, t2])

    def rank1(proc):
        yield from win_create(proc.comm_world, np.zeros(8))

    run_ranks(world, rank0, rank1)
    assert "CHK108" in rules_fired(world)


def test_chk108_disjoint_ranges_are_clean():
    world = checked_world()

    def rank0(proc):
        win = yield from win_create(proc.comm_world, np.zeros(8))

        def writer(value, disp):
            yield from win.Put(np.full(4, value), target=1, disp=disp)
            yield from win.Flush(1)

        t1 = proc.spawn(writer(1.0, 0), name="w1")
        t2 = proc.spawn(writer(2.0, 4), name="w2")
        yield proc.sim.all_of([t1, t2])

    def rank1(proc):
        yield from win_create(proc.comm_world, np.zeros(8))

    run_ranks(world, rank0, rank1)
    assert world.check_report().clean


# ------------------------------------------------------- CHK109 / CHK110

def test_chk109_leaked_request_reported_at_finalize():
    world = checked_world()

    def rank0(proc):
        yield from proc.comm_world.Irecv(np.zeros(2), source=1, tag=99)

    def rank1(proc):
        yield proc.sim.timeout(0)

    run_ranks(world, rank0, rank1)
    assert "CHK109" in rules_fired(world)


def test_chk110_unflushed_window_reported_at_finalize():
    world = checked_world()

    def rank0(proc):
        win = yield from win_create(proc.comm_world, np.zeros(8))
        yield from win.Put(np.arange(4, dtype=np.float64), target=1, disp=0)
        # no Flush/Unlock before the program ends

    def rank1(proc):
        yield from win_create(proc.comm_world, np.zeros(8))

    run_ranks(world, rank0, rank1)
    assert "CHK110" in rules_fired(world)


# ---------------------------------------------------------------- CHK111

def test_chk111_concurrent_collectives_still_raise():
    world = checked_world()

    def rank0(proc):
        comm = proc.comm_world

        def reducer():
            yield from comm.Allreduce(np.ones(2), np.zeros(2))

        t1 = proc.spawn(reducer(), name="c1")
        t2 = proc.spawn(reducer(), name="c2")
        yield proc.sim.all_of([t1, t2])

    def rank1(proc):
        yield from proc.comm_world.Allreduce(np.ones(2), np.zeros(2))

    with pytest.raises(MpiUsageError):
        run_ranks(world, rank0, rank1)
    assert "CHK111" in rules_fired(world)


# ----------------------------------------------------- modes and reports

def test_warn_mode_emits_check_warnings():
    world = checked_world(config=CheckConfig())  # emit_warnings=True

    def rank0(proc):
        req = psend_init(proc.comm_world, np.zeros(2), partitions=1,
                         count=2, dest=1, tag=0)
        yield from req.pready(0)

    def rank1(proc):
        yield proc.sim.timeout(0)

    with pytest.warns(CheckWarning, match="CHK105"):
        run_ranks(world, rank0, rank1)


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        CheckConfig(mode="explode")


def test_report_render_and_json_schema():
    world = checked_world()

    def rank0(proc):
        req = psend_init(proc.comm_world, np.zeros(2), partitions=1,
                         count=2, dest=1, tag=0)
        yield from req.pready(0)

    def rank1(proc):
        yield proc.sim.timeout(0)

    run_ranks(world, rank0, rank1)
    report = world.check_report()
    assert not report.clean
    text = report.render()
    assert text.startswith("== check") and "CHK105" in text
    data = json.loads(report.to_json())
    assert data["schema"] == 1
    assert data["violations"][0]["rule"] == "CHK105"
    assert data["counts"]["CHK105"] >= 1
    v = report.violations[0]
    assert v.rule_name == "partitioned-inactive"
    assert "CHK105" in v.describe()


def test_clean_report_on_unchecked_world():
    world = World(num_nodes=1, procs_per_node=1)
    assert world.check_report().clean


def test_max_violations_cap():
    world = checked_world(config=CheckConfig(emit_warnings=False,
                                             max_violations=1))

    def rank0(proc):
        req = psend_init(proc.comm_world, np.zeros(2), partitions=1,
                         count=2, dest=1, tag=0)
        yield from req.pready(0)
        yield from req.pready(0)
        yield from req.pready(0)

    def rank1(proc):
        yield proc.sim.timeout(0)

    run_ranks(world, rank0, rank1)
    assert len(world.checker.violations) == 1
    assert world.checker.dropped == 2


# ------------------------------------------------------- session default

def test_checking_context_installs_default():
    def program():
        world = World(num_nodes=2, procs_per_node=1)

        def rank0(proc):
            req = psend_init(proc.comm_world, np.zeros(2), partitions=1,
                             count=2, dest=1, tag=0)
            yield from req.pready(0)

        def rank1(proc):
            yield proc.sim.timeout(0)

        run_ranks(world, rank0, rank1)

    with checking(CheckConfig(emit_warnings=False)) as session:
        program()
    report = session.report()
    assert "CHK105" in report.counts()

    # outside the context, worlds are unchecked again
    assert World(num_nodes=1, procs_per_node=1).checker is None


# ----------------------------------------------- observer-only invariant

def _pingpong(world):
    def rank0(proc):
        comm = proc.comm_world
        buf = np.zeros(64)
        for i in range(8):
            yield from comm.Send(np.full(64, float(i)), dest=1, tag=i)
            yield from comm.Recv(buf, source=1, tag=i)

    def rank1(proc):
        comm = proc.comm_world
        buf = np.zeros(64)
        for i in range(8):
            yield from comm.Recv(buf, source=0, tag=i)
            yield from comm.Send(buf, dest=0, tag=i)

    run_ranks(world, rank0, rank1)
    return world.now


def test_checker_is_observer_only():
    """Simulated time with the checker enabled is byte-identical to an
    unchecked run — hooks never schedule events or charge time."""
    t_plain = _pingpong(World(num_nodes=2, procs_per_node=1))
    t_checked = _pingpong(checked_world())
    assert t_checked == t_plain


def test_disabled_rule_groups_do_not_fire():
    world = checked_world(config=CheckConfig(semantics=False,
                                             emit_warnings=False))

    def rank0(proc):
        win = yield from win_create(proc.comm_world, np.zeros(8))
        yield from win.Lock(1)
        yield from win.Lock(1)
        yield from win.Unlock(1)

    def rank1(proc):
        yield from win_create(proc.comm_world, np.zeros(8))

    run_ranks(world, rank0, rank1)
    assert "CHK107" not in rules_fired(world)


def test_rule_catalog_lookup():
    from repro.check import ALL_RULES, rule
    assert rule("CHK101").name == "request-race"
    assert rule("L201").name == "host-nondeterminism"
    ids = [r.id for r in ALL_RULES]
    assert len(ids) == len(set(ids))
    with pytest.raises(KeyError):
        rule("CHK999")


def test_warnings_suppressed_when_configured():
    world = checked_world()  # QUIET: emit_warnings=False

    def rank0(proc):
        req = psend_init(proc.comm_world, np.zeros(2), partitions=1,
                         count=2, dest=1, tag=0)
        yield from req.pready(0)

    def rank1(proc):
        yield proc.sim.timeout(0)

    with warnings.catch_warnings():
        warnings.simplefilter("error", CheckWarning)
        run_ranks(world, rank0, rank1)
    assert "CHK105" in rules_fired(world)
