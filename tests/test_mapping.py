"""Tests for the mechanism-mapping helpers (repro.mapping)."""

import pytest

from repro.errors import MpiUsageError, TagOverflowError
from repro.mapping import (
    STENCIL_2D_5PT,
    STENCIL_2D_9PT,
    STENCIL_3D_27PT,
    STENCIL_3D_7PT,
    CornerOptimizedCommMap,
    EndpointAddressing,
    MirroredCommMap,
    NaiveCommMap,
    PartitionPlan,
    StencilGeometry,
    TagSchema,
    analyze_map,
    communicator_overhead_ratio_3d27,
    communicators_required_3d27,
    listing2_info,
    min_channels_2d9,
    min_channels_3d27,
    overtaking_only_info,
)
from repro.mpi.info import parse_comm_hints
from repro.mpi.vci import TAG_BITS, TagBitsVciMap


# ------------------------------------------------------- Lesson 3 formulas

def test_paper_headline_numbers():
    """The exact numbers from Lesson 3 / Lesson 12: 808 communicators vs
    56 channels on a [4,4,4] thread grid — 14.4x."""
    assert communicators_required_3d27(4, 4, 4) == 808
    assert min_channels_3d27(4, 4, 4) == 56
    assert communicator_overhead_ratio_3d27(4, 4, 4) == pytest.approx(
        808 / 56)
    assert 14.4 < communicator_overhead_ratio_3d27(4, 4, 4) < 14.5


def test_min_channels_small_grids():
    assert min_channels_3d27(1, 1, 1) == 1
    assert min_channels_3d27(2, 2, 2) == 8
    assert min_channels_3d27(3, 3, 3) == 26
    assert min_channels_2d9(1, 1) == 1
    assert min_channels_2d9(3, 3) == 8
    assert min_channels_2d9(2, 5) == 10


def test_formula_grows_with_grid():
    assert communicators_required_3d27(8, 8, 8) > \
        communicators_required_3d27(4, 4, 4)


def test_formula_rejects_bad_dims():
    with pytest.raises(MpiUsageError):
        communicators_required_3d27(0, 4, 4)


# ------------------------------------------------------- stencil geometry

def test_stencil_direction_sets():
    assert len(STENCIL_2D_5PT) == 4
    assert len(STENCIL_2D_9PT) == 8
    assert len(STENCIL_3D_7PT) == 6
    assert len(STENCIL_3D_27PT) == 26


def test_geometry_validation():
    with pytest.raises(MpiUsageError):
        StencilGeometry((2, 2), (3,), STENCIL_2D_5PT)
    with pytest.raises(MpiUsageError):
        StencilGeometry((0, 2), (3, 3), STENCIL_2D_5PT)
    with pytest.raises(MpiUsageError):
        StencilGeometry((2, 2), (3, 3), STENCIL_3D_7PT)


def test_exchange_enumeration_interior_thread_silent():
    geom = StencilGeometry((2, 2), (3, 3), STENCIL_2D_9PT)
    assert list(geom.exchanges_from((0, 0), (1, 1))) == []


def test_exchange_enumeration_edge_thread():
    geom = StencilGeometry((2, 2), (3, 3), STENCIL_2D_5PT)
    # thread (2,1) on proc (0,0): east neighbour is remote
    exs = list(geom.exchanges_from((0, 0), (2, 1)))
    assert len(exs) == 1
    assert exs[0].direction == (1, 0)


def test_domain_boundary_has_no_exchange():
    geom = StencilGeometry((2, 1), (2, 2), STENCIL_2D_5PT)
    # proc (0,0) thread (0,0): west/south are outside the domain
    dirs = {e.direction for e in geom.exchanges_from((0, 0), (0, 0))}
    assert dirs == set()  # east is in-process, north in-process


def test_communicating_threads_matches_formula():
    geom = StencilGeometry((3, 3, 3), (4, 4, 4), STENCIL_3D_27PT)
    center = (1, 1, 1)
    assert len(geom.communicating_threads(center)) == min_channels_3d27(4, 4, 4)


def test_communicating_threads_2d_matches_formula():
    geom = StencilGeometry((3, 3), (3, 3), STENCIL_2D_9PT)
    assert len(geom.communicating_threads((1, 1))) == min_channels_2d9(3, 3)


# ------------------------------------------------------- communicator maps

@pytest.fixture
def geom9():
    return StencilGeometry((3, 3), (3, 3), STENCIL_2D_9PT)


def test_mirrored_map_exposes_all_parallelism(geom9):
    r = analyze_map(MirroredCommMap(geom9))
    assert r.min_parallel_efficiency == 1.0
    assert r.max_threads_per_label == 1
    assert r.max_conflicting_labels == 0


def test_mirrored_map_5pt_matches_listing1_count():
    """Listing 1 creates 2*tx + 2*ty communicators for the 5-pt stencil."""
    geom = StencilGeometry((3, 3), (3, 4), STENCIL_2D_5PT)
    r = analyze_map(MirroredCommMap(geom))
    assert r.num_communicators == 2 * 3 + 2 * 4
    assert r.min_parallel_efficiency == 1.0


def test_naive_map_loses_parallelism(geom9):
    """Lesson 2: the intuitive map is correct but loses parallelism —
    opposite edges share communicators."""
    r = analyze_map(NaiveCommMap(geom9))
    assert r.num_communicators == 9 - 1  # one comm per communicating thread
    assert r.max_threads_per_label >= 2
    assert r.min_parallel_efficiency <= 0.5


def test_naive_map_5pt_half_parallelism():
    geom = StencilGeometry((3, 3), (3, 3), STENCIL_2D_5PT)
    r = analyze_map(NaiveCommMap(geom))
    # Opposite edges pair up on one communicator (corners chain further).
    assert 2 <= r.max_threads_per_label <= 3
    assert r.min_parallel_efficiency <= 0.5


def test_corner_optimized_reduces_communicators(geom9):
    mirrored = analyze_map(MirroredCommMap(geom9))
    corner = analyze_map(CornerOptimizedCommMap(geom9))
    assert corner.num_communicators < mirrored.num_communicators
    # ... but introduces label sharing (the Lesson 1 complexity trade-off).
    assert corner.max_threads_per_label >= 1


def test_mirrored_map_labels_consistent_between_neighbors(geom9):
    """Both endpoints of an exchange derive the same label (matching)."""
    cmap = MirroredCommMap(geom9)
    for p in geom9.procs():
        for t in geom9.threads():
            for ex in geom9.exchanges_from(p, t):
                # the receiving side enumerates the same Exchange object
                # value; labels must agree for the reversed message too
                rev = type(ex)(ex.dst, ex.src)
                assert cmap.label(ex) == cmap.label(rev)


def test_mirrored_3d_count_same_order_as_paper_formula():
    """Our constructive 3D 27-pt map needs the same order of communicators
    as the paper's closed form (868 vs 808 for [4,4,4]) — both ~14-15x the
    channel count."""
    geom = StencilGeometry((2, 2, 2), (4, 4, 4), STENCIL_3D_27PT)
    r = analyze_map(MirroredCommMap(geom))
    paper = communicators_required_3d27(4, 4, 4)
    assert abs(r.num_communicators - paper) / paper < 0.15
    assert r.min_parallel_efficiency == 1.0


def test_mirrored_opposite_boundaries_use_distinct_sets():
    """The a/b mirroring: a process's north comms differ from its south
    comms (else threads 1 and 7 of Fig 4 would serialize)."""
    geom = StencilGeometry((1, 3), (3, 3), STENCIL_2D_5PT)
    cmap = MirroredCommMap(geom)
    p = (0, 1)  # middle process: has both N and S neighbours
    north = {cmap.label(e) for t in geom.threads()
             for e in geom.exchanges_from(p, t) if e.direction == (0, 1)}
    south = {cmap.label(e) for t in geom.threads()
             for e in geom.exchanges_from(p, t) if e.direction == (0, -1)}
    assert north and south
    assert north.isdisjoint(south)


# ------------------------------------------------------- tag schema

def test_tag_schema_roundtrip():
    s = TagSchema(num_tid_bits=4, num_app_bits=8)
    tag = s.encode(src_tid=5, dst_tid=11, app_tag=200)
    assert s.decode(tag) == (5, 11, 200)
    assert tag <= (1 << TAG_BITS) - 1


def test_tag_schema_lsb_roundtrip():
    s = TagSchema(num_tid_bits=3, num_app_bits=6, placement="LSB")
    tag = s.encode(2, 7, 33)
    assert s.decode(tag) == (2, 7, 33)


def test_tag_schema_matches_vci_map_extraction():
    """The app-side encoder and the library-side TagBitsVciMap must agree
    on where the thread bits live."""
    bits = 3
    schema = TagSchema(num_tid_bits=bits, num_app_bits=8)
    info = listing2_info(n_threads=8, num_tid_bits=bits)
    hints = parse_comm_hints(info)
    vmap = TagBitsVciMap(hints, base_index=0, num_pool_vcis=64)
    for s in range(8):
        for d in range(8):
            tag = schema.encode(s, d, 17)
            assert vmap.src_field(tag) == s
            assert vmap.dst_field(tag) == d


def test_tag_overflow_on_layout():
    with pytest.raises(TagOverflowError):
        TagSchema(num_tid_bits=9, num_app_bits=8)  # 26 bits > 20


def test_tag_overflow_on_values():
    s = TagSchema(num_tid_bits=2, num_app_bits=4)
    with pytest.raises(TagOverflowError):
        s.encode(4, 0, 0)
    with pytest.raises(TagOverflowError):
        s.encode(0, 0, 16)


def test_listing2_info_bundle():
    info = listing2_info(n_threads=8, num_tid_bits=3)
    hints = parse_comm_hints(info)
    assert hints.recv_side_spreading and hints.num_vcis == 8
    with pytest.raises(MpiUsageError):
        listing2_info(n_threads=16, num_tid_bits=3)


def test_overtaking_only_info_bundle():
    hints = parse_comm_hints(overtaking_only_info(8))
    assert hints.send_side_spreading and not hints.recv_side_spreading


# ------------------------------------------------------- endpoint addressing

def test_ep_rank_listing3_layout():
    geom = StencilGeometry((2, 2), (3, 3), STENCIL_2D_5PT)
    addr = EndpointAddressing(geom)
    assert addr.threads_per_proc == 9
    assert addr.ep_rank((0, 0), (0, 0)) == 0
    assert addr.ep_rank((0, 1), (0, 0)) == 9   # proc (0,1) is rank 1
    assert addr.ep_rank((1, 1), (2, 2)) == 4 * 9 - 1


def test_partner_ep_cross_process():
    geom = StencilGeometry((2, 1), (2, 2), STENCIL_2D_5PT)
    addr = EndpointAddressing(geom)
    # proc (0,0) thread (1,0) east partner = proc (1,0) thread (0,0)
    ep = addr.partner_ep((0, 0), (1, 0), (1, 0))
    assert ep == addr.ep_rank((1, 0), (0, 0))
    assert addr.is_remote((0, 0), (1, 0), (1, 0))


def test_partner_ep_in_process_and_boundary():
    geom = StencilGeometry((2, 1), (2, 2), STENCIL_2D_5PT)
    addr = EndpointAddressing(geom)
    # in-process partner exists but is not remote
    assert addr.partner_ep((0, 0), (0, 0), (1, 0)) == \
        addr.ep_rank((0, 0), (1, 0))
    assert not addr.is_remote((0, 0), (0, 0), (1, 0))
    # domain boundary: no partner
    assert addr.partner_ep((0, 0), (0, 0), (-1, 0)) is None


def test_partner_ep_bad_direction():
    geom = StencilGeometry((2, 2), (2, 2), STENCIL_2D_5PT)
    addr = EndpointAddressing(geom)
    with pytest.raises(MpiUsageError):
        addr.partner_ep((0, 0), (0, 0), (1, 1))  # not in a 5-pt stencil


# ------------------------------------------------------- partition plans

def test_partition_plan_listing4_shape():
    geom = StencilGeometry((2, 2), (3, 4), STENCIL_2D_5PT)
    plan = PartitionPlan(geom)
    faces = plan.faces((0, 0))
    # proc (0,0) has E and N neighbours only
    dirs = {f.direction for f in faces}
    assert dirs == {(1, 0), (0, 1)}
    north = next(f for f in faces if f.direction == (0, 1))
    assert north.partitions == 3      # tx threads on the N face
    east = next(f for f in faces if f.direction == (1, 0))
    assert east.partitions == 4       # ty threads on the E face
    # thread (i, ty-1) drives partition i of the north op (Listing 4)
    for i in range(3):
        assert north.partition_of[(i, 3)] == i


def test_partition_plan_interior_proc_has_all_faces():
    geom = StencilGeometry((3, 3), (2, 2), STENCIL_2D_5PT)
    plan = PartitionPlan(geom)
    assert len(plan.faces((1, 1))) == 4
    assert plan.total_operations((1, 1)) == 8


def test_partition_plan_rejects_diagonals():
    geom = StencilGeometry((2, 2), (3, 3), STENCIL_2D_9PT)
    with pytest.raises(MpiUsageError, match="Lesson 15"):
        PartitionPlan(geom)


def test_partition_plan_3d_faces():
    geom = StencilGeometry((2, 2, 2), (2, 3, 4), STENCIL_3D_7PT)
    plan = PartitionPlan(geom)
    faces = plan.faces((0, 0, 0))
    assert {f.direction for f in faces} == {(1, 0, 0), (0, 1, 0), (0, 0, 1)}
    xface = next(f for f in faces if f.direction == (1, 0, 0))
    assert xface.partitions == 3 * 4
