"""Tests for variable-count collectives (Gatherv / Allgatherv)."""

import numpy as np
import pytest

from repro.errors import MpiUsageError
from repro.runtime import World

from tests.helpers import run_same


@pytest.mark.parametrize("n,root", [(2, 0), (4, 2), (5, 4)])
def test_gatherv_ragged_blocks(n, root):
    world = World(num_nodes=n, procs_per_node=1)
    counts = [2 * r + 1 for r in range(n)]
    total = sum(counts)

    def worker(proc):
        mine = np.arange(counts[proc.rank], dtype=np.float64) \
            + 100 * proc.rank
        rb = np.zeros(total) if proc.rank == root else None
        yield from proc.comm_world.Gatherv(
            mine, rb, counts if proc.rank == root else None, root=root)
        if proc.rank == root:
            expected = np.concatenate(
                [np.arange(counts[r]) + 100 * r for r in range(n)])
            assert np.allclose(rb, expected)

    run_same(world, worker)


def test_gatherv_zero_count_ranks():
    world = World(num_nodes=3, procs_per_node=1)
    counts = [2, 0, 3]

    def worker(proc):
        mine = np.full(counts[proc.rank], float(proc.rank))
        rb = np.zeros(5) if proc.rank == 0 else None
        yield from proc.comm_world.Gatherv(
            mine, rb, counts if proc.rank == 0 else None, root=0)
        if proc.rank == 0:
            assert np.allclose(rb, [0, 0, 2, 2, 2])

    run_same(world, worker)


def test_gatherv_validates_root_buffers():
    world = World(num_nodes=2, procs_per_node=1)

    def worker(proc):
        if proc.rank == 0:
            with pytest.raises(MpiUsageError):
                yield from proc.comm_world.Gatherv(np.zeros(1), None, None,
                                                   root=0)
        else:
            yield from proc.comm_world.Gatherv(np.zeros(1), None, None,
                                               root=0)

    tasks = [world.procs[i].spawn(worker(world.procs[i])) for i in range(2)]
    world.run(max_steps=100000)
    assert tasks[0].triggered


@pytest.mark.parametrize("n", [1, 2, 3, 6])
def test_allgatherv_everyone_gets_everything(n):
    world = World(num_nodes=n, procs_per_node=1)
    counts = [((r * 3) % 4) + 1 for r in range(n)]
    total = sum(counts)

    def worker(proc):
        mine = np.full(counts[proc.rank], float(proc.rank + 1))
        out = np.zeros(total)
        yield from proc.comm_world.Allgatherv(mine, out, counts)
        expected = np.concatenate(
            [np.full(counts[r], float(r + 1)) for r in range(n)])
        assert np.allclose(out, expected), (proc.rank, out)

    run_same(world, worker)


def test_allgatherv_count_mismatch_rejected():
    world = World(num_nodes=2, procs_per_node=1)

    def worker(proc):
        with pytest.raises(MpiUsageError, match="contributes"):
            yield from proc.comm_world.Allgatherv(np.zeros(5), np.zeros(4),
                                                  [2, 2])
        return True
        yield

    tasks = [world.procs[i].spawn(worker(world.procs[i])) for i in range(2)]
    assert world.run_all(tasks) == [True, True]


def test_allgatherv_wrong_counts_length():
    world = World(num_nodes=3, procs_per_node=1)

    def worker(proc):
        with pytest.raises(MpiUsageError, match="counts"):
            yield from proc.comm_world.Allgatherv(np.zeros(1), np.zeros(2),
                                                  [1, 1])
        return True
        yield

    tasks = [world.procs[i].spawn(worker(world.procs[i])) for i in range(3)]
    assert world.run_all(tasks) == [True] * 3
