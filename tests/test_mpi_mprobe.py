"""Matched probe/receive tests (MPI_Improbe / MPI_Mrecv)."""

import numpy as np
import pytest

from repro.errors import MpiUsageError
from repro.mpi import ANY_SOURCE, ANY_TAG
from repro.runtime import World

from tests.helpers import run_ranks, run_same


def test_improbe_claims_and_mrecv_delivers(world2):
    def sender(proc):
        yield from proc.comm_world.Send(np.full(4, 2.5), dest=1, tag=3)

    def receiver(proc):
        comm = proc.comm_world
        m = None
        while m is None:
            m = yield from comm.Improbe(ANY_SOURCE, ANY_TAG)
            if m is None:
                yield proc.compute(1e-6)
        assert (m.source, m.tag, m.size) == (0, 3, 32)
        buf = np.zeros(4)
        status = yield from comm.Mrecv(buf, m)
        assert np.allclose(buf, 2.5)
        assert status.source == 0 and status.tag == 3

    run_ranks(world2, sender, receiver)


def test_improbe_removes_message_from_matching(world2):
    """After a matched probe, no ordinary receive can steal the message —
    the thread-safety property plain Iprobe lacks."""
    def sender(proc):
        yield from proc.comm_world.Send(np.full(1, 9.0), dest=1, tag=0)

    def receiver(proc):
        comm = proc.comm_world
        m = None
        while m is None:
            m = yield from comm.Improbe(0, 0)
            if m is None:
                yield proc.compute(1e-6)
        # a later probe finds nothing: the message is claimed
        again = yield from comm.Improbe(0, 0)
        assert again is None
        hit = yield from comm.Iprobe(0, 0)
        assert hit is None
        buf = np.zeros(1)
        yield from comm.Mrecv(buf, m)
        assert buf[0] == 9.0

    run_ranks(world2, sender, receiver)


def test_mrecv_rendezvous_message(world2):
    n = 1 << 15  # beyond the eager threshold

    def sender(proc):
        yield from proc.comm_world.Send(np.arange(n, dtype=np.float64),
                                        dest=1, tag=1)

    def receiver(proc):
        comm = proc.comm_world
        m = None
        while m is None:
            m = yield from comm.Improbe(0, 1)
            if m is None:
                yield proc.compute(1e-6)
        assert m.size == n * 8  # RTS carries the full payload size
        buf = np.zeros(n)
        yield from comm.Mrecv(buf, m)
        assert np.allclose(buf, np.arange(n))

    run_ranks(world2, sender, receiver)


def test_mrecv_twice_rejected(world2):
    def sender(proc):
        yield from proc.comm_world.Send(np.zeros(1), dest=1, tag=0)

    def receiver(proc):
        comm = proc.comm_world
        m = None
        while m is None:
            m = yield from comm.Improbe(0, 0)
            if m is None:
                yield proc.compute(1e-6)
        buf = np.zeros(1)
        yield from comm.Mrecv(buf, m)
        with pytest.raises(MpiUsageError, match="already received"):
            yield from comm.Mrecv(buf, m)

    run_ranks(world2, sender, receiver)


def test_improbe_empty_queue_returns_none(world2):
    def rank0(proc):
        m = yield from proc.comm_world.Improbe(ANY_SOURCE, ANY_TAG)
        assert m is None

    def rank1(proc):
        return
        yield

    run_ranks(world2, rank0, rank1)


def test_concurrent_improbe_each_message_claimed_once():
    """Many polling threads race on matched probes: every message is
    delivered exactly once (the scenario where plain probe breaks)."""
    world = World(num_nodes=2, procs_per_node=1, threads_per_proc=4)
    total = 32
    got = []

    def node(proc):
        comm = proc.comm_world
        if proc.rank == 0:
            def pusher():
                for k in range(total):
                    yield from comm.Send(np.full(1, float(k)), 1, tag=0)
            yield proc.sim.all_of([proc.spawn(pusher())])
        else:
            remaining = [total]

            def poller():
                buf = np.zeros(1)
                while remaining[0] > 0:
                    m = yield from comm.Improbe(ANY_SOURCE, ANY_TAG)
                    if m is None:
                        yield proc.compute(1e-6)
                        continue
                    remaining[0] -= 1
                    yield from comm.Mrecv(buf, m)
                    got.append(buf[0])

            yield proc.sim.all_of([proc.spawn(poller())
                                   for _ in range(4)])

    tasks = [world.procs[i].spawn(node(world.procs[i])) for i in range(2)]
    world.run_all(tasks, max_steps=None)
    assert sorted(got) == [float(k) for k in range(total)]
