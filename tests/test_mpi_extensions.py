"""Tests for the extended MPI surface: Split, Sendrecv, Probe, persistent
requests, additional collectives, RMA read-modify-write, partitioned
range/list helpers, and the Rankpoints alias."""

import numpy as np
import pytest

from repro.errors import MpiUsageError
from repro.mpi import ANY_SOURCE, ANY_TAG
from repro.mpi.coll.ops import MAX, SUM
from repro.mpi.endpoints import comm_create_endpoints, comm_create_rankpoints
from repro.mpi.partitioned import precv_init, psend_init
from repro.mpi.persistent import (
    recv_init,
    send_init,
    start_all_persistent,
    wait_all_persistent,
)
from repro.mpi.rma import win_create
from repro.runtime import World

from tests.helpers import run_ranks, run_same


# ---------------------------------------------------------------- Split

def test_split_by_parity():
    world = World(num_nodes=6, procs_per_node=1)

    def worker(proc):
        sub = yield from proc.comm_world.Split(color=proc.rank % 2,
                                               key=proc.rank)
        assert sub.size == 3
        assert sub.rank == proc.rank // 2
        # subgroup members share data among themselves only
        out = np.zeros(1)
        yield from sub.Allreduce(np.full(1, float(proc.rank)), out)
        expected = sum(r for r in range(6) if r % 2 == proc.rank % 2)
        assert out[0] == expected
        return sub.context_id

    ctxs = run_same(world, worker)
    assert ctxs[0] == ctxs[2] == ctxs[4]
    assert ctxs[1] == ctxs[3] == ctxs[5]
    assert ctxs[0] != ctxs[1]


def test_split_key_reorders_ranks():
    world = World(num_nodes=3, procs_per_node=1)

    def worker(proc):
        # reverse order via descending keys
        sub = yield from proc.comm_world.Split(color=0, key=-proc.rank)
        return sub.rank

    assert run_same(world, worker) == [2, 1, 0]


def test_split_undefined_color_returns_none():
    world = World(num_nodes=3, procs_per_node=1)

    def worker(proc):
        color = None if proc.rank == 1 else 0
        sub = yield from proc.comm_world.Split(color=color)
        if proc.rank == 1:
            assert sub is None
            return -1
        return sub.size

    assert run_same(world, worker) == [2, -1, 2]


# ------------------------------------------------------------ Sendrecv / Probe

def test_sendrecv_ring(world4):
    def worker(proc):
        n = 4
        right, left = (proc.rank + 1) % n, (proc.rank - 1) % n
        out = np.full(2, float(proc.rank))
        inc = np.zeros(2)
        status = yield from proc.comm_world.Sendrecv(
            out, right, 7, inc, left, 7)
        assert np.allclose(inc, left)
        assert status.source == left

    run_same(world4, worker)


def test_blocking_probe_waits(world2):
    def sender(proc):
        yield proc.compute(5e-6)
        yield from proc.comm_world.Send(np.full(3, 1.5), dest=1, tag=9)

    def receiver(proc):
        src, tag, size = yield from proc.comm_world.Probe(ANY_SOURCE, ANY_TAG)
        assert (src, tag, size) == (0, 9, 24)
        assert proc.sim.now >= 5e-6
        buf = np.zeros(3)
        yield from proc.comm_world.Recv(buf, src, tag)

    run_ranks(world2, sender, receiver)


# ------------------------------------------------------------ persistent

def test_persistent_send_recv_cycles(world2):
    cycles = 4

    def sender(proc):
        buf = np.zeros(4)
        req = send_init(proc.comm_world, buf, dest=1, tag=3)
        for c in range(cycles):
            buf[:] = c
            yield from req.start()
            yield from req.wait()
        assert req.cycles == cycles

    def receiver(proc):
        buf = np.zeros(4)
        req = recv_init(proc.comm_world, buf, source=0, tag=3)
        for c in range(cycles):
            yield from req.start()
            yield from req.wait()
            assert np.allclose(buf, c)

    run_ranks(world2, sender, receiver)


def test_persistent_recv_allows_wildcards(world2):
    """Unlike partitioned receives (Lesson 15), persistent receives keep
    MPI's wildcard semantics."""
    comm = world2.comm_world(0)
    req = recv_init(comm, np.zeros(1), source=ANY_SOURCE, tag=ANY_TAG)
    assert req.kind == "recv"
    with pytest.raises(MpiUsageError):
        precv_init(comm, np.zeros(2), 2, 1, source=ANY_SOURCE, tag=0)


def test_persistent_double_start_rejected(world2):
    def sender(proc):
        req = send_init(proc.comm_world, np.zeros(2), dest=1, tag=0)
        yield from req.start()
        with pytest.raises(MpiUsageError):
            yield from req.start()
        yield from req.wait()

    def receiver(proc):
        buf = np.zeros(2)
        yield from proc.comm_world.Recv(buf, source=0, tag=0)

    run_ranks(world2, sender, receiver)


def test_persistent_startall_waitall(world2):
    def sender(proc):
        bufs = [np.full(2, float(k)) for k in range(3)]
        reqs = [send_init(proc.comm_world, bufs[k], dest=1, tag=k)
                for k in range(3)]
        yield from start_all_persistent(reqs)
        yield from wait_all_persistent(reqs)

    def receiver(proc):
        reqs = []
        bufs = []
        for k in range(3):
            buf = np.zeros(2)
            bufs.append(buf)
            reqs.append(recv_init(proc.comm_world, buf, source=0, tag=k))
        yield from start_all_persistent(reqs)
        yield from wait_all_persistent(reqs)
        for k in range(3):
            assert np.allclose(bufs[k], k)

    run_ranks(world2, sender, receiver)


def test_persistent_wait_before_start_rejected(world2):
    req = send_init(world2.comm_world(0), np.zeros(1), dest=1, tag=0)

    def t(proc):
        with pytest.raises(MpiUsageError):
            yield from req.wait()

    world2.run_all([world2.procs[0].spawn(t(world2.procs[0]))])


# ------------------------------------------------------------ collectives

@pytest.mark.parametrize("n,root", [(2, 0), (4, 1), (5, 3), (8, 0)])
def test_gather(n, root):
    world = World(num_nodes=n, procs_per_node=1)

    def worker(proc):
        rb = np.zeros(2 * n) if proc.rank == root else None
        yield from proc.comm_world.Gather(
            np.full(2, float(proc.rank)), rb, root=root)
        if proc.rank == root:
            assert np.allclose(rb, np.repeat(np.arange(n), 2))

    run_same(world, worker)


@pytest.mark.parametrize("n,root", [(2, 1), (4, 0), (5, 2), (8, 7)])
def test_scatter(n, root):
    world = World(num_nodes=n, procs_per_node=1)

    def worker(proc):
        sb = np.arange(3.0 * n) if proc.rank == root else None
        out = np.zeros(3)
        yield from proc.comm_world.Scatter(sb, out, root=root)
        assert np.allclose(out, 3 * proc.rank + np.arange(3.0))

    run_same(world, worker)


@pytest.mark.parametrize("n", [1, 2, 5, 8])
def test_scan_inclusive(n):
    world = World(num_nodes=n, procs_per_node=1)

    def worker(proc):
        out = np.zeros(2)
        yield from proc.comm_world.Scan(np.full(2, float(proc.rank + 1)),
                                        out)
        assert np.allclose(out, (proc.rank + 1) * (proc.rank + 2) / 2)

    run_same(world, worker)


@pytest.mark.parametrize("n", [2, 3, 6])
def test_reduce_scatter_block(n):
    world = World(num_nodes=n, procs_per_node=1)

    def worker(proc):
        send = np.arange(2.0 * n) + 10 * proc.rank
        out = np.zeros(2)
        yield from proc.comm_world.Reduce_scatter_block(send, out)
        base = np.arange(2.0) + 2 * proc.rank
        expected = sum(base + 10 * r for r in range(n))
        assert np.allclose(out, expected)

    run_same(world, worker)


def test_gather_root_needs_buffer():
    world = World(num_nodes=2, procs_per_node=1)

    def worker(proc):
        if proc.rank == 0:
            with pytest.raises(MpiUsageError):
                yield from proc.comm_world.Gather(np.zeros(1), None, root=0)
        else:
            yield from proc.comm_world.Gather(np.zeros(1), None, root=0)

    tasks = [world.procs[i].spawn(worker(world.procs[i])) for i in range(2)]
    world.run(max_steps=100000)
    assert tasks[0].triggered


def test_scan_with_max():
    world = World(num_nodes=4, procs_per_node=1)
    values = [3.0, 1.0, 7.0, 2.0]

    def worker(proc):
        out = np.zeros(1)
        yield from proc.comm_world.Scan(np.full(1, values[proc.rank]), out,
                                        op=MAX)
        assert out[0] == max(values[: proc.rank + 1])

    run_same(world, worker)


# ------------------------------------------------------------ RMA extras

def test_get_accumulate(world2):
    def origin(proc):
        win = yield from win_create(proc.comm_world, np.zeros(4))
        res = np.zeros(2)
        req = yield from win.Get_accumulate(np.full(2, 5.0), res, target=1,
                                            disp=1, op=SUM)
        yield from req.wait()
        assert np.allclose(res, [10.0, 20.0])  # old values fetched
        yield from win.Fence()

    def target(proc):
        mem = np.array([0.0, 10.0, 20.0, 0.0])
        win = yield from win_create(proc.comm_world, mem)
        yield from win.Fence()
        assert np.allclose(mem, [0.0, 15.0, 25.0, 0.0])

    run_ranks(world2, origin, target)


def test_compare_and_swap_success_and_failure(world2):
    def origin(proc):
        win = yield from win_create(proc.comm_world, np.zeros(1))
        res = np.zeros(1)
        # matching compare: swap happens
        req = yield from win.Compare_and_swap(
            np.array([7.0]), np.array([99.0]), res, target=1, disp=0)
        yield from req.wait()
        assert res[0] == 7.0
        # stale compare: no swap
        req = yield from win.Compare_and_swap(
            np.array([7.0]), np.array([123.0]), res, target=1, disp=0)
        yield from req.wait()
        assert res[0] == 99.0
        yield from win.Fence()

    def target(proc):
        mem = np.array([7.0])
        win = yield from win_create(proc.comm_world, mem)
        yield from win.Fence()
        assert mem[0] == 99.0

    run_ranks(world2, origin, target)


def test_lock_all_unlock_all(world2):
    def origin(proc):
        win = yield from win_create(proc.comm_world, np.zeros(2))
        yield from win.Lock_all()
        yield from win.Put(np.full(1, 4.0), target=1, disp=0)
        yield from win.Unlock_all()
        yield from win.Fence()

    def target(proc):
        mem = np.zeros(2)
        win = yield from win_create(proc.comm_world, mem)
        yield from win.Fence()
        assert mem[0] == 4.0

    run_ranks(world2, origin, target)


# ------------------------------------------------------------ partitioned

def test_pready_range_and_list(world2):
    def sender(proc):
        buf = np.arange(12.0)
        req = psend_init(proc.comm_world, buf, 6, 2, dest=1, tag=0)
        yield from req.start()
        yield from req.pready_range(0, 2)
        yield from req.pready_list([5, 3, 4])
        yield from req.wait()
        with pytest.raises(MpiUsageError):
            yield from req.pready_range(3, 1)

    def receiver(proc):
        buf = np.zeros(12)
        req = precv_init(proc.comm_world, buf, 6, 2, source=0, tag=0)
        yield from req.start()
        yield from req.wait()
        assert np.allclose(buf, np.arange(12.0))

    run_ranks(world2, sender, receiver)


# ------------------------------------------------------------ rankpoints

def test_rankpoints_alias(world2):
    """Section IV: MPI_Comm_create_rankpoints is the endpoints API under
    the user-facing name."""
    def main(proc):
        rps = yield from comm_create_rankpoints(proc.comm_world, 2)
        assert [r.rank for r in rps] == \
            ([0, 1] if proc.rank == 0 else [2, 3])

        def thread(rp):
            peer = (rp.rank + 2) % 4
            out = np.zeros(1)
            rreq = yield from rp.Irecv(out, peer, tag=0)
            sreq = yield from rp.Isend(np.full(1, float(rp.rank)), peer, 0)
            yield from rreq.wait()
            yield from sreq.wait()
            assert out[0] == peer

        yield proc.sim.all_of([proc.spawn(thread(rp)) for rp in rps])

    run_same(world2, main)
