"""Fault injection + reliable transport (repro.faults).

Covers: plan parsing and validation, injector determinism, MPI correctness
on a lossy fabric across every mechanism mapping, seed reproducibility,
graceful degradation (context stalls, link windows), the TransportError
give-up path, deadlock diagnostics, and the reliability report/CLI.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.stencil import StencilConfig, run_stencil
from repro.errors import FaultPlanError, TransportError
from repro.faults import (
    ANY,
    CtxStall,
    FaultInjector,
    FaultPlan,
    LinkWindow,
    TransportParams,
    parse_plan,
    parse_time,
    payload_checksum,
    render_reliability_report,
)
from repro.netsim import NetworkConfig
from repro.netsim.message import MessageKind, WireMessage
from repro.runtime import World
from repro.sim.core import SimulationError
from repro.sim.trace import TraceCategory, Tracer
from repro.netsim import ClusterSpec
from tests.helpers import run_ranks, run_same

MECHANISMS = ("original", "tags", "communicators", "endpoints",
              "partitioned")

#: The reference lossy plan used across the correctness tests.
LOSSY = FaultPlan(drop=0.05, dup=0.02, corrupt=0.01, delay=0.05)


def lossy_world(plan=LOSSY, seed=0, **kw):
    return World(num_nodes=2, procs_per_node=1, faults=plan, seed=seed,
                 **kw)


# ------------------------------------------------------------------ plans

def test_parse_time_suffixes():
    assert parse_time("20us") == pytest.approx(20e-6)
    assert parse_time("1.5ms") == pytest.approx(1.5e-3)
    assert parse_time("300ns") == pytest.approx(300e-9)
    assert parse_time("2s") == 2.0
    assert parse_time("0.25") == 0.25
    assert parse_time(3e-6) == 3e-6
    with pytest.raises(FaultPlanError):
        parse_time("fast")


def test_parse_plan_compact_spec():
    plan = parse_plan("drop=0.05, dup=0.02, corrupt=0.01, delay=0.1,"
                      "delay_max=40us, stall=0/1/50us/200us,"
                      "down=1/100us/140us, degraded=*/0/30us/8")
    assert plan.drop == 0.05 and plan.dup == 0.02
    assert plan.delay_max == pytest.approx(40e-6)
    (stall,) = plan.stalls
    assert (stall.node, stall.ctx) == (0, 1)
    assert stall.start == pytest.approx(50e-6)
    assert stall.duration == pytest.approx(200e-6)
    assert len(plan.links) == 2
    down, degraded = plan.links
    assert down.kind == "down" and down.node == 1
    assert degraded.kind == "degraded" and degraded.node == ANY
    assert degraded.factor == 8.0


def test_parse_plan_json_file_roundtrip(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(LOSSY.to_dict()))
    assert parse_plan(str(path)) == LOSSY


def test_plan_validation():
    with pytest.raises(FaultPlanError):
        FaultPlan(drop=1.5)
    with pytest.raises(FaultPlanError):
        FaultPlan(delay_max=-1e-6)
    with pytest.raises(FaultPlanError):
        LinkWindow(node=0, start=2e-6, end=1e-6)
    with pytest.raises(FaultPlanError):
        LinkWindow(node=0, start=0, end=1e-6, kind="flaky")
    with pytest.raises(FaultPlanError):
        parse_plan("drop=0.1,unknown=3")
    with pytest.raises(FaultPlanError):
        parse_plan("stall=0/1/2")


def test_plan_flags():
    assert FaultPlan().lossless
    assert not FaultPlan(drop=0.1).lossless
    assert FaultPlan(drop=0.1).any_message_faults
    stalled = FaultPlan(stalls=(CtxStall(ANY, ANY, 0.0, 1e-6),))
    assert not stalled.any_message_faults and not stalled.lossless


def test_window_covers():
    stall = CtxStall(node=0, ctx=ANY, start=1e-6, duration=1e-6)
    assert stall.covers(0, 5, 1.5e-6)
    assert not stall.covers(1, 5, 1.5e-6)
    assert not stall.covers(0, 5, 2.5e-6)
    link = LinkWindow(node=ANY, start=0.0, end=1e-6)
    assert link.covers(3, 0.5e-6) and not link.covers(3, 1e-6)


# --------------------------------------------------------------- injector

def _msg(size=8, payload=None):
    return WireMessage(kind=MessageKind.EAGER, src_node=0, dst_node=1,
                       src_rank=0, dst_rank=1, context_id=0, tag=0,
                       size=size, payload=payload)


def test_injector_same_seed_same_decisions():
    plan = FaultPlan(drop=0.3, dup=0.2, corrupt=0.1, delay=0.2)
    outcomes = []
    for _ in range(2):
        inj = FaultInjector(plan, seed=7)
        outcomes.append([len(inj.wire_actions(_msg(), 0.0, 1e-8))
                         for _ in range(200)])
    assert outcomes[0] == outcomes[1]
    different = [len(FaultInjector(plan, seed=8).wire_actions(
        _msg(), 0.0, 1e-8)) for _ in range(200)]
    assert different != outcomes[0]


def test_injector_counters_and_link_windows():
    plan = FaultPlan(links=(LinkWindow(node=0, start=0.0, end=1e-6),))
    inj = FaultInjector(plan, seed=0)
    assert inj.wire_actions(_msg(), 0.5e-6, 1e-8) == []   # inside: dropped
    assert len(inj.wire_actions(_msg(), 2e-6, 1e-8)) == 1  # outside
    assert inj.link_drops == 1 and inj.messages_seen == 2

    degraded = FaultInjector(FaultPlan(links=(
        LinkWindow(node=0, start=0.0, end=1e-6, kind="degraded",
                   factor=5.0),)), seed=0)
    (d,) = degraded.wire_actions(_msg(), 0.5e-6, 1e-8)
    assert d.extra_delay == pytest.approx(4e-8)  # wire_time * (factor-1)


def test_corruption_copies_never_mutate_the_original():
    payload = np.arange(4.0)
    msg = _msg(size=32, payload=payload)
    msg.checksum = payload_checksum(payload)
    inj = FaultInjector(FaultPlan(corrupt=1.0), seed=0)
    (d,) = inj.wire_actions(msg, 0.0, 1e-8)
    assert d.msg is not msg
    assert np.array_equal(msg.payload, np.arange(4.0))  # sender copy clean
    assert payload_checksum(d.msg.payload) != d.msg.checksum


def test_stall_until():
    plan = FaultPlan(stalls=(CtxStall(0, 1, 1e-6, 2e-6),
                             CtxStall(0, 1, 2e-6, 4e-6)))
    inj = FaultInjector(plan, seed=0)
    assert inj.stall_until(0, 1, 0.5e-6) == 0.0
    assert inj.stall_until(0, 1, 1.5e-6) == pytest.approx(3e-6)
    assert inj.stall_until(0, 1, 2.5e-6) == pytest.approx(6e-6)  # max end
    assert inj.stall_until(1, 1, 1.5e-6) == 0.0


# ------------------------------------------------- transport correctness

def test_pt2pt_exact_delivery_on_lossy_fabric():
    world = lossy_world(FaultPlan(drop=0.2, dup=0.1, corrupt=0.05), seed=3)
    n = 16
    got = []

    def sender(proc):
        for i in range(n):
            yield from proc.comm_world.Send(
                np.full(4, float(i)), dest=1, tag=i)

    def receiver(proc):
        for i in range(n):
            buf = np.zeros(4)
            yield from proc.comm_world.Recv(buf, source=0, tag=i)
            got.append(buf.copy())

    run_ranks(world, sender, receiver)
    for i, buf in enumerate(got):
        assert np.array_equal(buf, np.full(4, float(i)))
    total = sum(p.lib.transport.summary()["retransmits"]
                for p in world.procs)
    assert total > 0  # the plan really did bite


def test_fifo_order_preserved_per_channel_under_loss():
    """Same-channel messages with the same tag must arrive in post order
    even when drops/dups scramble the physical arrival order."""
    world = lossy_world(FaultPlan(drop=0.25, dup=0.2), seed=5)
    n = 12
    got = []

    def sender(proc):
        reqs = []
        for i in range(n):
            reqs.append((yield from proc.comm_world.Isend(
                np.array([float(i)]), dest=1, tag=7)))
        for r in reqs:
            yield from r.wait()

    def receiver(proc):
        for _ in range(n):
            buf = np.zeros(1)
            yield from proc.comm_world.Recv(buf, source=0, tag=7)
            got.append(float(buf[0]))

    run_ranks(world, sender, receiver)
    assert got == [float(i) for i in range(n)]


def test_rendezvous_survives_loss():
    """Large (rendezvous-path) messages: RTS/CTS/DATA all droppable."""
    cfg = NetworkConfig()
    big = cfg.fabric.eager_threshold // 8 + 64  # float64s > threshold
    world = World(cluster=ClusterSpec(nodes=2, network=cfg),
                  faults=FaultPlan(drop=0.15, dup=0.05), seed=2)
    data = np.arange(float(big))
    out = np.zeros(big)

    def sender(proc):
        yield from proc.comm_world.Send(data, dest=1, tag=0)

    def receiver(proc):
        yield from proc.comm_world.Recv(out, source=0, tag=0)

    run_ranks(world, sender, receiver)
    assert np.array_equal(out, data)


def test_ack_drops_are_recovered_by_dup_suppression():
    """Heavy loss also kills ACKs: the sender retransmits delivered data
    and the receiver must suppress the duplicates, not redeliver."""
    world = lossy_world(FaultPlan(drop=0.35), seed=11,
                        transport=TransportParams(rto=6e-6))

    def sender(proc):
        for i in range(10):
            yield from proc.comm_world.Send(np.array([float(i)]),
                                            dest=1, tag=i)

    def receiver(proc):
        for i in range(10):
            buf = np.zeros(1)
            yield from proc.comm_world.Recv(buf, source=0, tag=i)
            assert buf[0] == float(i)

    run_ranks(world, sender, receiver)
    stats = [p.lib.transport.summary() for p in world.procs]
    assert sum(s["retransmits"] for s in stats) > 0
    # exactly-once: each rank completed all receives despite duplicates
    assert world.procs[1].lib.recvs_completed == 10


def test_transport_gives_up_with_transport_error():
    world = lossy_world(FaultPlan(drop=1.0), seed=0,
                        transport=TransportParams(rto=2e-6, max_retries=3))

    def sender(proc):
        yield from proc.comm_world.Send(np.zeros(2), dest=1, tag=0)

    def receiver(proc):
        buf = np.zeros(2)
        yield from proc.comm_world.Recv(buf, source=0, tag=0)

    with pytest.raises(TransportError) as exc_info:
        run_ranks(world, sender, receiver)
    err = exc_info.value
    assert err.retries == 3
    assert err.flow == (0, 1, err.flow[2], err.flow[3])


def test_reliable_transport_is_noop_on_lossless_fabric():
    """transport= alone (no faults) must not change delivered data."""
    world = World(num_nodes=2, procs_per_node=1,
                  transport=TransportParams())
    out = np.zeros(8)

    def sender(proc):
        yield from proc.comm_world.Send(np.arange(8.0), dest=1, tag=0)

    def receiver(proc):
        yield from proc.comm_world.Recv(out, source=0, tag=0)

    run_ranks(world, sender, receiver)
    assert np.array_equal(out, np.arange(8.0))
    assert all(p.lib.transport.retransmits == 0 for p in world.procs)
    world.run()  # drain in-flight ACKs and armed (no-op) timers
    assert all(p.lib.transport.retransmits == 0 for p in world.procs)
    assert all(p.lib.transport.unacked == 0 for p in world.procs)


# -------------------------------------------------- graceful degradation

def test_context_stall_fails_over_to_another_context():
    plan = FaultPlan(stalls=(CtxStall(node=0, ctx=0, start=0.0,
                                      duration=1.0),))
    world = World(num_nodes=2, procs_per_node=1, threads_per_proc=2,
                  faults=plan, seed=0)

    def rank0(proc):
        yield from proc.comm_world.Send(np.arange(4.0), dest=1, tag=0)

    def rank1(proc):
        buf = np.zeros(4)
        yield from proc.comm_world.Recv(buf, source=0, tag=0)
        assert np.array_equal(buf, np.arange(4.0))

    run_ranks(world, rank0, rank1)
    assert world.injector.failovers > 0
    nic0 = world.nodes[0].nic
    assert nic0.contexts[0].messages_issued == 0  # wedged queue unused
    assert sum(c.failovers_in for c in nic0.contexts) > 0


def test_context_stall_waits_when_no_failover_target():
    cfg = NetworkConfig().with_contexts(1)  # nowhere to fail over to
    stall_end = 40e-6
    plan = FaultPlan(stalls=(CtxStall(node=0, ctx=0, start=0.0,
                                      duration=stall_end),))
    world = World(cluster=ClusterSpec(nodes=2, network=cfg), faults=plan)

    def rank0(proc):
        yield from proc.comm_world.Send(np.arange(2.0), dest=1, tag=0)
        return proc.sim.now

    def rank1(proc):
        buf = np.zeros(2)
        yield from proc.comm_world.Recv(buf, source=0, tag=0)
        return proc.sim.now

    t0, t1 = run_ranks(world, rank0, rank1)
    assert world.nodes[0].nic.contexts[0].stall_waits > 0
    assert t1 >= stall_end  # nothing left node 0 before the stall ended


def test_down_link_window_is_ridden_out():
    plan = FaultPlan(links=(LinkWindow(node=0, start=0.0, end=30e-6),))
    world = lossy_world(plan, seed=0,
                        transport=TransportParams(rto=8e-6))

    def rank0(proc):
        yield from proc.comm_world.Send(np.arange(4.0), dest=1, tag=0)

    def rank1(proc):
        buf = np.zeros(4)
        yield from proc.comm_world.Recv(buf, source=0, tag=0)
        assert np.array_equal(buf, np.arange(4.0))
        return proc.sim.now

    results = run_ranks(world, rank0, rank1)
    assert results[1] >= 30e-6
    assert world.injector.link_drops > 0


# ----------------------------------------- every mapping, lossy stencil

def _stencil_cfg(mech, seed=1, points=5):
    return StencilConfig(proc_grid=(2, 2), thread_grid=(2, 2),
                         pnx=6, pny=6, stencil_points=points, iters=3,
                         mechanism=mech, seed=seed)


@pytest.mark.parametrize("mech", MECHANISMS)
def test_every_mechanism_correct_on_lossy_fabric(mech):
    r = run_stencil(_stencil_cfg(mech), faults=LOSSY)
    assert r.correct
    retransmits = sum(p.lib.transport.retransmits for p in r.world.procs)
    assert retransmits > 0
    assert r.world.injector.drops > 0


@pytest.mark.parametrize("mech", ("original", "endpoints"))
def test_same_seed_reproduces_identical_run(mech):
    a = run_stencil(_stencil_cfg(mech), faults=LOSSY)
    b = run_stencil(_stencil_cfg(mech), faults=LOSSY)
    assert a.wall_time == b.wall_time
    assert a.sim_steps == b.sim_steps
    assert a.world.injector.summary() == b.world.injector.summary()


def test_lossy_field_byte_identical_to_lossless():
    clean = run_stencil(_stencil_cfg("tags"))
    lossy = run_stencil(_stencil_cfg("tags"), faults=LOSSY)
    assert clean.final_field.tobytes() == lossy.final_field.tobytes()


# --------------------------------------------- observability integration

def test_fault_metrics_and_trace_spans():
    from repro.obs import MetricsRegistry
    metrics = MetricsRegistry()
    tracer = Tracer()
    r = run_stencil(_stencil_cfg("original"),
                    faults=FaultPlan(drop=0.15), metrics=metrics,
                    tracer=tracer)
    assert r.correct
    r.world.finalize_metrics()
    drops = sum(m.value for m in metrics.series("fault.drop"))
    assert drops == r.world.injector.drops > 0
    retrans = sum(m.value for m in metrics.series("transport.retransmit"))
    assert retrans > 0
    assert metrics.value("fault.total.drops") == r.world.injector.drops
    assert tracer.count(TraceCategory.FAULT_DROP) == r.world.injector.drops
    assert tracer.count(TraceCategory.RETRANSMIT) == retrans
    # recovery spans pair up: every recovered packet ends its span
    pairing = tracer.pair_spans(TraceCategory.RECOVERY_BEGIN,
                                TraceCategory.RECOVERY_END)
    assert pairing.orphan_ends == 0
    if pairing.spans:
        assert all(b <= e for b, e in pairing.spans)


def test_metrics_do_not_perturb_lossy_timings():
    from repro.obs import MetricsRegistry
    bare = run_stencil(_stencil_cfg("communicators"), faults=LOSSY)
    instrumented = run_stencil(_stencil_cfg("communicators"), faults=LOSSY,
                               metrics=MetricsRegistry(), tracer=Tracer())
    assert bare.wall_time == instrumented.wall_time
    assert bare.sim_steps == instrumented.sim_steps


def test_reliability_report_renders():
    r = run_stencil(_stencil_cfg("original"), faults=LOSSY)
    text = render_reliability_report(r.world)
    assert "fault plan" in text and "reliable transport" in text
    assert "retransmits" in text
    plain = run_stencil(_stencil_cfg("original"))
    assert "disabled" in render_reliability_report(plain.world)


def test_faults_cli_subcommand(capsys):
    from repro.cli import main
    rc = main(["faults", "stencil", "--plan", "drop=0.05,dup=0.02",
               "--seed", "1", "--iters", "2",
               "--mechanisms", "original", "partitioned"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "reliable transport" in out
    assert "per-VCI metrics" in out
    assert "stencil on a lossy fabric" in out
    assert "False" not in out  # every mechanism correct


def test_faults_cli_rejects_bad_plan(capsys):
    from repro.cli import main
    assert main(["faults", "stencil", "--plan", "drop=oops"]) == 2


# ------------------------------------------------- deadlock diagnostics

def test_deadlock_report_names_pending_state():
    world = World(num_nodes=2, procs_per_node=1)

    def rank0(proc):
        buf = np.zeros(4)
        yield from proc.comm_world.Recv(buf, source=1, tag=3)  # never sent

    def rank1(proc):
        yield proc.sim.timeout(1e-6)

    with pytest.raises(SimulationError) as exc_info:
        run_ranks(world, rank0, rank1)
    text = str(exc_info.value)
    assert "deadlock?" in text
    assert "blocked tasks" in text
    assert "rank 0" in text
    assert "posted recv" in text


def test_deadlock_report_names_unexpected_messages():
    world = World(num_nodes=2, procs_per_node=1)

    def rank0(proc):
        yield from proc.comm_world.Send(np.zeros(2), dest=1, tag=9)
        buf = np.zeros(2)
        yield from proc.comm_world.Recv(buf, source=1, tag=0)  # stuck

    def rank1(proc):
        yield proc.sim.timeout(50e-6)  # receives nothing, sends nothing

    with pytest.raises(SimulationError) as exc_info:
        run_ranks(world, rank0, rank1)
    text = str(exc_info.value)
    assert "unexpected msg" in text and "rank 1" in text


# -------------------------------------------------- property (hypothesis)

PLAN_STRATEGY = st.builds(
    FaultPlan,
    drop=st.floats(min_value=0.0, max_value=0.15),
    dup=st.floats(min_value=0.0, max_value=0.1),
    corrupt=st.floats(min_value=0.0, max_value=0.1),
    delay=st.floats(min_value=0.0, max_value=0.2),
)

FAULT_SETTINGS = settings(max_examples=10, deadline=None,
                          suppress_health_check=[HealthCheck.too_slow,
                                                 HealthCheck.data_too_large])


@FAULT_SETTINGS
@given(plan=PLAN_STRATEGY, seed=st.integers(min_value=0, max_value=2**16),
       mech=st.sampled_from(MECHANISMS))
def test_property_lossy_run_matches_lossless_bytes(plan, seed, mech):
    """For any fault plan: the transferred data is byte-identical to the
    lossless run, and the same seed reproduces the same event count."""
    cfg = _stencil_cfg(mech, seed=seed)
    lossless = run_stencil(cfg)
    lossy = run_stencil(cfg, faults=plan)
    assert lossy.correct
    assert lossy.final_field.tobytes() == lossless.final_field.tobytes()
    again = run_stencil(cfg, faults=plan)
    assert again.sim_steps == lossy.sim_steps
    assert again.wall_time == lossy.wall_time


@FAULT_SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**16),
       drop=st.floats(min_value=0.05, max_value=0.3),
       dup=st.floats(min_value=0.0, max_value=0.2))
def test_property_pt2pt_payloads_survive_any_plan(seed, drop, dup):
    world = lossy_world(FaultPlan(drop=drop, dup=dup), seed=seed)
    n = 6
    got = {}

    def sender(proc):
        for i in range(n):
            yield from proc.comm_world.Send(
                np.full(3, float(seed % 97 + i)), dest=1, tag=i)

    def receiver(proc):
        for i in range(n):
            buf = np.zeros(3)
            yield from proc.comm_world.Recv(buf, source=0, tag=i)
            got[i] = buf.copy()

    run_ranks(world, sender, receiver)
    for i in range(n):
        assert np.array_equal(got[i], np.full(3, float(seed % 97 + i)))
