"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mapping import (
    STENCIL_2D_5PT,
    STENCIL_2D_9PT,
    MirroredCommMap,
    NaiveCommMap,
    StencilGeometry,
    TagSchema,
    analyze_map,
    min_channels_2d9,
)
from repro.mpi.matching import ANY_SOURCE, ANY_TAG, MatchingEngine, PostedRecv
from repro.mpi.request import Request
from repro.mpi.vci import TAG_BITS, mix_hash
from repro.netsim.message import MessageKind, WireMessage
from repro.sim import FIFOServer, Simulator

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


# ------------------------------------------------------------------ sim

@SETTINGS
@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                max_size=40))
def test_event_processing_is_time_ordered(delays):
    sim = Simulator()
    seen = []

    def task(d):
        yield sim.timeout(d)
        seen.append(sim.now)

    for d in delays:
        sim.spawn(task(d))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


@SETTINGS
@given(st.lists(st.floats(min_value=1e-9, max_value=1e-3), min_size=1,
                max_size=30),
       st.floats(min_value=1e-9, max_value=1e-4))
def test_fifo_server_rate_limited_and_monotonic(services, gap):
    sim = Simulator()
    srv = FIFOServer(sim, service_time=gap)
    times = [srv.occupy(s) for s in services]
    # completions strictly increase and respect cumulative service time
    assert all(b > a for a, b in zip(times, times[1:]))
    assert times[-1] >= sum(services) * 0.999999


# ------------------------------------------------------------ matching

def _msg(src, tag, ctx=0, dst_addr=0, val=None):
    return WireMessage(kind=MessageKind.EAGER, src_node=0, dst_node=1,
                       src_rank=src, dst_rank=0, context_id=ctx, tag=tag,
                       size=0, payload=val,
                       meta={"src_addr": src, "dst_addr": dst_addr})


@SETTINGS
@given(st.lists(
    st.tuples(st.booleans(),                      # recv (True) or msg
              st.integers(min_value=0, max_value=3),   # source
              st.integers(min_value=0, max_value=3)),  # tag
    min_size=1, max_size=60),
    st.data())
def test_matching_every_message_matched_at_most_once(ops, data):
    """Random interleavings of posts and arrivals: each message is matched
    by at most one receive, each receive by at most one message, and
    matched pairs satisfy the predicate."""
    sim = Simulator()
    eng = MatchingEngine()
    matches = []
    posted, arrived = [], []
    for i, (is_recv, src, tag) in enumerate(ops):
        if is_recv:
            use_any_src = data.draw(st.booleans(), label=f"anysrc{i}")
            use_any_tag = data.draw(st.booleans(), label=f"anytag{i}")
            entry = PostedRecv(req=Request(sim, "r"), buf=np.zeros(1),
                               count=1, context_id=0,
                               source=ANY_SOURCE if use_any_src else src,
                               tag=ANY_TAG if use_any_tag else tag,
                               dst_addr=0)
            posted.append(entry)
            msg, _ = eng.post_recv(entry)
            if msg is not None:
                matches.append((entry, msg))
        else:
            msg = _msg(src, tag, val=i)
            arrived.append(msg)
            entry, _ = eng.incoming(msg)
            if entry is not None:
                matches.append((entry, msg))

    seen_entries = [id(e) for e, _ in matches]
    seen_msgs = [id(m) for _, m in matches]
    assert len(set(seen_entries)) == len(seen_entries)
    assert len(set(seen_msgs)) == len(seen_msgs)
    for entry, msg in matches:
        assert entry.matches(msg)
    # conservation: everything is matched or parked in a queue
    assert len(matches) + eng.posted_depth == len(posted)
    assert len(matches) + eng.unexpected_depth == len(arrived)


@SETTINGS
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=2,
                max_size=30))
def test_matching_nonovertaking_same_stream(tags_zero_one):
    """Messages with identical (src, tag) must match receives in arrival
    order (MPI's non-overtaking guarantee)."""
    sim = Simulator()
    eng = MatchingEngine()
    # all messages same src/tag; mark payload with sequence number
    for i in range(len(tags_zero_one)):
        eng.incoming(_msg(src=0, tag=5, val=i))
    got = []
    for _ in range(len(tags_zero_one)):
        entry = PostedRecv(req=Request(sim, "r"), buf=np.zeros(1), count=1,
                           context_id=0, source=0, tag=5, dst_addr=0)
        msg, _ = eng.post_recv(entry)
        assert msg is not None
        got.append(msg.payload)
    assert got == sorted(got)


# ------------------------------------------------------------ tag schema

@SETTINGS
@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=7),
       st.data())
def test_tag_schema_roundtrip_random(bits, app_bits, data):
    if 2 * bits + app_bits > TAG_BITS:
        return
    placement = data.draw(st.sampled_from(["MSB", "LSB"]))
    schema = TagSchema(num_tid_bits=bits, num_app_bits=app_bits,
                       placement=placement)
    src = data.draw(st.integers(0, schema.max_threads - 1))
    dst = data.draw(st.integers(0, schema.max_threads - 1))
    app = data.draw(st.integers(0, schema.max_app_tag))
    tag = schema.encode(src, dst, app)
    assert 0 <= tag <= (1 << TAG_BITS) - 1
    assert schema.decode(tag) == (src, dst, app)


@SETTINGS
@given(st.integers(min_value=0, max_value=2 ** 40))
def test_mix_hash_stable_and_nonnegative(x):
    assert mix_hash(x) == mix_hash(x)
    assert mix_hash(x) >= 0


# ------------------------------------------------------------ comm maps

grid_dims = st.integers(min_value=1, max_value=4)


@SETTINGS
@given(grid_dims, grid_dims, grid_dims, grid_dims)
def test_mirrored_map_always_full_parallelism(px, py, tx, ty):
    geom = StencilGeometry((px, py), (tx, ty), STENCIL_2D_9PT)
    r = analyze_map(MirroredCommMap(geom))
    assert r.max_conflicting_labels == 0
    assert r.min_parallel_efficiency == 1.0


@SETTINGS
@given(grid_dims, grid_dims, grid_dims, grid_dims)
def test_map_labels_symmetric_for_pairs(px, py, tx, ty):
    """Both directions of an exchange pair share the mirrored label
    (Listing 1 uses one communicator for a direction's send and recv)."""
    geom = StencilGeometry((px, py), (tx, ty), STENCIL_2D_5PT)
    cmap = MirroredCommMap(geom)
    from repro.mapping.communicators import Exchange
    for p in geom.procs():
        for t in geom.threads():
            for ex in geom.exchanges_from(p, t):
                assert cmap.label(ex) == cmap.label(Exchange(ex.dst, ex.src))


@SETTINGS
@given(st.integers(min_value=3, max_value=5),
       st.integers(min_value=3, max_value=5),
       st.integers(min_value=1, max_value=5),
       st.integers(min_value=1, max_value=5))
def test_communicating_threads_match_formula(px, py, tx, ty):
    """The interior process's communicating-thread count equals the
    closed-form boundary count (the Lesson 3 'channels needed')."""
    geom = StencilGeometry((px, py), (tx, ty), STENCIL_2D_9PT)
    center = (px // 2, py // 2)
    # only interior processes see the full boundary
    if not (0 < center[0] < px - 1 and 0 < center[1] < py - 1):
        return
    assert len(geom.communicating_threads(center)) == min_channels_2d9(tx, ty)


@SETTINGS
@given(grid_dims, grid_dims,
       st.integers(min_value=2, max_value=4),
       st.integers(min_value=2, max_value=4))
def test_naive_map_never_beats_mirrored_on_conflicts(px, py, tx, ty):
    geom = StencilGeometry((px, py), (tx, ty), STENCIL_2D_9PT)
    naive = analyze_map(NaiveCommMap(geom))
    mirrored = analyze_map(MirroredCommMap(geom))
    assert naive.min_parallel_efficiency <= mirrored.min_parallel_efficiency
    assert naive.max_threads_per_label >= mirrored.max_threads_per_label
