"""Unit + property tests for repro.netsim.topology: ClusterSpec, the
generators, routing, the RoutedFabric, per-communicator collective
algorithm selection, and byte-identity of the ``direct`` topology with
the legacy single-hop fabric."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import InvalidHintError, MpiUsageError, TopologyError
from repro.mpi.coll.select import COLL_ALGORITHMS, validate_selection
from repro.mpi.info import Info, parse_comm_hints
from repro.netsim import (
    ClusterSpec,
    NetworkConfig,
    Topology,
    dragonfly,
    fat_tree,
    host_vertex,
    register_topology,
    topology_names,
    torus,
)
from repro.obs import MetricsRegistry, Tracer
from repro.runtime import World
from repro.snap import (
    capture_state,
    load_snapshot,
    restore_snapshot,
    save_snapshot,
    state_digest,
    take_snapshot,
)

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def crisscross_world(make_world, nmsg=6, elems=512):
    """A fig1a-style workload: threads exchange tagged messages across
    two nodes, exercising eager + rendezvous and both fabric directions."""
    w = make_world()

    def node(proc):
        peer = 1 - proc.rank

        def thread(tid):
            out = np.full(elems, float(proc.rank * 10 + tid))
            buf = np.zeros(elems)
            for i in range(nmsg):
                rreq = yield from proc.comm_world.Irecv(buf, peer, tag=tid)
                sreq = yield from proc.comm_world.Isend(out, peer, tag=tid)
                yield from rreq.wait()
                yield from sreq.wait()

        yield proc.sim.all_of([proc.spawn(thread(t)) for t in range(3)])

    w.run_all([p.spawn(node(p)) for p in w.procs])
    return w


# ----------------------------------------------------- golden identity

def test_direct_topology_byte_identical_to_legacy_fabric():
    """Acceptance: equal state digests on the fig1a-style workload."""
    net = NetworkConfig.omnipath()

    def legacy():
        with pytest.warns(DeprecationWarning, match="World.cfg"):
            return World(num_nodes=2, procs_per_node=1, threads_per_proc=3,
                         cfg=net, seed=3)

    def direct():
        return World(cluster=ClusterSpec(nodes=2, threads_per_proc=3,
                                         topology="direct", network=net),
                     seed=3)

    d_legacy = state_digest(capture_state(crisscross_world(legacy)))
    d_direct = state_digest(capture_state(crisscross_world(direct)))
    assert d_legacy == d_direct


def test_routed_topology_changes_timing_not_results():
    def fat():
        return World(cluster=ClusterSpec(nodes=2, topology="fat_tree", k=4,
                                         threads_per_proc=3), seed=3)

    def direct():
        return World(cluster=ClusterSpec(nodes=2, threads_per_proc=3),
                     seed=3)

    w_fat, w_direct = crisscross_world(fat), crisscross_world(direct)
    # multi-hop store-and-forward is strictly slower than single-hop
    assert w_fat.sim.now > w_direct.sim.now
    assert state_digest(capture_state(w_fat)) \
        != state_digest(capture_state(w_direct))


# -------------------------------------------------------- ClusterSpec

def test_cfg_shim_emits_deprecation_warning():
    with pytest.warns(DeprecationWarning, match="ClusterSpec"):
        w = World(num_nodes=2, procs_per_node=1, cfg=NetworkConfig())
    assert w.cluster.topology == "direct"
    assert w.topology is None


def test_cluster_and_cfg_are_mutually_exclusive():
    with pytest.raises(MpiUsageError, match="cluster"):
        World(cluster=ClusterSpec(nodes=2), cfg=NetworkConfig())


def test_cluster_and_explicit_dims_are_mutually_exclusive():
    with pytest.raises(MpiUsageError, match="ClusterSpec"):
        World(cluster=ClusterSpec(nodes=2), num_nodes=2)


def test_clusterspec_validates_eagerly():
    with pytest.raises(TopologyError, match="unknown topology"):
        ClusterSpec(nodes=2, topology="hypercube")
    with pytest.raises(TopologyError, match="even"):
        ClusterSpec(nodes=2, topology="fat_tree", k=3)
    with pytest.raises(TopologyError):
        ClusterSpec(nodes=64, topology="fat_tree", k=4)  # 16 hosts < 64
    with pytest.raises(TopologyError, match="positive"):
        ClusterSpec(nodes=0)
    with pytest.raises(TopologyError, match="parameters"):
        ClusterSpec(nodes=2, topology="direct", bogus=1)


def test_topology_registry_protocol():
    names = topology_names()
    assert {"direct", "fat_tree", "dragonfly", "torus"} <= set(names)

    def star(nodes, params, **kwargs):
        topo = Topology("star", num_hosts=nodes)
        topo.add_switch("hub")
        for h in range(nodes):
            a, b = topo.add_duplex(host_vertex(h), "hub")
            topo.set_next_hop("hub", h, b)
            for dst in range(nodes):
                if dst != h:
                    topo.set_next_hop(host_vertex(h), dst, a)
        topo.validate()
        return topo

    register_topology("star-test", star)
    assert "star-test" in topology_names()
    spec = ClusterSpec(nodes=3, topology="star-test")
    assert spec.build_topology().num_links == 6


# ----------------------------------------------------------- routing

def _route_properties(topo):
    """Every host pair routes: contiguous path, correct endpoints, and
    loop-freedom (route() raises TopologyError on a next-hop cycle)."""
    for src in range(topo.num_hosts):
        for dst in range(topo.num_hosts):
            if src == dst:
                continue
            path = topo.route(src, dst)
            assert path, (src, dst)
            assert path[0].src == host_vertex(src)
            assert path[-1].dst == host_vertex(dst)
            for a, b in zip(path, path[1:]):
                assert a.dst == b.src
            vertices = [path[0].src] + [link.dst for link in path]
            assert len(set(vertices)) == len(vertices), "routing loop"


@SETTINGS
@given(k=st.sampled_from([2, 4, 6]))
def test_fat_tree_routes_every_pair(k):
    topo = fat_tree(k)
    assert topo.num_hosts == k ** 3 // 4
    _route_properties(topo)


@SETTINGS
@given(a=st.integers(1, 3), p=st.integers(1, 2), h=st.integers(1, 2))
def test_dragonfly_routes_every_pair(a, p, h):
    topo = dragonfly(a, p, h)
    assert topo.num_hosts == a * p * (a * h + 1)
    _route_properties(topo)


@SETTINGS
@given(dims=st.lists(st.integers(2, 4), min_size=1, max_size=3))
def test_torus_routes_every_pair(dims):
    topo = torus(tuple(dims))
    assert topo.num_hosts == int(np.prod(dims))
    _route_properties(topo)


@pytest.mark.parametrize("topology,params,n", [
    ("fat_tree", {"k": 4}, 16),
    ("dragonfly", {"a": 2, "p": 2, "h": 1}, 12),
    ("torus", {"dims": (3, 3)}, 9),
], ids=["fat_tree", "dragonfly", "torus"])
def test_per_link_byte_conservation(topology, params, n):
    """After an all-pairs exchange, every switch forwards exactly the
    bytes it receives (messages originate/terminate only at hosts)."""
    w = World(cluster=ClusterSpec(nodes=n, topology=topology, **params),
              seed=1)

    def node(proc):
        def thread(dst):
            buf = np.zeros(64 + dst)
            rreq = yield from proc.comm_world.Irecv(buf, dst, tag=proc.rank)
            sreq = yield from proc.comm_world.Isend(
                np.full(64 + proc.rank, 1.0), dst, tag=dst)
            yield from rreq.wait()
            yield from sreq.wait()

        others = [d for d in range(n) if d != proc.rank]
        yield proc.sim.all_of([proc.spawn(thread(d)) for d in others])

    w.run_all([p.spawn(node(p)) for p in w.procs])

    hosts = {host_vertex(h) for h in range(n)}
    inflow: dict[str, int] = {}
    outflow: dict[str, int] = {}
    for link in w.topology.links():
        outflow[link.src] = outflow.get(link.src, 0) + link.bytes
        inflow[link.dst] = inflow.get(link.dst, 0) + link.bytes
    switches = set(inflow) | set(outflow)
    for sw in switches - hosts:
        assert inflow.get(sw, 0) == outflow.get(sw, 0), sw
    # something actually flowed
    assert sum(l.bytes for l in w.topology.links()) > 0


def test_route_errors_are_typed():
    topo = Topology("t", num_hosts=2)
    topo.add_switch("sw")
    with pytest.raises(TopologyError, match="out of range"):
        topo.route(0, 5)
    with pytest.raises(TopologyError, match="no next hop"):
        topo.route(0, 1)


# ---------------------------------------- per-comm algorithm selection

def run_allreduce(world, algorithm=None, info=None, elems=256):
    """Allreduce over all ranks on a Dup'd comm; returns (ok, wall)."""
    outs = {}

    def node(proc):
        comm = yield from proc.comm_world.Dup(info=info)
        if algorithm is not None:
            comm.set_coll_algorithm("allreduce", algorithm)
        data = np.full(elems, float(proc.rank + 1))
        out = np.zeros(elems)
        yield from comm.Allreduce(data, out)
        outs[proc.rank] = out
        comm.Free()

    world.run_all([p.spawn(node(p)) for p in world.procs])
    n = world.num_procs
    expected = np.full(elems, n * (n + 1) / 2)
    return all(np.allclose(o, expected) for o in outs.values()), \
        world.sim.now


def test_set_coll_algorithm_changes_schedule():
    mk = lambda: World(cluster=ClusterSpec(nodes=4), seed=5)
    ok_ring, t_ring = run_allreduce(mk(), "ring", elems=8192)
    ok_rd, t_rd = run_allreduce(mk(), "recursive_doubling", elems=8192)
    assert ok_ring and ok_rd
    assert t_ring != t_rd  # genuinely different algorithms ran


def test_coll_algorithm_info_hint_path():
    mk = lambda: World(cluster=ClusterSpec(nodes=4), seed=5)
    hint = Info({"repro_coll_allreduce": "ring"})
    ok_hint, t_hint = run_allreduce(mk(), info=hint, elems=8192)
    ok_ring, t_ring = run_allreduce(mk(), "ring", elems=8192)
    assert ok_hint and ok_ring
    assert t_hint == t_ring  # the hint selected the same schedule


def test_coll_algorithm_accessors_and_validation():
    w = World(cluster=ClusterSpec(nodes=2))
    comm = w.procs[0].comm_world
    assert comm.coll_algorithm("allreduce") == "auto"
    comm.set_coll_algorithm("allreduce", "ring")
    assert comm.coll_algorithm("allreduce") == "ring"
    comm.set_coll_algorithm("allreduce", "auto")
    assert comm.coll_algorithm("allreduce") == "auto"
    with pytest.raises(InvalidHintError, match="allreduce"):
        comm.set_coll_algorithm("allreduce", "quantum")
    with pytest.raises(InvalidHintError, match="unknown collective"):
        comm.set_coll_algorithm("allshuffle", "ring")


def test_coll_hint_parsing():
    hints = parse_comm_hints(Info({"repro_coll_allreduce": "RING"}))
    assert dict(hints.coll_algorithms) == {"allreduce": "ring"}
    with pytest.raises(InvalidHintError):
        parse_comm_hints(Info({"repro_coll_allreduce": "bogus"}))
    for op, algos in COLL_ALGORITHMS.items():
        for algo in algos + ("auto",):
            assert validate_selection(op, algo.upper()) == (op, algo)


def test_split_inherits_selection():
    w = World(cluster=ClusterSpec(nodes=2))
    seen = {}

    def node(proc):
        proc.comm_world.set_coll_algorithm("allreduce", "ring")
        sub = yield from proc.comm_world.Split(0, proc.rank)
        seen[proc.rank] = sub.coll_algorithm("allreduce")
        sub.Free()

    w.run_all([p.spawn(node(p)) for p in w.procs])
    assert set(seen.values()) == {"ring"}


# ------------------------------------------------- snapshot roundtrip

def fat_tree_world(seed=0):
    w = World(cluster=ClusterSpec(nodes=16, topology="fat_tree", k=4),
              seed=seed)

    def node(proc):
        peer = (proc.rank + 8) % 16
        out = np.full(1024, float(proc.rank))
        buf = np.zeros(1024)
        rreq = yield from proc.comm_world.Irecv(buf, peer, tag=0)
        sreq = yield from proc.comm_world.Isend(out, peer, tag=0)
        yield from rreq.wait()
        yield from sreq.wait()

    for p in w.procs:
        p.spawn(node(p))
    return w


def test_fat_tree_snapshot_roundtrip(tmp_path):
    """Satellite: digest/replay stay exact with a topology enabled."""
    w = fat_tree_world()
    w.sim.run_steps(100)
    snap = take_snapshot(w)
    assert snap.state["topology"] is not None
    assert snap.state["topology"]["name"] == "fat_tree(k=4)"
    assert any(l["bytes"] > 0
               for l in snap.state["topology"]["links"].values())

    path = save_snapshot(snap, tmp_path / "fat.json")
    loaded = load_snapshot(path)
    restored = restore_snapshot(loaded, fat_tree_world)
    assert restored.sim.steps == 100
    assert state_digest(capture_state(restored)) == snap.digest


def test_topology_state_distinguishes_link_traffic():
    w1, w2 = fat_tree_world(), fat_tree_world()
    w1.sim.run_steps(60)
    w2.sim.run_steps(61)
    assert state_digest(capture_state(w1)) \
        != state_digest(capture_state(w2))


# ----------------------------------------------------- observability

def test_link_metrics_and_traces_flow():
    metrics, tracer = MetricsRegistry(), Tracer()
    w = World(cluster=ClusterSpec(nodes=16, topology="fat_tree", k=4),
              seed=0, metrics=metrics, tracer=tracer)

    def node(proc):
        if proc.rank == 0:
            yield from proc.comm_world.Send(np.zeros(4096), dest=15, tag=0)
        elif proc.rank == 15:
            yield from proc.comm_world.Recv(np.zeros(4096), source=0, tag=0)

    w.run_all([p.spawn(node(p)) for p in w.procs])
    w.finalize_metrics()
    sample = metrics.snapshot()
    assert sample.get("topo.link.bytes"), "per-link gauges missing"
    assert sample.get("topo.link.queue_delay"), "queue-delay histogram missing"
    hops = [r for r in tracer.records
            if r.category.name == "topo.link.hop"]
    # 0 -> 15 crosses pods: host->edge->agg->core->agg->edge->host
    assert len(hops) >= 6
